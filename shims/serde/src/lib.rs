//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serialises anything yet — the sources only annotate
//! types with `#[derive(Serialize, Deserialize)]` (and the occasional
//! `#[serde(...)]` field attribute) so they stay wire-ready.  This shim
//! provides those two derives as no-ops, accepting and ignoring the `serde`
//! helper attribute, which is exactly enough to compile the workspace.
//! Swapping in the real `serde` later is a one-line change in the workspace
//! manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
