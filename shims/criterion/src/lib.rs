//! Offline stand-in for the `criterion` crate.
//!
//! Provides the small API surface `benches/micro.rs` uses — [`Criterion`],
//! [`Bencher`], [`BatchSize`], [`criterion_group!`] and [`criterion_main!`] —
//! backed by a deliberately simple wall-clock harness: a short warm-up, then
//! a fixed-duration measurement loop reporting the mean iteration time.  It
//! has none of criterion's statistics, but it runs offline, supports
//! `cargo bench`, and keeps the real benchmark bodies exercised (they are
//! also run once under `cargo test --benches`).

use std::time::{Duration, Instant};

/// How a batched benchmark's setup output is sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unmeasured calls.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<40} (no iterations)");
        } else {
            let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{name:<40} {:>12.1} ns/iter ({} iters)", mean_ns, b.iters);
        }
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
