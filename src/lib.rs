//! # tz-llm-repro
//!
//! Umbrella crate of the TZ-LLM reproduction.  It re-exports the workspace
//! crates so the examples and integration tests can use a single dependency,
//! and hosts those examples (`examples/`) and cross-crate tests (`tests/`).
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for the
//! paper-versus-measured comparison of every table and figure.

pub use llm;
pub use npu;
pub use ree_kernel;
pub use sim_core;
pub use tee_kernel;
pub use tz_crypto;
pub use tz_hal;
pub use tzllm;
pub use workloads;
