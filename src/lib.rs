//! # tz-llm-repro
//!
//! Umbrella crate of the TZ-LLM reproduction.  It re-exports the workspace
//! crates so the examples and integration tests can use a single dependency,
//! and hosts those examples (`examples/`) and cross-crate tests (`tests/`).
//!
//! See `README.md` for the architecture overview, the crate map, the serving
//! layer's design, and how to run the examples and benchmarks.

pub use llm;
pub use npu;
pub use ree_kernel;
pub use sim_core;
pub use tee_kernel;
pub use tz_crypto;
pub use tz_hal;
pub use tz_quant;
pub use tzllm;
pub use workloads;
