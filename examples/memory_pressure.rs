//! Secure-memory scaling under REE memory pressure.
//!
//! Shows challenge #1 of the paper end to end: how memory pressure inflates
//! contiguous (CMA) allocation, how pipelined restoration hides that cost
//! under the prefill computation, and what the transient interference on
//! concurrent REE applications looks like.
//!
//! Run with: `cargo run --example memory_pressure`

use llm::ModelSpec;
use ree_kernel::CmaRegion;
use sim_core::GIB;
use tz_hal::{PhysAddr, PhysRange, PlatformProfile};
use tzllm::{evaluate, InferenceConfig, SystemKind};
use workloads::geekbench_suite;

fn main() {
    let profile = PlatformProfile::rk3588();
    let model = ModelSpec::llama3_8b();

    println!(
        "CMA allocation time for the {} parameters ({} GiB) vs memory pressure:\n",
        model.name,
        model.total_q8_bytes() / GIB
    );
    println!("{:>12} {:>16} {:>16}", "pressure", "1 thread", "4 threads");
    for pressure_gib in [0u64, 2, 4, 6] {
        let mut cma = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x1_0000_0000), 9 * GIB),
            profile.cma_bandwidth(),
            profile.page_alloc_ns,
        );
        cma.set_memory_pressure(pressure_gib * GIB);
        let one = cma.estimate_alloc(model.total_q8_bytes(), 1).total();
        let four = cma.estimate_alloc(model.total_q8_bytes(), 4).total();
        println!(
            "{:>9} GiB {:>14.2} s {:>14.2} s",
            pressure_gib,
            one.as_secs_f64(),
            four.as_secs_f64()
        );
    }

    println!("\nEffect on the 512-token TTFT (pipelined restoration hides most of it):\n");
    println!(
        "{:>12} {:>14} {:>14}",
        "pressure", "TZ-LLM TTFT", "REE-Flash TTFT"
    );
    for pressure_gib in [0u64, 2, 4, 6] {
        let mut cfg = InferenceConfig::paper_default(model.clone(), 512);
        cfg.memory_pressure = pressure_gib * GIB;
        let tz = evaluate(SystemKind::TzLlm, &profile, &cfg);
        let flash = evaluate(SystemKind::ReeLlmFlash, &profile, &cfg);
        println!(
            "{:>9} GiB {:>12.2} s {:>12.2} s",
            pressure_gib,
            tz.ttft.as_secs_f64(),
            flash.ttft.as_secs_f64()
        );
    }

    println!("\nTransient interference on REE applications during the prefill (worst pressure):\n");
    let cfg = InferenceConfig::paper_default(model, 512);
    let report = evaluate(SystemKind::TzLlm, &profile, &cfg);
    let steal = (report.restoration_cpu.as_secs_f64()
        / (report.ttft.as_secs_f64() * profile.little_cores as f64))
        .min(1.0);
    for subtest in geekbench_suite().iter().take(4) {
        let degraded = subtest.score_under_cpu_steal(steal);
        println!(
            "  {:<14} score {:>6.0} -> {:>6.0} ({:.1}% during prefill only)",
            subtest.name,
            subtest.base_score,
            degraded,
            (1.0 - degraded / subtest.base_score) * 100.0
        );
    }
    println!("\nOnce the inference finishes and memory is revoked, the overhead disappears");
    println!("entirely — unlike the continuous stage-2 translation overhead of Figure 2.");
}
