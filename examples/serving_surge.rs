//! Serving surge: several chat sessions share one TZ-LLM device.
//!
//! Five closed-loop UltraChat sessions hammer a single simulated RK3588 at
//! once, with a bursty PersonaChat notification fan-out landing mid-run.  The
//! example shows what the single-request figures cannot: requests queueing
//! behind each other, the partial-parameter cache warming up across
//! *different users'* requests (all sessions share one model blob in secure
//! memory), and tail latency stretching under the surge while the device
//! stays fully utilised.
//!
//! Run with: `cargo run --release --example serving_surge`

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig};
use workloads::{ArrivalProcess, Benchmark, SessionStyle, WorkloadSpec};

fn main() {
    let config = ServingConfig::chat_default(PlatformProfile::rk3588());
    let mut server = Server::new(config, vec![llm::ModelSpec::qwen2_5_3b()]);

    // Five concurrent interactive chat users (closed loop: each thinks for a
    // while after a response before sending the next prompt).
    let chatters = WorkloadSpec {
        process: ArrivalProcess::ClosedLoop {
            sessions: 5,
            mean_think: SimDuration::from_secs(20),
        },
        requests: 25,
        models: vec!["qwen2.5-3b".into()],
        mix: vec![(Benchmark::UltraChat, 1.0)],
        style: SessionStyle::Conversation { max_context: 2048 },
    };
    for script in chatters.generate(2026) {
        server.submit_script(script);
    }

    // A notification fan-out arrives as a burst on top of the chat load.
    let surge = WorkloadSpec {
        process: ArrivalProcess::Bursty {
            bursts_per_sec: 0.02,
            burst_size: 4,
            intra_gap: SimDuration::from_millis(200),
        },
        requests: 8,
        models: vec!["qwen2.5-3b".into()],
        mix: vec![(Benchmark::PersonaChat, 1.0)],
        style: SessionStyle::Independent,
    };
    for mut script in surge.generate(7) {
        script.session += 100; // keep surge session ids distinct
        server.submit_script(script);
    }

    let report = server.run();
    let fleet = &report.fleet;

    println!("=== fleet ===");
    println!(
        "completed {} requests in {:.1} s simulated ({:.3} req/s), {} rejected",
        fleet.completed,
        fleet.horizon.as_secs_f64(),
        fleet.throughput_rps,
        fleet.rejected,
    );
    let ttft = fleet.ttft_ms.expect("requests completed");
    println!(
        "TTFT e2e: p50 {:.2} s   p95 {:.2} s   p99 {:.2} s   max {:.2} s",
        ttft.p50 / 1e3,
        ttft.p95 / 1e3,
        ttft.p99 / 1e3,
        ttft.max / 1e3,
    );
    println!(
        "queue: mean depth {:.2}, max {};  cache hit-fraction {:.2} ({} cold starts)",
        fleet.mean_queue_depth,
        fleet.max_queue_depth,
        fleet.mean_cached_fraction,
        fleet.cold_starts,
    );

    println!("\n=== per session ===");
    let mut sessions: Vec<u64> = report.records.iter().map(|r| r.request.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    for s in sessions {
        let recs: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.request.session == s)
            .collect();
        let mean_wait: f64 = recs
            .iter()
            .map(|r| r.queue_wait().as_secs_f64())
            .sum::<f64>()
            / recs.len() as f64;
        let mean_ttft: f64 =
            recs.iter().map(|r| r.ttft_e2e().as_secs_f64()).sum::<f64>() / recs.len() as f64;
        let kind = if s >= 100 { "surge" } else { "chat " };
        println!(
            "session {s:>3} ({kind}): {} requests, mean TTFT {:.2} s, mean queue wait {:.2} s",
            recs.len(),
            mean_ttft,
            mean_wait,
        );
    }

    println!("\n=== cache warm-up across users ===");
    for r in report.records.iter().take(6) {
        println!(
            "req {:>2} (session {:>3}) dispatched at {:>7.1} s: {:>3.0}% cached, service TTFT {:.2} s",
            r.request.id,
            r.request.session,
            r.dispatched.as_secs_f64(),
            r.cached_fraction * 100.0,
            r.report.ttft.as_secs_f64(),
        );
    }
    println!(
        "\nThe first request cold-starts; later requests — whichever session they belong to — \
         find the shared cache warm and skip most of the restoration pipeline."
    );
}
