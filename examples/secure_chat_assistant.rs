//! A multi-turn on-device chat assistant protected by TZ-LLM.
//!
//! Motivating scenario from the paper's introduction: a digital assistant
//! incorporates personal data into prompts, so inference must stay on device,
//! and the provider's model must stay confidential.  The example simulates a
//! conversation of several turns and shows how partial parameter caching
//! makes every turn after the first far cheaper, while memory is still
//! returned to the REE when it asks for it.
//!
//! Run with: `cargo run --example secure_chat_assistant`

use llm::{ModelSpec, Tokenizer};
use sim_core::DetRng;
use tz_hal::PlatformProfile;
use tzllm::{evaluate_tzllm, CacheController, CachePolicy, InferenceConfig};
use workloads::Benchmark;

fn main() {
    let profile = PlatformProfile::rk3588();
    let model = ModelSpec::qwen2_5_3b();
    let tokenizer = Tokenizer::with_default_merges();
    let mut rng = DetRng::new(7);
    let mut cache = CacheController::new(model.total_q8_bytes());

    println!(
        "on-device assistant, model {}, {} GiB of parameters\n",
        model.name,
        model.total_q8_bytes() / sim_core::GIB
    );

    for turn in 1..=5 {
        // The user asks something; the app adds context from personal data.
        let prompt_text = Benchmark::UltraChat.synthetic_prompt(60 + 10 * turn, &mut rng);
        let prompt_tokens = tokenizer.encode(&prompt_text).len();

        let mut cfg = InferenceConfig::paper_default(model.clone(), prompt_tokens);
        cfg.cached_fraction = cache.cached_fraction();
        let report = evaluate_tzllm(&profile, &cfg);

        println!(
            "turn {turn}: prompt {:>4} tokens | cached {:>5.1}% | TTFT {:>6.3} s | decode {:>5.2} tok/s",
            prompt_tokens,
            cache.cached_fraction() * 100.0,
            report.ttft.as_secs_f64(),
            report.decode_tokens_per_sec
        );

        // After the turn all parameters are resident; keep what the REE's
        // memory headroom allows (here: 60% of the model between turns).
        cache.on_inference_complete();
        cache.apply_policy(CachePolicy::Proportion(0.6));

        // Midway through the conversation the REE comes under memory pressure
        // and revokes a gigabyte of cached parameters.
        if turn == 3 {
            let revoked = cache.revoke(sim_core::GIB);
            println!(
                "        REE memory pressure: revoked {} MiB of cached parameters",
                revoked / sim_core::MIB
            );
        }
    }

    println!("\nEvery turn after the first starts from the cached prefix, so the");
    println!("initial pipeline bubble disappears while the REE keeps control of its memory.");
}
