//! SLO burn-rate report: watch a notification storm blow the error budget.
//!
//! One simulated RK3588 serves a quiet Poisson trickle of assistant traffic
//! with the windowed metrics registry live.  Ten minutes in, a 12× surge
//! lands for five minutes.  The example evaluates the default per-class SLO
//! objectives over the recorded 60 s windows and prints the burn-rate
//! monitor's report: attainment per target, the overload episode localised
//! to the storm's windows, the lane that bounded it, and the head of the
//! OpenMetrics exposition a scraper would ingest.
//!
//! Run with: `cargo run --release --example slo_report`

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig};
use tzllm::slo::{self, SloConfig, SloTarget};
use workloads::{ArrivalProcess, WorkloadSpec};

fn main() {
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.metrics = Some(SimDuration::from_secs(60));

    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::PoissonSpike {
            rate_per_sec: 0.05,
            surge_x: 12.0,
            spike_start: SimDuration::from_secs(600),
            spike_len: SimDuration::from_secs(300),
        },
        220,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let report = Server::run_workload(config, llm::ModelSpec::catalogue(), &workload, 0x510);
    let metrics = report.metrics.expect("metrics were enabled");

    let targets = SloTarget::defaults_for(&metrics);
    let slo_report = slo::evaluate(&metrics, &targets, &SloConfig::default());
    println!("{}", slo_report.summary());

    println!("=== OpenMetrics exposition (head) ===");
    let exposition = slo::openmetrics(&metrics, &slo_report);
    let samples = slo::validate_openmetrics(&exposition).expect("exposition validates");
    for line in exposition.lines().take(16) {
        println!("{line}");
    }
    println!(
        "... ({} samples total; csv_timeseries() renders the same series per window)",
        samples
    );
}
