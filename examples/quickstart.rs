//! Quickstart: protect a model with TZ-LLM and run an inference.
//!
//! This example walks the full lifecycle on the simulated platform:
//! 1. a model provider packs and encrypts a (tiny) model and wraps its key
//!    with the device's hardware-unique key;
//! 2. the TEE key service unwraps the key for the LLM TA only;
//! 3. the LLM TA verifies + decrypts a tensor that came back from the
//!    untrusted REE file system;
//! 4. a real forward pass generates tokens from a prompt;
//! 5. the calibrated simulation reports TTFT for TZ-LLM and the baselines on
//!    a benchmark-scale model (Qwen2.5-3B).
//!
//! Run with: `cargo run --example quickstart`

use llm::{FunctionalModel, ModelSpec, PackedModel, Tokenizer};
use ree_kernel::{FileContent, FileSystem, FlashDevice};
use tee_kernel::{KeyService, TaRegistry};
use tz_crypto::{HardwareUniqueKey, ModelKey, WrappedModelKey};
use tz_hal::PlatformProfile;
use tzllm::{evaluate, InferenceConfig, SystemKind};

fn main() {
    // --- 1. Provider side: pack and encrypt the model. ----------------------
    let spec = ModelSpec::nano();
    let provider_key = ModelKey::derive(b"provider-master-secret", &spec.name);
    let packed = PackedModel::pack_functional(&spec, &provider_key, [9u8; 16], 2026);
    println!(
        "packed {} tensors, {} bytes encrypted blob",
        packed.header.tensors.len(),
        packed.header.blob_bytes
    );

    // The encrypted blob lives in the untrusted REE file system.
    let mut fs = FileSystem::new(FlashDevice::new(
        sim_core::Bandwidth::from_gib_per_sec(2.0),
        2.5,
    ));
    fs.write_file(
        format!("{}.enc", spec.name),
        FileContent::Bytes(packed.blob.clone().expect("functional model has a blob")),
    );

    // --- 2. Device side: wrap the model key for this device. ----------------
    let huk = HardwareUniqueKey::provision("orangepi-5-plus-0001");
    let wrapped = WrappedModelKey::wrap(&huk, &provider_key, [3u8; 16]);
    let mut keys = KeyService::new(huk);
    keys.register_model_key(spec.name.clone(), wrapped);

    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let model_key = keys
        .unwrap_for(&tas, llm_ta, &spec.name)
        .expect("the LLM TA may unwrap the model key");
    println!("model key unwrapped inside the TEE for the LLM TA");

    // --- 3. Verify + decrypt one tensor returned by the untrusted REE. ------
    let tensor_name = "layer.0.wq";
    let entry = packed.tensor(tensor_name).unwrap().clone();
    let read = fs
        .read(&format!("{}.enc", spec.name), entry.offset, entry.bytes)
        .expect("tensor read");
    let plaintext = packed
        .decrypt_tensor(&model_key, tensor_name, &read.data.unwrap())
        .expect("checksum verified, tensor decrypted");
    println!(
        "restored tensor {tensor_name}: {} bytes in {}",
        plaintext.len(),
        read.duration
    );

    // --- 4. Run a real (tiny) inference. -------------------------------------
    let tokenizer = Tokenizer::with_default_merges();
    let prompt = "please summarize the conversation";
    let prompt_ids: Vec<usize> = tokenizer
        .encode(prompt)
        .iter()
        .map(|&t| t as usize)
        .collect();
    let model = FunctionalModel::generate(&spec, 2026);
    let generated = model.generate_greedy(&prompt_ids, 12);
    println!("prompt {:?} -> generated token ids {:?}", prompt, generated);

    // --- 5. Benchmark-scale TTFT comparison (simulated). ---------------------
    let profile = PlatformProfile::rk3588();
    let cfg = InferenceConfig::paper_default(ModelSpec::qwen2_5_3b(), 128);
    println!("\nTTFT for Qwen2.5-3B, 128-token prompt, worst-case memory pressure:");
    for system in SystemKind::all() {
        let report = evaluate(system, &profile, &cfg);
        println!(
            "  {:<16} TTFT {:>8.3} s   decode {:>6.2} tok/s",
            system.label(),
            report.ttft.as_secs_f64(),
            report.decode_tokens_per_sec
        );
    }
}
