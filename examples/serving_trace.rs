//! Serving telemetry end to end: run a small cold-heavy fleet with the
//! span store live, print the TTFT waterfall and the critical-path
//! attribution report, and export a Chrome trace-event file.
//!
//! The trace opens directly in Perfetto (https://ui.perfetto.dev) or
//! `chrome://tracing`: one track per request showing the lifecycle tiling
//! (queued → framework-init → working-alloc → kv-unseal →
//! restore-pipeline → prefill → decode), one track per device lane
//! (npu, flash, cpu) showing batched steps, restore-aheads and occupancy
//! levels, plus counter tracks for queue depth and lane utilisation.
//!
//! Run with: `cargo run --release --example serving_trace [-- <out.json>]`

use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

const MODELS: [&str; 3] = ["tinyllama-1.1b", "qwen2.5-3b", "phi-3-3.8b"];

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "serving_trace.json".into());

    // The paper-default batched dispatcher with the observer switched on.
    // Telemetry is observe-only: this run is bit-for-bit the run you get
    // with the flag off (proven in crates/bench/tests/serial_reproduction).
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.telemetry = true;

    // Cold-heavy traffic — every model eviction forces the full restoration
    // pipeline, which is where the trace is interesting.
    let workload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.06 }, 40, &MODELS);
    let catalogue = MODELS
        .iter()
        .map(|m| llm::ModelSpec::by_name(m).expect("catalogue model"))
        .collect();
    let report = Server::run_workload(config, catalogue, &workload, 0xC01D);

    println!("{}", tzllm::ttft_waterfall(&report));

    let cp = tzllm::critical_path_report(&report);
    println!("{}", cp.render_text());

    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    println!(
        "recorded {} spans across {} requests; batch.step_ms {}",
        telemetry.spans().len(),
        report.records.len(),
        telemetry
            .histogram_stats("batch.step_ms")
            .map(|(n, mean, max)| format!("n={n} mean={mean:.2} max={max:.2}"))
            .unwrap_or_else(|| "(not observed)".into()),
    );

    let json = telemetry.chrome_trace_json();
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\nwrote {} ({} KiB) — open it at https://ui.perfetto.dev",
        out,
        json.len() / 1024
    );
}
