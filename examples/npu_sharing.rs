//! NPU time-sharing between an REE vision app and the protected LLM.
//!
//! Reproduces the §7.3 scenario interactively: YOLOv5 object detection keeps
//! submitting non-secure NPU jobs while the LLM TA decodes tokens with secure
//! NPU jobs through the co-driver handoff protocol.  The example prints both
//! throughputs and the world-switch overhead breakdown.
//!
//! Run with: `cargo run --example npu_sharing`

use llm::ModelSpec;
use sim_core::SimDuration;
use tzllm::{LlmPhase, LlmPlacement, NpuSharingSim, SharingConfig, SharingResult};
use workloads::NnApp;

fn run(
    model: &ModelSpec,
    llm_active: bool,
    nn_active: bool,
    placement: LlmPlacement,
) -> SharingResult {
    let mut sim = NpuSharingSim::new();
    sim.run(&SharingConfig {
        model: model.clone(),
        phase: LlmPhase::Decode,
        placement,
        llm_active,
        nn_active,
        nn_job_time: NnApp::YoloV5.job_time(),
        horizon: SimDuration::from_secs(20),
    })
}

fn main() {
    let model = ModelSpec::llama3_8b();
    println!(
        "sharing the RK3588 NPU between YOLOv5 (REE) and {} decoding (TEE)\n",
        model.name
    );

    let nn_only = run(&model, false, true, LlmPlacement::Tee);
    let llm_only = run(&model, true, false, LlmPlacement::Tee);
    let shared_ree = run(&model, true, true, LlmPlacement::Ree);
    let shared_tee = run(&model, true, true, LlmPlacement::Tee);

    println!(
        "{:<28} {:>12} {:>14}",
        "setup", "YOLOv5 ops/s", "LLM tokens/s"
    );
    println!(
        "{:<28} {:>12.1} {:>14.2}",
        "YOLOv5 exclusive", nn_only.nn_ops_per_sec, 0.0
    );
    println!(
        "{:<28} {:>12.1} {:>14.2}",
        "LLM exclusive (TEE)", 0.0, llm_only.llm_tokens_per_sec
    );
    println!(
        "{:<28} {:>12.1} {:>14.2}",
        "shared, LLM in REE", shared_ree.nn_ops_per_sec, shared_ree.llm_tokens_per_sec
    );
    println!(
        "{:<28} {:>12.1} {:>14.2}",
        "shared, LLM in TEE (TZ-LLM)", shared_tee.nn_ops_per_sec, shared_tee.llm_tokens_per_sec
    );

    let extra_nn = (1.0 - shared_tee.nn_ops_per_sec / shared_ree.nn_ops_per_sec) * 100.0;
    let extra_llm = (1.0 - shared_tee.llm_tokens_per_sec / shared_ree.llm_tokens_per_sec) * 100.0;
    println!(
        "\nextra slowdown from TEE-REE sharing vs REE-only sharing: NN {:.1}%, LLM {:.1}%",
        extra_nn, extra_llm
    );

    println!(
        "\n{} secure handoffs; per-handoff switch cost {:.1} us (smc {:.1}, tzpc {:.1}, gic {:.1}, tzasc {:.1}, drain {:.1})",
        shared_tee.handoffs,
        shared_tee.mean_switch.total().as_secs_f64() * 1e6,
        shared_tee.mean_switch.smc.as_secs_f64() * 1e6,
        shared_tee.mean_switch.tzpc.as_secs_f64() * 1e6,
        shared_tee.mean_switch.gic.as_secs_f64() * 1e6,
        shared_tee.mean_switch.tzasc.as_secs_f64() * 1e6,
        shared_tee.mean_switch.drain.as_secs_f64() * 1e6,
    );
    println!("a full driver detach-attach would cost 32 ms per switch instead.");
}
