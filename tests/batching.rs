//! Acceptance properties of token-level continuous batching with chunked
//! prefill: the step loop is deterministic, smaller prefill chunks never
//! worsen decode sharing stall, no decode is ever starved behind
//! back-to-back prefills (preemption stall is structurally zero), the
//! batched dispatcher wins the saturation-throughput comparison against the
//! PR-5 overlap dispatcher at comparable cold-heavy p95 TTFT, and the
//! `continuous_batching: false` escape hatch reproduces the overlap
//! dispatcher bit-for-bit.

use sim_core::{SimDuration, SimTime};
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig, ServingReport};
use workloads::{ArrivalProcess, WorkloadSpec};

const MODELS: [&str; 3] = ["tinyllama-1.1b", "qwen2.5-3b", "phi-3-3.8b"];

fn catalogue() -> Vec<llm::ModelSpec> {
    MODELS
        .iter()
        .map(|m| llm::ModelSpec::by_name(m).expect("catalogue model"))
        .collect()
}

fn one_model() -> Vec<llm::ModelSpec> {
    vec![llm::ModelSpec::by_name("qwen2.5-3b").expect("catalogue model")]
}

fn agent_burst_run(config: ServingConfig, seed: u64) -> ServingReport {
    let workload = WorkloadSpec::agent_burst(10, 120, SimDuration::from_secs(2), "qwen2.5-3b");
    Server::run_workload(config, one_model(), &workload, seed)
}

/// The step loop is a deterministic discrete-event computation: same seed,
/// same trace — every record and every counter.
#[test]
fn the_step_loop_is_deterministic() {
    let config = ServingConfig::paper_default(PlatformProfile::rk3588());
    let a = agent_burst_run(config.clone(), 0xA6E7);
    let b = agent_burst_run(config.clone(), 0xA6E7);
    assert_eq!(format!("{:?}", a.fleet), format!("{:?}", b.fleet));
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    assert!(a.fleet.batch_steps > 0, "the run must actually batch");
    // A different seed produces a genuinely different trace.
    let c = agent_burst_run(config, 0xA6E8);
    assert_ne!(format!("{:?}", a.records), format!("{:?}", c.records));
}

/// Chunk-size sweep property on a fixed trace: a long decode is running
/// when a long prefill lands; every step that carries a chunk stalls the
/// decode by at most the chunk seconds beyond the weight-read slack, so a
/// smaller chunk absorbs more of its window in slack and the decode's
/// sharing stall never gets worse as chunks shrink.  (Closed-loop workloads
/// don't have this monotonicity — completion times feed back into arrival
/// times, so the whole trace diverges; the property is about the step loop,
/// not the feedback loop.)
#[test]
fn smaller_chunks_never_worsen_decode_sharing_stall() {
    let run = |chunk_tokens: usize| {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.prefill_chunk_tokens = chunk_tokens;
        let mut server = Server::new(config, one_model());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 64, 400);
        // Lands mid-decode; output 1, so it never joins the decode batch and
        // the only interaction is its chunks interleaving with the decode.
        server.submit_at(SimTime::from_secs(8), 1, "qwen2.5-3b", 420, 1);
        let report = server.run();
        let r0 = report.records.iter().find(|r| r.request.id == 0).unwrap();
        r0.stall_sharing.as_millis_f64()
    };
    let stalls: Vec<(usize, f64)> = [4096usize, 512, 128, 32]
        .into_iter()
        .map(|c| (c, run(c)))
        .collect();
    for pair in stalls.windows(2) {
        let ((big, stall_big), (small, stall_small)) = (pair[0], pair[1]);
        assert!(
            stall_small <= stall_big + 1e-6,
            "chunk {small} must not stall the decode more than chunk {big}: \
             {stall_small} vs {stall_big}"
        );
    }
    assert!(
        stalls.last().unwrap().1 < stalls[0].1,
        "the sweep must show a real win: {stalls:?}"
    );
}

/// Starvation guard: a long decode with back-to-back long prefills landing
/// on top of it is never paused — zero preemption stall, every step it is a
/// member of yields a token, and its total decode time stays bounded by its
/// token count times the longest step.
#[test]
fn no_decode_starves_behind_back_to_back_prefills() {
    let config = ServingConfig::paper_default(PlatformProfile::rk3588());
    let mut server = Server::new(config, one_model());
    // One long decode...
    server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 64, 400);
    // ...then a stampede of long prefills with single-token outputs.
    for i in 1..6 {
        server.submit_at(SimTime::ZERO, i, "qwen2.5-3b", 420, 1);
    }
    let report = server.run();
    assert_eq!(report.fleet.completed, 6);
    let r0 = report
        .records
        .iter()
        .find(|r| r.request.id == 0)
        .expect("the long decode completes");
    assert_eq!(
        r0.stall_preemption,
        SimDuration::ZERO,
        "chunked prefill must never pause the decode"
    );
    assert_eq!(
        report.fleet.batch_max_steps_behind, 0,
        "every step a decode is a member of must yield exactly one token"
    );
    let decode_secs = r0.completed.saturating_since(r0.first_token).as_secs_f64();
    let tokens = (r0.request.output_len - 1) as f64;
    let max_step_secs = report.fleet.max_batch_step_ms / 1e3;
    assert!(
        decode_secs <= tokens * max_step_secs + 1e-9,
        "decode {decode_secs}s must be bounded by {tokens} steps of at most \
         {max_step_secs}s"
    );
}

/// The headline acceptance comparison: at an overload arrival rate on
/// cold-heavy multi-model traffic, continuous batching at least doubles the
/// overlap dispatcher's saturation throughput; at a sub-saturation rate its
/// cold-heavy p95 TTFT stays within 5 %.
#[test]
fn batching_doubles_saturation_throughput_at_equal_cold_heavy_p95() {
    let overload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.5 }, 120, &MODELS);
    let overlap = Server::run_workload(
        ServingConfig::overlap(PlatformProfile::rk3588()),
        catalogue(),
        &overload,
        7,
    );
    let batched = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &overload,
        7,
    );
    assert!(
        batched.fleet.throughput_rps >= 2.0 * overlap.fleet.throughput_rps,
        "batched saturation throughput {} must be at least twice the overlap's {}",
        batched.fleet.throughput_rps,
        overlap.fleet.throughput_rps
    );
    assert!(
        batched.fleet.mean_batch_occupancy > 1.5,
        "the overload must really fill the batch: {}",
        batched.fleet.mean_batch_occupancy
    );

    let quiet =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.06 }, 120, &MODELS);
    let overlap = Server::run_workload(
        ServingConfig::overlap(PlatformProfile::rk3588()),
        catalogue(),
        &quiet,
        7,
    );
    let batched = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &quiet,
        7,
    );
    let (p95_overlap, p95_batched) = (
        overlap.fleet.ttft_ms.unwrap().p95,
        batched.fleet.ttft_ms.unwrap().p95,
    );
    assert!(
        p95_batched <= p95_overlap * 1.05,
        "cold-heavy p95 TTFT must stay within 5%: batched {p95_batched} vs \
         overlap {p95_overlap}"
    );
}

/// The escape hatch: `continuous_batching: false` with the slot count
/// restored is the PR-5 overlap dispatcher, bit for bit, on a trace that
/// exercises restore-ahead, preemption and multi-model interleaving.
#[test]
fn batching_off_is_bit_for_bit_the_overlap_dispatcher() {
    let workload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.12 }, 80, &MODELS);
    let mut off = ServingConfig::paper_default(PlatformProfile::rk3588());
    off.continuous_batching = false;
    off.max_inflight = 2;
    let a = Server::run_workload(off, catalogue(), &workload, 0xC01D);
    let b = Server::run_workload(
        ServingConfig::overlap(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        0xC01D,
    );
    assert_eq!(format!("{:?}", a.fleet), format!("{:?}", b.fleet));
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    assert_eq!(a.fleet.batch_steps, 0, "the slot dispatcher never batches");
}

/// Lane discipline under batching: the step loop's NPU hold, streaming
/// restores and chunked prefills never oversubscribe a lane, and everything
/// is released when the run drains.
#[test]
fn batched_lanes_never_exceed_capacity() {
    let workload = WorkloadSpec::agent_burst(16, 150, SimDuration::from_millis(500), "qwen2.5-3b");
    let report = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        one_model(),
        &workload,
        0x1A7E,
    );
    assert_eq!(report.fleet.completed + report.fleet.rejected, 150);
    for lane in &report.resources {
        assert!(
            lane.peak_in_use <= lane.capacity,
            "lane {} peaked at {} over capacity {}",
            lane.name,
            lane.peak_in_use,
            lane.capacity
        );
        assert_eq!(lane.in_use, 0, "lane {} still held after drain", lane.name);
    }
}
