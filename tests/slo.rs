//! Cross-crate SLO-monitor tests: a live serving run through the windowed
//! metrics registry, evaluated against the default per-class objectives —
//! the burn-rate monitor must localise an injected overload to the windows
//! it happened in, name a bounding lane, and export an exposition the
//! strict OpenMetrics validator accepts.

use sim_core::{SimDuration, WindowedMetrics};
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig};
use tzllm::slo::{self, SloConfig, SloTarget};
use workloads::{ArrivalProcess, WorkloadSpec};

const WINDOW: SimDuration = SimDuration::from_secs(60);
const SPIKE_START: SimDuration = SimDuration::from_secs(600);
const SPIKE_LEN: SimDuration = SimDuration::from_secs(300);

/// A quiet Poisson background with a 12× notification storm injected a few
/// windows in — the canonical overload the monitor exists to localise.
fn spike_run() -> WindowedMetrics {
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.metrics = Some(WINDOW);
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::PoissonSpike {
            rate_per_sec: 0.05,
            surge_x: 12.0,
            spike_start: SPIKE_START,
            spike_len: SPIKE_LEN,
        },
        220,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let catalogue = llm::ModelSpec::catalogue();
    let report = Server::run_workload(config, catalogue, &workload, 0x0510);
    report.metrics.expect("metrics were enabled")
}

#[test]
fn burn_rate_monitor_localises_the_injected_overload() {
    let metrics = spike_run();
    let targets = SloTarget::defaults_for(&metrics);
    assert!(
        targets.iter().any(|t| t.metric == "ttft_cold"),
        "the default objectives must cover the cold-TTFT classes present"
    );
    let report = slo::evaluate(&metrics, &targets, &SloConfig::default());

    // The storm starts at window SPIKE_START / WINDOW; every window before
    // it must stay inside the error budget, and at least one target must
    // report an overload episode that begins at (or after) the storm.
    let spike_window = SPIKE_START.as_nanos() / WINDOW.as_nanos();
    let cold = report
        .target("ttft_cold", "independent")
        .expect("independent cold-TTFT target evaluated");
    for w in &cold.windows {
        if w.window < spike_window {
            assert!(
                w.burn_rate(cold.target.objective) < SloConfig::default().burn_threshold,
                "window {} burns budget before the storm starts",
                w.window
            );
        }
    }
    assert!(
        !report.episodes.is_empty(),
        "the storm must register as an overload episode"
    );
    for episode in &report.episodes {
        assert!(
            episode.first_window >= spike_window,
            "episode at window {} predates the storm (window {})",
            episode.first_window,
            spike_window
        );
        assert!(episode.last_window >= episode.first_window);
        assert!(episode.peak_burn_rate >= SloConfig::default().burn_threshold);
        assert!(episode.bad_requests > 0);
        assert!(
            episode.bounding_lane.is_some(),
            "each episode must name the lane that bounded it"
        );
    }
    assert!(report.peak_burn_rate() >= SloConfig::default().burn_threshold);

    // The attainment accounting is closed: every request lands in exactly
    // one window of its class's target.
    let windowed: u64 = cold.windows.iter().map(|w| w.total).sum();
    assert_eq!(windowed, cold.total);
    assert!(cold.attainment() <= 1.0 && cold.attainment() >= 0.0);
}

#[test]
fn exposition_passes_the_strict_validator_and_csv_is_complete() {
    let metrics = spike_run();
    let targets = SloTarget::defaults_for(&metrics);
    let report = slo::evaluate(&metrics, &targets, &SloConfig::default());

    let exposition = slo::openmetrics(&metrics, &report);
    let samples = slo::validate_openmetrics(&exposition)
        .expect("the exposition must satisfy the strict validator");
    assert!(samples > 100, "only {samples} samples exported");
    assert!(exposition.ends_with("# EOF\n"));
    assert!(exposition.contains("# TYPE tzllm_requests_completed counter"));
    assert!(exposition.contains("tzllm_slo_burn_rate_peak"));

    let csv = slo::csv_timeseries(&metrics, &report);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("window,start_s,kind,name,class,field,value")
    );
    let mut kinds: Vec<&str> = lines
        .map(|l| l.split(',').nth(2).expect("kind column"))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(
        kinds,
        ["counter", "gauge", "histogram", "lane", "slo"],
        "every series kind must appear in the CSV time-series"
    );

    // The summary names the overload in human-readable form.
    let summary = report.summary();
    assert!(summary.contains("overload"), "summary:\n{summary}");
}

#[test]
fn quiet_run_burns_no_budget_and_reports_no_episode() {
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.metrics = Some(WINDOW);
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.03 },
        60,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let report = Server::run_workload(config, llm::ModelSpec::catalogue(), &workload, 0x0531);
    let metrics = report.metrics.expect("metrics were enabled");
    let targets = SloTarget::defaults_for(&metrics);
    let slo_report = slo::evaluate(&metrics, &targets, &SloConfig::default());
    assert!(
        slo_report.episodes.is_empty(),
        "an unloaded device must not report an overload episode: {}",
        slo_report.summary()
    );
    for target in &slo_report.targets {
        assert!(
            target.met(),
            "{}/{} misses its objective on a quiet run",
            target.target.metric,
            target.target.class
        );
    }
}
