//! Acceptance properties of speculative draft-model decoding on the batched
//! step loop: the escape hatch reproduces the plain batched dispatcher bit
//! for bit, accepted-token traces are deterministic per seed, the token
//! accounting conserves, sequences never overrun their scripted output, the
//! decode-heavy fleet hits the paper-style ≥1.5× speedup at unchanged
//! cold-heavy p95 TTFT, and the slot dispatcher's sharing-stall attribution
//! is clipped to the share a finishing decode actually used.

use sim_core::{SimDuration, SimTime};
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig, ServingReport, SpeculationConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

const MODEL: &str = "qwen2.5-3b";
const MODELS: [&str; 3] = ["tinyllama-1.1b", "qwen2.5-3b", "phi-3-3.8b"];

fn one_model() -> Vec<llm::ModelSpec> {
    vec![llm::ModelSpec::qwen2_5_3b()]
}

fn catalogue() -> Vec<llm::ModelSpec> {
    MODELS
        .iter()
        .map(|m| llm::ModelSpec::by_name(m).expect("catalogue model"))
        .collect()
}

fn spec_on(mut config: ServingConfig) -> ServingConfig {
    config.speculation = SpeculationConfig::paper_default();
    config
}

/// The decode-heavy fleet the speculation benchmarks sweep: few enough
/// concurrent sessions that decode stays weight-read-bound (the regime where
/// extra verified tokens per sweep are nearly free).
fn decode_heavy_fleet() -> WorkloadSpec {
    WorkloadSpec::agent_burst(3, 60, SimDuration::from_millis(250), MODEL)
}

fn fleet_run(config: ServingConfig, seed: u64) -> ServingReport {
    Server::run_workload(config, one_model(), &decode_heavy_fleet(), seed)
}

/// The escape hatch: a config with the speculation knobs populated but the
/// master switch off is bit-for-bit the plain batched step loop — the
/// acceptance RNG is never drawn, no draft entry is wired, and every record
/// and counter is identical.
#[test]
fn speculation_off_is_bit_for_bit_the_batched_step_loop() {
    let baseline = fleet_run(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        0xA6E7,
    );
    let mut disabled_cfg = ServingConfig::paper_default(PlatformProfile::rk3588());
    disabled_cfg.speculation = SpeculationConfig {
        enabled: false,
        ..SpeculationConfig::paper_default()
    };
    let disabled = fleet_run(disabled_cfg, 0xA6E7);
    assert_eq!(
        format!("{:?}", baseline.fleet),
        format!("{:?}", disabled.fleet)
    );
    assert_eq!(
        format!("{:?}", baseline.records),
        format!("{:?}", disabled.records)
    );
    assert_eq!(baseline.fleet.spec_steps, 0);
    assert_eq!(baseline.fleet.spec_proposed_tokens, 0);
    assert!(baseline.fleet.spec_emitted_per_step.is_empty());
}

/// Identical seeds produce identical accepted-token traces — speculation is
/// a deterministic discrete-event computation, with the acceptance draws on
/// their own per-request `DetRng` streams.
#[test]
fn identical_seeds_produce_identical_accepted_token_traces() {
    let config = spec_on(ServingConfig::paper_default(PlatformProfile::rk3588()));
    let a = fleet_run(config.clone(), 0xA6E7);
    let b = fleet_run(config.clone(), 0xA6E7);
    assert_eq!(format!("{:?}", a.fleet), format!("{:?}", b.fleet));
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    assert_eq!(a.fleet.spec_accepted_tokens, b.fleet.spec_accepted_tokens);
    assert_eq!(a.fleet.spec_emitted_per_step, b.fleet.spec_emitted_per_step);
    assert!(a.fleet.spec_accepted_tokens > 0, "the run must speculate");
    // A different seed produces a genuinely different accepted-token trace.
    let c = fleet_run(config, 0xA6E8);
    assert_ne!(format!("{:?}", a.records), format!("{:?}", c.records));
}

/// Token accounting conserves: every proposed token is either accepted or
/// rejected, per-step emissions stay within `1..=k+1`, and the overhead and
/// acceptance telemetry lands in sane ranges.
#[test]
fn speculation_accounting_conserves() {
    let k = SpeculationConfig::paper_default().k as u32;
    let report = fleet_run(
        spec_on(ServingConfig::paper_default(PlatformProfile::rk3588())),
        0xA6E7,
    );
    let fleet = &report.fleet;
    assert!(fleet.spec_steps > 0);
    assert_eq!(
        fleet.spec_proposed_tokens,
        fleet.spec_accepted_tokens + fleet.spec_rejected_tokens,
        "every proposed token is accepted or rejected"
    );
    for &(emitted, steps) in &fleet.spec_emitted_per_step {
        assert!(steps > 0);
        assert!(
            (1..=k + 1).contains(&emitted),
            "a sequence emits between 1 and k+1 tokens per step, got {emitted}"
        );
    }
    assert!(fleet.spec_mean_emitted_per_step > 1.0);
    assert!(fleet.spec_mean_emitted_per_step <= (k + 1) as f64);
    assert!(fleet.spec_accept_rate > 0.0 && fleet.spec_accept_rate < 1.0);
    assert!(fleet.spec_draft_overhead > 0.0 && fleet.spec_draft_overhead < 1.0);
    // Emitted tokens = accepted + one target token per speculative draw, so
    // the histogram mass strictly exceeds the accepted-token count.
    let hist_tokens: u64 = fleet
        .spec_emitted_per_step
        .iter()
        .map(|&(e, n)| e as u64 * n)
        .sum();
    assert!(hist_tokens > fleet.spec_accepted_tokens);
}

/// Proposals are capped at `tokens_left - 1` (the final token always comes
/// from the target), so even a lucky full-accept streak cannot overrun a
/// scripted output — including outputs shorter than `k`.
#[test]
fn short_outputs_never_overrun_under_speculation() {
    let config = spec_on(ServingConfig::paper_default(PlatformProfile::rk3588()));
    let mut server = Server::new(config, one_model());
    for i in 0..12u64 {
        // Output lengths 1..=4 straddle every `min(k, left-1)` edge.
        let output_len = 1 + (i as usize % 4);
        server.submit_at(SimTime::from_millis(i * 40), i, MODEL, 64, output_len);
    }
    let report = server.run();
    assert_eq!(report.fleet.completed, 12);
    assert_eq!(
        report.fleet.batch_max_steps_behind, 0,
        "no sequence may fall behind its scripted token budget"
    );
}

/// The headline acceptance comparison (gated in CI from the perf-smoke
/// numbers; this is the fast in-tree version): speculation buys at least
/// 1.5× throughput on the decode-heavy agent fleet, and leaves cold-heavy
/// p95 TTFT within 1.05× of the plain batched dispatcher.
#[test]
fn speculation_speeds_up_decode_heavy_fleets_at_unchanged_cold_p95() {
    let off = fleet_run(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        0xA6E7,
    );
    let on = fleet_run(
        spec_on(ServingConfig::paper_default(PlatformProfile::rk3588())),
        0xA6E7,
    );
    assert!(
        on.fleet.throughput_rps >= 1.5 * off.fleet.throughput_rps,
        "speculation must buy >=1.5x on the decode-heavy fleet: {} vs {}",
        on.fleet.throughput_rps,
        off.fleet.throughput_rps
    );
    assert!(
        on.fleet.batched_decode_tps >= 1.5 * off.fleet.batched_decode_tps,
        "effective tokens/s must scale with the accepted prefixes: {} vs {}",
        on.fleet.batched_decode_tps,
        off.fleet.batched_decode_tps
    );

    let quiet =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.06 }, 120, &MODELS);
    let off = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &quiet,
        7,
    );
    let on = Server::run_workload(
        spec_on(ServingConfig::paper_default(PlatformProfile::rk3588())),
        catalogue(),
        &quiet,
        7,
    );
    let (p95_off, p95_on) = (
        off.fleet.ttft_ms.unwrap().p95,
        on.fleet.ttft_ms.unwrap().p95,
    );
    assert!(
        p95_on <= p95_off * 1.05,
        "cold-heavy p95 TTFT must stay within 1.05x: {p95_on} vs {p95_off}"
    );
}

/// Regression guard for the slot dispatcher's sharing-stall attribution: a
/// decode that finishes mid-accounting-interval is only charged the sharing
/// slowdown over the share it actually used, so for every request
/// `intrinsic decode + sharing stall + preemption stall <= decode wall time`
/// (up to sub-microsecond event rounding).  The unclipped attribution
/// charged finishing decodes a full interval share, which breaks this bound
/// the moment an event catches a decode with less work left than its share.
#[test]
fn sharing_stall_is_clipped_to_the_share_a_finishing_decode_used() {
    let workload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.12 }, 80, &MODELS);
    let report = Server::run_workload(
        ServingConfig::overlap(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        0xC01D,
    );
    let mut sharing_seen = false;
    for r in &report.records {
        let tokens = r.request.output_len.saturating_sub(1);
        if tokens == 0 {
            continue;
        }
        let wall = r.completed.saturating_since(r.first_token).as_secs_f64();
        let intrinsic = tokens as f64 / r.report.decode_tokens_per_sec;
        let stalls = r.stall_sharing.as_secs_f64() + r.stall_preemption.as_secs_f64();
        assert!(
            intrinsic + stalls <= wall + 10e-6,
            "request {}: intrinsic {intrinsic}s + stalls {stalls}s must fit in \
             its decode wall time {wall}s",
            r.request.id
        );
        sharing_seen |= r.stall_sharing > SimDuration::ZERO;
    }
    assert!(
        sharing_seen,
        "the trace must actually exercise decode sharing"
    );
}
