//! Acceptance properties of the quantized sealed-spill subsystem: at an
//! equal normal-world CMA spill budget, INT8 sealing holds ≥ 1.9× the f16
//! page count (INT4 ≥ 3.7×), follow-up latency does not regress even though
//! restores now pay a dequant pass, the dequant cost is really charged (and
//! really hidden behind the NPU window), the F16 default is bit-for-bit the
//! unquantized behaviour, and the new introspection (chain-store stats,
//! hit-depth distribution) surfaces through `FleetStats`.

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig, ServingReport};
use tzllm::{KvConfig, SpillFormat};
use workloads::WorkloadSpec;

const MODEL: &str = "qwen2.5-3b";
// Small enough that the squeezed chat fleet saturates it under every format
// (peak sealed demand is ~146 MiB plain, ~39 MiB at INT4), so the capacity
// comparison measures the budget, not the workload.
const SPILL_BUDGET: u64 = 32 * sim_core::MIB;

fn catalogue() -> Vec<llm::ModelSpec> {
    vec![llm::ModelSpec::by_name(MODEL).expect("catalogue model")]
}

/// The squeezed-chat-budget config: retained KV far exceeds the secure
/// allowance, so pages continuously seal out to a spill region small enough
/// that the spill budget binds too — the regime where the spill format
/// decides how many tokens survive.
fn squeezed(format: SpillFormat) -> ServingConfig {
    let mut config = ServingConfig::chat_default(PlatformProfile::rk3588());
    // These properties are about the spill format, not the scheduler: pin
    // the slot dispatcher (batching off, two slots) so turns still queue
    // (restore-ahead needs a queued session to prewarm) and the
    // sealed-demand peaks stay in the regime the page-count thresholds were
    // calibrated for.  Batched KV coverage lives in tests/kv_reuse.rs and
    // tests/batching.rs.
    config.continuous_batching = false;
    config.max_inflight = 2;
    config.kv.budget_fraction = 0.02;
    config.kv.spill_budget = SPILL_BUDGET;
    config.kv.spill_format = format;
    config
}

fn chat_run(config: ServingConfig) -> ServingReport {
    let workload = WorkloadSpec::chat_with_context(4, 40, SimDuration::from_secs(30), MODEL, 4096);
    Server::run_workload(config, catalogue(), &workload, 0xCAA7)
}

fn followup_p95(report: &ServingReport) -> f64 {
    report
        .fleet
        .followup_ttft_ms
        .expect("chat runs follow-ups")
        .p95
}

#[test]
fn equal_spill_budget_holds_2x_pages_at_int8_and_4x_at_int4() {
    let f16 = chat_run(squeezed(SpillFormat::F16));
    let int8 = chat_run(squeezed(SpillFormat::Int8));
    let int4 = chat_run(squeezed(SpillFormat::Int4));

    // The budget must actually bind, or the capacity claim is vacuous.
    assert!(
        f16.fleet.kv_peak_sealed_bytes > SPILL_BUDGET * 8 / 10,
        "spill budget not saturated under f16: {} of {SPILL_BUDGET}",
        f16.fleet.kv_peak_sealed_bytes
    );
    for report in [&f16, &int8, &int4] {
        assert!(
            report.fleet.kv_peak_sealed_bytes <= SPILL_BUDGET,
            "spill budget overrun"
        );
    }

    // Headline: the same CMA bytes hold 1.9x / 3.7x the sealed pages.
    let (p_f16, p_int8, p_int4) = (
        f16.fleet.kv_peak_sealed_pages as f64,
        int8.fleet.kv_peak_sealed_pages as f64,
        int4.fleet.kv_peak_sealed_pages as f64,
    );
    assert!(
        p_int8 >= 1.9 * p_f16,
        "INT8 must hold >= 1.9x the f16 page count ({p_int8} vs {p_f16})"
    );
    assert!(
        p_int4 >= 3.7 * p_f16,
        "INT4 must hold >= 3.7x the f16 page count ({p_int4} vs {p_f16})"
    );

    // Compression is visible in the byte accounting: compressed writes are
    // about half (INT8) the plain bytes sealed.
    let ratio = int8.fleet.kv_spilled_bytes as f64 / int8.fleet.kv_spilled_compressed_bytes as f64;
    assert!(
        (1.9..2.0).contains(&ratio),
        "INT8 compressed spill ratio out of range: {ratio}"
    );
    assert_eq!(
        f16.fleet.kv_spilled_bytes, f16.fleet.kv_spilled_compressed_bytes,
        "f16 writes plain bytes"
    );

    // The dequant pass is really charged under a quantized format and never
    // under f16.
    assert!(int8.fleet.kv_dequant_bytes > 0);
    assert!(int4.fleet.kv_dequant_bytes > 0);
    assert_eq!(f16.fleet.kv_dequant_bytes, 0);
}

#[test]
fn int8_followup_p95_does_not_regress_versus_f16() {
    // Same scripts, same budgets; INT8 keeps ~2x the spilled tokens alive
    // (fewer re-prefills) while each restore adds a dequant pass that the
    // NPU window mostly hides — so follow-up p95 must be no worse, and the
    // retained-token win usually makes it strictly better.
    let f16 = chat_run(squeezed(SpillFormat::F16));
    let int8 = chat_run(squeezed(SpillFormat::Int8));
    let (p95_f16, p95_int8) = (followup_p95(&f16), followup_p95(&int8));
    assert!(
        p95_int8 <= p95_f16 * 1.01,
        "INT8 follow-up p95 regressed: {p95_int8:.1} ms vs f16 {p95_f16:.1} ms"
    );
    // More of the reusable prefix survives the squeezed budgets under INT8.
    assert!(
        int8.fleet.kv_dropped_bytes < f16.fleet.kv_dropped_bytes,
        "INT8 must drop fewer retained bytes ({} vs {})",
        int8.fleet.kv_dropped_bytes,
        f16.fleet.kv_dropped_bytes
    );
}

#[test]
fn quantized_restore_ahead_still_streams_on_idle_lanes() {
    let int8 = chat_run(squeezed(SpillFormat::Int8));
    assert!(
        int8.fleet.kv_restore_ahead_bytes > 0,
        "restore-ahead must prewarm sealed quantized pages"
    );
    assert!(int8.fleet.kv_hit_rate > 0.8, "reuse must stay effective");
}

#[test]
fn f16_default_is_bit_for_bit_the_unquantized_config() {
    // `chat_default` and an explicit F16 config must be indistinguishable —
    // every counter, every percentile.
    let default = chat_run({
        let mut c = ServingConfig::chat_default(PlatformProfile::rk3588());
        c.continuous_batching = false;
        c.max_inflight = 2;
        c.kv.budget_fraction = 0.02;
        c.kv.spill_budget = SPILL_BUDGET;
        c
    });
    let explicit = chat_run(squeezed(SpillFormat::F16));
    assert_eq!(
        format!("{:?}", default.fleet),
        format!("{:?}", explicit.fleet)
    );
}

#[test]
fn dequant_calibrations_agree_across_profile_and_cost_model() {
    // The serving layer charges dequant at the platform profile's rate; the
    // cost model carries the same calibration for analysis/reporting.  They
    // must not drift apart.
    assert_eq!(
        llm::CostModel::rk3588().params().dequant_bytes_per_sec,
        PlatformProfile::rk3588().dequant_bytes_per_sec
    );
}

#[test]
fn quantized_runs_are_deterministic() {
    let a = chat_run(squeezed(SpillFormat::Int4));
    let b = chat_run(squeezed(SpillFormat::Int4));
    assert_eq!(format!("{:?}", a.fleet), format!("{:?}", b.fleet));
}

#[test]
fn chain_stats_and_hit_depth_surface_through_fleet_stats() {
    // An assistant fleet sharing one system prompt, with the quantized chat
    // config (popularity retention on): the chain store must report a page
    // with refs >= 2 (the shared head), the hit-depth distribution must be
    // populated, and sharing must actually win.
    let mut config = ServingConfig::chat_default(PlatformProfile::rk3588());
    config.kv = KvConfig::chat_quantized(SpillFormat::Int8);
    let workload = WorkloadSpec::assistant(6, 12, SimDuration::from_secs(600), 512, MODEL);
    let report = Server::run_workload(config, catalogue(), &workload, 0x5A5A);

    assert!(
        !report.fleet.kv_chain.is_empty(),
        "chain stats must surface"
    );
    let chain = &report.fleet.kv_chain[0];
    assert!(chain.pages > 0);
    assert_eq!(
        chain.pages,
        chain.resident_pages + chain.sealed_pages,
        "residency split must partition the store"
    );
    assert!(
        chain
            .refs_histogram
            .iter()
            .any(|&(refs, n)| refs >= 2 && n > 0),
        "the shared system prompt must show up as refs >= 2: {:?}",
        chain.refs_histogram
    );
    assert!(chain.max_depth > 0);

    let depths = &report.fleet.kv_hit_depth;
    assert!(!depths.is_empty(), "hit-depth distribution must surface");
    assert!(
        depths.iter().any(|&(depth, n)| depth > 0 && n > 0),
        "some dispatch must have hit a non-trivial chain depth: {depths:?}"
    );
    assert!(report.fleet.kv_shared_hit_rate > 0.5);
}

#[test]
fn popularity_retention_protects_the_shared_head_under_pressure() {
    // Same assistant fleet under a squeezed secure budget, popularity on vs
    // off; with popularity retention the refs-N system-prompt pages stay
    // resident, so cold turns unseal less.
    let run = |popularity: bool| {
        let mut config = ServingConfig::chat_default(PlatformProfile::rk3588());
        config.kv.spill_format = SpillFormat::Int8;
        config.kv.popularity_retention = popularity;
        config.kv.budget_fraction = 0.01;
        let workload = WorkloadSpec::assistant(8, 24, SimDuration::from_secs(120), 512, MODEL);
        Server::run_workload(config, catalogue(), &workload, 0x9A9A)
    };
    let lru = run(false);
    let pop = run(true);
    // Both runs share and spill; the popularity run serves at least as many
    // shared tokens and never a worse shared-hit rate.
    assert!(lru.fleet.kv_spilled_bytes > 0 && pop.fleet.kv_spilled_bytes > 0);
    assert!(
        pop.fleet.kv_shared_hit_rate >= lru.fleet.kv_shared_hit_rate,
        "popularity retention must not lose shared hits ({} vs {})",
        pop.fleet.kv_shared_hit_rate,
        lru.fleet.kv_shared_hit_rate
    );
}
