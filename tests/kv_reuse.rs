//! Correctness and acceptance properties of the secure KV-cache manager:
//! enabling KV reuse never worsens any single request's service TTFT versus
//! the paper's release-everything baseline on the same conversation scripts,
//! follow-up turns improve by the acceptance factor, spilled state still
//! reuses (via unseal), restore-ahead streams sealed KV on idle lanes, and
//! the whole thing is deterministic and invisible when disabled.

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::kv::KvConfig;
use tzllm::serving::{RetentionPolicy, Server, ServingConfig, ServingReport};
use workloads::WorkloadSpec;

const MODEL: &str = "qwen2.5-3b";

fn catalogue() -> Vec<llm::ModelSpec> {
    vec![llm::ModelSpec::by_name(MODEL).expect("catalogue model")]
}

fn chat(sessions: usize, requests: usize, think_secs: u64) -> WorkloadSpec {
    WorkloadSpec::chat(
        sessions,
        requests,
        SimDuration::from_secs(think_secs),
        MODEL,
    )
}

/// Per-session request sequences, in dispatch order.  Requests are matched
/// across runs by (session, position) because closed-loop arrival *times*
/// legitimately shift when responses get faster.
fn by_session_turn(report: &ServingReport) -> Vec<((u64, usize), &tzllm::RequestRecord)> {
    let mut out = Vec::new();
    let mut sessions: Vec<u64> = report.records.iter().map(|r| r.request.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    for s in sessions {
        let mut recs: Vec<&tzllm::RequestRecord> = report
            .records
            .iter()
            .filter(|r| r.request.session == s)
            .collect();
        recs.sort_by_key(|r| r.arrival);
        for (i, r) in recs.into_iter().enumerate() {
            out.push(((s, i), r));
        }
    }
    out
}

/// The pointwise regression (mirrors the restore-ahead test in
/// `tests/overlap.rs`): on the same deterministic conversation scripts, with
/// parameters pinned warm (so the only difference is KV handling), enabling
/// KV reuse never makes any single request's service TTFT worse.  Tolerance:
/// the pipeline scheduler's known ±5 ms priority anomaly when a plan's
/// shape changes.
#[test]
fn kv_reuse_never_worsens_any_ttft_on_the_same_trace() {
    let workload = chat(4, 40, 30);
    let mut base_cfg = ServingConfig::serial(PlatformProfile::rk3588());
    base_cfg.retention = RetentionPolicy::KeepAll;
    let base = Server::run_workload(base_cfg.clone(), catalogue(), &workload, 11);

    let mut kv_cfg = base_cfg;
    kv_cfg.kv = KvConfig::chat_default();
    let kv = Server::run_workload(kv_cfg, catalogue(), &workload, 11);

    assert_eq!(base.records.len(), kv.records.len());
    assert!(
        kv.fleet.kv_reused_tokens > 0,
        "the trace must actually exercise KV reuse"
    );
    let base_by_turn = by_session_turn(&base);
    let kv_by_turn = by_session_turn(&kv);
    let tolerance = SimDuration::from_millis(5);
    let mut improved = 0usize;
    let mut followups = 0usize;
    for ((bk, b), (kk, k)) in base_by_turn.iter().zip(&kv_by_turn) {
        assert_eq!(bk, kk, "same scripts, same per-session turns");
        assert_eq!(b.request.prompt_len, k.request.prompt_len);
        assert!(
            k.report.ttft <= b.report.ttft + tolerance,
            "session {} turn {} got slower with KV reuse: {} vs {}",
            bk.0,
            bk.1,
            k.report.ttft,
            b.report.ttft
        );
        if k.request.shared_prefix_len > 0 {
            followups += 1;
            if k.report.ttft < b.report.ttft {
                improved += 1;
            }
        }
    }
    assert!(followups > 20, "most turns are follow-ups: {followups}");
    assert!(
        improved * 10 >= followups * 9,
        "nearly every follow-up should improve ({improved}/{followups})"
    );
}

/// The acceptance criterion: on the chat-heavy workload at equal memory
/// pressure, follow-up-turn p95 TTFT improves at least 2x over the
/// release-everything baseline, with a high KV hit rate.
#[test]
fn followup_p95_ttft_improves_2x_on_chat_workload() {
    let workload = chat(6, 60, 30);
    let base = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        7,
    );
    let kv = Server::run_workload(
        ServingConfig::chat_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        7,
    );
    let base_p95 = base.fleet.followup_ttft_ms.expect("follow-ups ran").p95;
    let kv_p95 = kv.fleet.followup_ttft_ms.expect("follow-ups ran").p95;
    assert!(
        kv_p95 * 2.0 <= base_p95,
        "follow-up p95 TTFT must improve >= 2x: {kv_p95:.0} ms vs {base_p95:.0} ms"
    );
    assert!(
        kv.fleet.kv_hit_rate > 0.8,
        "hit rate {}",
        kv.fleet.kv_hit_rate
    );
    assert_eq!(base.fleet.kv_reused_tokens, 0, "baseline reuses nothing");
}

/// Under a squeezed secure budget every retained page spills; follow-ups
/// still reuse the whole prefix by unsealing it, and reuse still wins.
#[test]
fn spilled_prefixes_still_reuse_via_unseal() {
    let workload = chat(4, 40, 30);
    let base = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        3,
    );
    let mut cfg = ServingConfig::chat_default(PlatformProfile::rk3588());
    cfg.kv.budget_fraction = 0.0; // no secure residency between requests
    let kv = Server::run_workload(cfg, catalogue(), &workload, 3);

    assert!(kv.fleet.kv_spilled_bytes > 0, "pages must spill");
    assert!(
        kv.fleet.kv_unsealed_bytes + kv.fleet.kv_restore_ahead_bytes > 0,
        "spilled pages must come back via unseal"
    );
    assert!(
        kv.fleet.kv_hit_rate > 0.8,
        "sealed state still serves the prefix: {}",
        kv.fleet.kv_hit_rate
    );
    let base_p95 = base.fleet.followup_ttft_ms.unwrap().p95;
    let kv_p95 = kv.fleet.followup_ttft_ms.unwrap().p95;
    assert!(
        kv_p95 < base_p95,
        "even fully spilled reuse beats re-prefilling: {kv_p95:.0} vs {base_p95:.0} ms"
    );
}

/// Restore-ahead streams sealed KV pages on idle lanes while the device
/// decodes, so a queued follow-up dispatches with its prefix already
/// unsealed.
#[test]
fn restore_ahead_prewarms_sealed_kv() {
    let workload = chat(4, 32, 1); // tiny think time: the queue stays busy
    let mut cfg = ServingConfig::serial(PlatformProfile::rk3588());
    cfg.restore_ahead = true;
    cfg.kv = KvConfig::chat_default();
    cfg.kv.budget_fraction = 0.0; // everything spills, so prewarm has work
    let report = Server::run_workload(cfg, catalogue(), &workload, 19);
    assert!(
        report.fleet.kv_restore_ahead_bytes > 0,
        "idle lanes must unseal queued sessions' KV ahead of dispatch"
    );
    for lane in &report.resources {
        assert!(lane.peak_in_use <= lane.capacity, "{}", lane.name);
        assert_eq!(lane.in_use, 0, "{}: still held at shutdown", lane.name);
    }
}

/// KV serving is deterministic: same seed, same records, byte for byte.
#[test]
fn kv_serving_is_deterministic() {
    let workload = chat(3, 24, 10);
    let run = |seed| {
        Server::run_workload(
            ServingConfig::chat_default(PlatformProfile::rk3588()),
            catalogue(),
            &workload,
            seed,
        )
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    let c = run(6);
    assert_ne!(format!("{:?}", a.records), format!("{:?}", c.records));
}

/// With the KV manager disabled, conversation workloads serve exactly like
/// before: shared prefixes are ignored and every KV counter stays zero.
#[test]
fn disabled_kv_manager_is_invisible() {
    let workload = chat(3, 18, 10);
    let report = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        9,
    );
    assert_eq!(report.fleet.kv_reused_tokens, 0);
    assert_eq!(report.fleet.kv_spilled_bytes, 0);
    assert_eq!(report.fleet.kv_unsealed_bytes, 0);
    assert_eq!(report.fleet.kv_restore_ahead_bytes, 0);
    assert_eq!(report.fleet.kv_hit_rate, 0.0);
    for r in &report.records {
        assert_eq!(r.kv_reused_tokens, 0);
    }
}
