//! Cross-crate serving-layer tests: deterministic replay of whole fleets and
//! end-to-end latency/throughput behaviour under rising load.

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::serving::{RetentionPolicy, Server, ServingConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

fn config() -> ServingConfig {
    ServingConfig::paper_default(PlatformProfile::rk3588())
}

fn catalogue() -> Vec<llm::ModelSpec> {
    llm::ModelSpec::catalogue()
}

/// The same traffic seed through the serving layer yields *byte-identical*
/// fleet stats across two runs — under both the serial dispatcher and the
/// overlapped dispatcher (multi-slot + restore-ahead + plan cache): the
/// `sim_core::rng` streams and the engine's insertion-order tie-breaking are
/// a determinism contract this test guards.
#[test]
fn deterministic_replay_yields_byte_identical_fleet_stats() {
    let workloads = [
        WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: 0.05 },
            30,
            "qwen2.5-3b",
        ),
        WorkloadSpec::standard(
            ArrivalProcess::Bursty {
                bursts_per_sec: 0.01,
                burst_size: 4,
                intra_gap: SimDuration::from_millis(100),
            },
            24,
            "phi-3-3.8b",
        ),
        WorkloadSpec::standard(
            ArrivalProcess::ClosedLoop {
                sessions: 5,
                mean_think: SimDuration::from_secs(30),
            },
            25,
            "tinyllama-1.1b",
        ),
    ];
    let dispatchers = [
        ("overlap", config()),
        ("serial", ServingConfig::serial(PlatformProfile::rk3588())),
    ];
    for (i, workload) in workloads.iter().enumerate() {
        for (name, cfg) in &dispatchers {
            let seed = 1000 + i as u64;
            let a = Server::run_workload(cfg.clone(), catalogue(), workload, seed);
            let b = Server::run_workload(cfg.clone(), catalogue(), workload, seed);
            assert_eq!(
                format!("{:?}", a.fleet),
                format!("{:?}", b.fleet),
                "workload {i} ({name}): fleet stats must replay byte-identically"
            );
            // The per-request records replay too (order, timing, cache state).
            assert_eq!(
                format!("{:?}", a.records),
                format!("{:?}", b.records),
                "workload {i} ({name}): records must replay byte-identically"
            );
            // A different seed actually changes the run (not vacuous).
            let c = Server::run_workload(cfg.clone(), catalogue(), workload, seed + 1);
            assert_ne!(format!("{:?}", a.fleet), format!("{:?}", c.fleet));
        }
    }
}

/// Raising the arrival rate must not lower throughput, and must not improve
/// tail TTFT: the latency-throughput trade-off the serving benchmark sweeps.
#[test]
fn higher_arrival_rate_degrades_tail_latency_gracefully() {
    let mut p99s = Vec::new();
    let mut throughputs = Vec::new();
    for rate in [0.02, 0.05, 0.2] {
        let workload = WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: rate },
            40,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config(), catalogue(), &workload, 7);
        assert_eq!(report.fleet.completed + report.fleet.rejected, 40);
        p99s.push(report.fleet.ttft_ms.unwrap().p99);
        throughputs.push(report.fleet.throughput_rps);
    }
    assert!(
        p99s.windows(2).all(|w| w[1] >= w[0]),
        "p99 TTFT must not improve with load: {p99s:?}"
    );
    assert!(
        throughputs.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "throughput must not collapse: {throughputs:?}"
    );
}

/// With adaptive retention the fleet's p50 service TTFT is strictly below
/// the all-cold baseline — compared request-for-request on the *same* traffic
/// (same seed, so identical prompts), since prompt length varies per request.
#[test]
fn warm_p50_beats_cold_start() {
    let workload = WorkloadSpec::standard(
        ArrivalProcess::Poisson { rate_per_sec: 0.02 },
        20,
        "qwen2.5-3b",
    );

    let mut cold_cfg = config();
    cold_cfg.retention = RetentionPolicy::ReleaseAll;
    let cold = Server::run_workload(cold_cfg, catalogue(), &workload, 3);

    let mut warm_cfg = config();
    warm_cfg.retention = RetentionPolicy::Adaptive { step_fraction: 0.5 };
    let warm = Server::run_workload(warm_cfg, catalogue(), &workload, 3);

    let cold_p50 = cold.fleet.service_ttft_ms.unwrap().p50;
    let warm_p50 = warm.fleet.service_ttft_ms.unwrap().p50;
    assert!(
        warm_p50 < cold_p50,
        "warm p50 {warm_p50} must beat cold p50 {cold_p50}"
    );
    // Request-for-request, a warm cache never hurts — and helps once warm.
    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(c.request, w.request);
        assert!(w.report.ttft <= c.report.ttft);
    }
    assert!(warm.records[2].report.ttft < cold.records[2].report.ttft);
}
