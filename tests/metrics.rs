//! Cross-crate windowed-metrics tests: the per-shard metric series recorded
//! by live serving runs must merge in the fleet exactly like every other
//! shard statistic — associatively and permutation-invariantly, bucket by
//! bucket — and the log-bucketed histogram sketch must track the exact
//! sample percentiles within its advertised 1% relative-error bound.

use sim_core::{LogHistogram, SimDuration, WindowedMetrics};
use tz_hal::PlatformProfile;
use tzllm::fleet::{FleetStats, ShardStats};
use tzllm::serving::{Server, ServingConfig, ServingReport, SpeculationConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

const METRICS_WINDOW: SimDuration = SimDuration::from_secs(60);

fn catalogue() -> Vec<llm::ModelSpec> {
    llm::ModelSpec::catalogue()
}

/// Three metrics-on serving runs from three *different* regimes (mirroring
/// `tests/fleet.rs`), so the series merge is exercised with live TTFT/TBT
/// histograms, queue gauges and lane integrals — not just empty registries.
fn heterogeneous_metric_shards() -> (ShardStats, ShardStats, ShardStats) {
    let profile = PlatformProfile::rk3588();
    let models = vec![llm::ModelSpec::qwen2_5_3b()];

    let mut batched_cfg = ServingConfig::paper_default(profile.clone());
    batched_cfg.metrics = Some(METRICS_WINDOW);
    let batched = Server::run_workload(
        batched_cfg,
        catalogue(),
        &WorkloadSpec::standard_multi(
            ArrivalProcess::Poisson { rate_per_sec: 0.2 },
            30,
            &["tinyllama-1.1b", "qwen2.5-3b"],
        ),
        0xA,
    );

    let mut chat_cfg = ServingConfig::chat_default(profile.clone());
    chat_cfg.kv.budget_fraction = 0.02;
    chat_cfg.continuous_batching = false;
    chat_cfg.max_inflight = 2;
    chat_cfg.metrics = Some(METRICS_WINDOW);
    let chat = Server::run_workload(
        chat_cfg,
        models.clone(),
        &WorkloadSpec::chat(3, 24, SimDuration::from_secs(30), "qwen2.5-3b"),
        0xB,
    );

    let mut spec_cfg = ServingConfig::paper_default(profile);
    spec_cfg.speculation = SpeculationConfig::paper_default();
    spec_cfg.metrics = Some(METRICS_WINDOW);
    let spec = Server::run_workload(
        spec_cfg,
        models,
        &WorkloadSpec::agent_burst(3, 20, SimDuration::from_millis(250), "qwen2.5-3b"),
        0xC,
    );

    let a = ShardStats::from_report(0, "rk3588", &batched);
    let b = ShardStats::from_report(1, "rk3588", &chat);
    let c = ShardStats::from_report(2, "rk3588", &spec);
    for (label, shard) in [("A", &a), ("B", &b), ("C", &c)] {
        assert!(
            shard.metrics.is_enabled() && shard.metrics.series_count() > 0,
            "regime {label} must carry a live metric registry"
        );
    }
    (a, b, c)
}

#[test]
fn live_shard_series_merge_associatively_and_permutation_invariantly() {
    let (a, b, c) = heterogeneous_metric_shards();
    let singleton = |s: &ShardStats| FleetStats::from_shards([s.clone()]);

    let left = singleton(&a).merge(singleton(&b)).merge(singleton(&c));
    let right = singleton(&a).merge(singleton(&b).merge(singleton(&c)));
    assert_eq!(left, right, "the series merge must be associative");
    assert_eq!(left.digest(), right.digest());
    assert_eq!(left.merged_metrics(), right.merged_metrics());

    let permutations = [
        [&a, &b, &c],
        [&a, &c, &b],
        [&b, &a, &c],
        [&b, &c, &a],
        [&c, &a, &b],
        [&c, &b, &a],
    ];
    for perm in permutations {
        let merged = perm
            .iter()
            .fold(FleetStats::new(), |acc, s| acc.merge(singleton(s)));
        assert_eq!(
            merged, left,
            "the series merge must be permutation-invariant"
        );
        assert_eq!(merged.digest(), left.digest());
        assert_eq!(merged.merged_metrics(), left.merged_metrics());
    }

    // The merged registry really covers all three shards: completion
    // counters reconcile exactly, and the bucket-wise histogram merge
    // preserves every observation and its total mass.
    let merged = left.merged_metrics();
    let completed: u64 = merged
        .counter_classes("requests_completed")
        .into_iter()
        .flat_map(|class| merged.counter_series("requests_completed", class))
        .flat_map(|series| series.values())
        .sum();
    assert_eq!(completed, a.completed + b.completed + c.completed);
    for name in ["ttft_cold", "ttft_followup", "tbt"] {
        let merged_count: u64 = merged
            .histogram_classes(name)
            .into_iter()
            .filter_map(|class| merged.merged_histogram(name, class))
            .map(|h| h.count())
            .sum();
        let shard_count: u64 = [&a, &b, &c]
            .into_iter()
            .flat_map(|s| {
                s.metrics
                    .histogram_classes(name)
                    .into_iter()
                    .filter_map(|class| s.metrics.merged_histogram(name, class))
            })
            .map(|h| h.count())
            .sum();
        assert_eq!(
            merged_count, shard_count,
            "{name} observations lost in merge"
        );
    }
}

#[test]
fn disabled_registries_merge_as_identities() {
    let (a, _, _) = heterogeneous_metric_shards();
    let mut merged = WindowedMetrics::off();
    merged.merge_from(&WindowedMetrics::off());
    assert!(!merged.is_enabled(), "off ∪ off must stay off");
    merged.merge_from(&a.metrics);
    assert_eq!(merged, a.metrics, "off is a left identity of the merge");
    let mut right = a.metrics.clone();
    right.merge_from(&WindowedMetrics::off());
    assert_eq!(right, a.metrics, "off is a right identity of the merge");
}

/// The exact-oracle rank rule the sketch's error bound is stated against:
/// the sample at rank `ceil(q · (n − 1))` of the sorted observations.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank]
}

/// A deterministic xorshift generator, so the property sweep needs no RNG
/// dependency and reproduces bit-for-bit.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn sketch_quantiles_stay_within_one_percent_of_exact_across_distributions() {
    // Uniform, heavy-tailed (cubed uniform), and bimodal latency shapes, a
    // few sizes each: the 1% bound must hold for every (distribution, n, q).
    let mut seed = 0x5EED_CAFE_u64;
    for shape in 0..3 {
        for &n in &[100usize, 1_000, 10_000] {
            let mut sketch = LogHistogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let r = xorshift(&mut seed) % 1_000_000;
                let ns = match shape {
                    // 1 µs .. 1 s uniform.
                    0 => 1_000 + r * 1_000,
                    // Heavy tail: cube of a uniform draw.
                    1 => 1_000 + (r / 1_000).pow(3),
                    // Bimodal: fast cache hits vs slow cold restores.
                    _ => {
                        if r % 10 < 7 {
                            1_000_000 + r
                        } else {
                            500_000_000 + r * 100
                        }
                    }
                };
                sketch.observe_ns(ns);
                samples.push(ns);
            }
            samples.sort_unstable();
            for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
                let exact = exact_quantile(&samples, q) as f64;
                let est = sketch.quantile_ns(q).expect("non-empty sketch");
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= 0.0101,
                    "shape {shape}, n {n}, q {q}: sketch {est} vs exact {exact} \
                     ({:.3}% relative error)",
                    rel * 100.0
                );
            }
        }
    }
}

#[test]
fn sketch_merge_equals_observing_the_union() {
    // Merging per-shard sketches must give the same buckets as one sketch
    // fed the concatenated stream — the property the fleet quantiles rely on.
    let mut seed = 0xD1D5_u64;
    let mut union = LogHistogram::new();
    let mut merged = LogHistogram::new();
    for _ in 0..4 {
        let mut shard = LogHistogram::new();
        for _ in 0..2_500 {
            let ns = 1_000 + xorshift(&mut seed) % 2_000_000_000;
            shard.observe_ns(ns);
            union.observe_ns(ns);
        }
        merged.merge_from(&shard);
    }
    assert_eq!(merged, union);
}

/// A metrics-on run must leave every serving outcome untouched — the
/// integration-level restatement of the `serial_reproduction` proof, here
/// across the three heterogeneous regimes rather than the baseline workload.
#[test]
fn metric_recording_never_changes_a_serving_outcome() {
    fn strip(report: &ServingReport) -> (String, String) {
        (
            format!("{:?}", report.fleet),
            format!("{:?}", report.records),
        )
    }
    let profile = PlatformProfile::rk3588();
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.3 },
        40,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let off = Server::run_workload(
        ServingConfig::paper_default(profile.clone()),
        catalogue(),
        &workload,
        0x0FF,
    );
    let mut on_cfg = ServingConfig::paper_default(profile);
    on_cfg.metrics = Some(METRICS_WINDOW);
    let on = Server::run_workload(on_cfg, catalogue(), &workload, 0x0FF);
    assert_eq!(strip(&off), strip(&on));
    assert!(on.metrics.is_some() && off.metrics.is_none());
}
