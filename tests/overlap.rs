//! Correctness properties of the overlapped serving dispatcher: resource
//! capacity is never exceeded, restore-ahead never hurts any individual
//! request, the overlap wins the acceptance comparison against the serial
//! dispatcher, and the plan cache is semantically invisible.

use sim_core::{DetRng, Phase, SimDuration};
use tz_hal::PlatformProfile;
use tzllm::serving::{RetentionPolicy, Server, ServingConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

const MODELS: [&str; 3] = ["tinyllama-1.1b", "qwen2.5-3b", "phi-3-3.8b"];

fn catalogue() -> Vec<llm::ModelSpec> {
    MODELS
        .iter()
        .map(|m| llm::ModelSpec::by_name(m).expect("catalogue model"))
        .collect()
}

fn cold_heavy(rate: f64, requests: usize) -> WorkloadSpec {
    WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: rate },
        requests,
        &MODELS,
    )
}

/// For any workload shape, arrival rate, slot count and retention policy:
/// no device lane (CPU cores, NPU, flash channel) is ever oversubscribed.
/// The ledger additionally panics inside the run on any transient
/// oversubscription, so this property is checked at every event, not just at
/// the end.
#[test]
fn no_lane_ever_exceeds_capacity() {
    let mut rng = DetRng::new(0x6f766572); // "over"
    for case in 0..24 {
        let rate = 0.02 + rng.next_f64() * 0.5;
        let requests = 10 + (rng.gen_range(0, 30) as usize);
        let max_inflight = 1 + (rng.gen_range(0, 4) as usize);
        let retention = *rng.choose(&[
            RetentionPolicy::ReleaseAll,
            RetentionPolicy::Adaptive {
                step_fraction: 0.25,
            },
            RetentionPolicy::KeepAll,
        ]);
        let process = *rng.choose(&[
            ArrivalProcess::Poisson { rate_per_sec: rate },
            ArrivalProcess::Bursty {
                bursts_per_sec: rate / 4.0,
                burst_size: 4,
                intra_gap: SimDuration::from_millis(50),
            },
            ArrivalProcess::ClosedLoop {
                sessions: 4,
                mean_think: SimDuration::from_secs(2),
            },
        ]);
        let seed = rng.gen_range(0, 1 << 20);

        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.max_inflight = max_inflight;
        config.retention = retention;
        let workload = WorkloadSpec::standard_multi(process, requests, &MODELS);
        let report = Server::run_workload(config, catalogue(), &workload, seed);
        assert_eq!(
            report.fleet.completed + report.fleet.rejected,
            requests,
            "case {case}: no request may vanish"
        );
        for lane in &report.resources {
            assert!(
                lane.peak_in_use <= lane.capacity,
                "case {case} ({max_inflight} slots, {retention:?}): lane {} peaked at {} \
                 over capacity {}",
                lane.name,
                lane.peak_in_use,
                lane.capacity
            );
            assert_eq!(
                lane.in_use, 0,
                "case {case}: lane {} still held after the run drained",
                lane.name
            );
        }
    }
}

/// Restore-ahead on the serial slot is a pure win: with dispatch order and
/// decode pacing identical to the serial dispatcher, pre-warming the next
/// request's cache can only move its (and every later request's) first token
/// earlier.  Tolerance: the pipeline scheduler's known ±5 ms priority
/// anomaly when a plan's cached prefix changes.
#[test]
fn restore_ahead_never_worsens_any_ttft_on_the_same_trace() {
    let workload = cold_heavy(0.08, 60);
    let mut cold_cfg = ServingConfig::serial(PlatformProfile::rk3588());
    cold_cfg.retention = RetentionPolicy::ReleaseAll;
    let serial = Server::run_workload(cold_cfg.clone(), catalogue(), &workload, 11);

    let mut ahead_cfg = cold_cfg;
    ahead_cfg.restore_ahead = true;
    let ahead = Server::run_workload(ahead_cfg, catalogue(), &workload, 11);

    assert_eq!(serial.records.len(), ahead.records.len());
    assert!(
        ahead.fleet.restore_ahead_bytes > 0,
        "the trace must actually exercise restore-ahead"
    );
    let tolerance = SimDuration::from_millis(5);
    let mut improved = 0usize;
    for (s, a) in serial.records.iter().zip(&ahead.records) {
        assert_eq!(s.request, a.request, "same trace, same dispatch order");
        assert!(
            a.ttft_e2e() <= s.ttft_e2e() + tolerance,
            "request {} got slower with restore-ahead: {} vs {}",
            a.request.id,
            a.ttft_e2e(),
            s.ttft_e2e()
        );
        if a.ttft_e2e() < s.ttft_e2e() {
            improved += 1;
        }
    }
    assert!(
        improved > serial.records.len() / 4,
        "restore-ahead should improve a sizeable share of requests ({improved})"
    );
}

/// When a dispatch needs the lanes a background restore-ahead holds, the
/// restore is cancelled mid-flight — and the ledger must account the
/// *truncated* interval, not the reserved one.  The proof is exact: each
/// lane's busy integral (`in_use × dt`), accumulated incrementally at
/// every acquire/release, must equal the integral recomputed from the
/// telemetry occupancy spans, which derive from the reservation journal's
/// actual release instants.  A restore credited to its reserved end would
/// leave the two disagreeing by the cancelled tail.
#[test]
fn interrupted_restore_ahead_truncates_ledger_busy_time() {
    let workload = cold_heavy(0.08, 60);
    let mut config = ServingConfig::serial(PlatformProfile::rk3588());
    config.retention = RetentionPolicy::ReleaseAll;
    config.restore_ahead = true;
    config.telemetry = true;
    let report = Server::run_workload(config, catalogue(), &workload, 11);
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    assert!(
        telemetry.counter("restore_ahead.interrupted") > 0,
        "the trace must cancel at least one in-flight restore"
    );
    assert!(
        telemetry.counter("restore_ahead.completed") > 0,
        "and still let some restores run to completion"
    );

    for lane in &report.resources {
        let mut from_spans: u128 = 0; // nanoseconds × units
        for s in telemetry.spans() {
            if s.phase != Phase::Occupancy {
                continue;
            }
            let label = telemetry.resolve(s.label);
            let Some((name, level)) = label.split_once('=') else {
                continue;
            };
            if name != lane.name {
                continue;
            }
            let level: u128 = level.parse().expect("occupancy level");
            from_spans += level * s.duration().as_nanos() as u128;
        }
        assert_eq!(
            from_spans,
            lane.busy_unit_time.as_nanos() as u128,
            "lane {}: the busy integral must match the journal-derived \
             occupancy spans exactly — a cancelled restore contributes its \
             truncated interval, not the reserved one",
            lane.name
        );
    }

    // The cancelled restores are visible as such on the lane tracks, each
    // closed at its interruption instant (end == the moment the lanes were
    // handed to the dispatch, which the occupancy cross-check above pins).
    let interrupted = telemetry
        .spans()
        .iter()
        .filter(|s| {
            s.phase == Phase::RestoreAhead && telemetry.resolve(s.label).contains("(interrupted)")
        })
        .count();
    assert_eq!(
        interrupted as u64,
        telemetry.counter("restore_ahead.interrupted")
    );
}

/// The acceptance comparison: at a fixed sub-saturation arrival rate on
/// cold-heavy traffic, the overlapped dispatcher strictly improves p95
/// end-to-end TTFT; at an overload rate, saturation throughput does not
/// regress.
#[test]
fn overlap_beats_serial_on_cold_heavy_traffic() {
    let workload = cold_heavy(0.06, 80);
    let serial = Server::run_workload(
        ServingConfig::serial(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        7,
    );
    let overlap = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        7,
    );
    let p95_serial = serial.fleet.ttft_ms.unwrap().p95;
    let p95_overlap = overlap.fleet.ttft_ms.unwrap().p95;
    assert!(
        p95_overlap < p95_serial,
        "overlap p95 {p95_overlap} must beat serial p95 {p95_serial}"
    );

    let overload = cold_heavy(0.5, 80);
    let serial = Server::run_workload(
        ServingConfig::serial(PlatformProfile::rk3588()),
        catalogue(),
        &overload,
        7,
    );
    let overlap = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &overload,
        7,
    );
    assert!(
        overlap.fleet.throughput_rps >= serial.fleet.throughput_rps * 0.95,
        "saturation throughput must not regress: {} vs {}",
        overlap.fleet.throughput_rps,
        serial.fleet.throughput_rps
    );
}

/// The plan cache memoises deterministic computation, so enabling it must
/// not change a single bit of the serving outcome.
#[test]
fn plan_cache_is_semantically_transparent() {
    let workload = cold_heavy(0.1, 200);
    let mut no_cache = ServingConfig::paper_default(PlatformProfile::rk3588());
    no_cache.plan_cache_capacity = 0;
    let baseline = Server::run_workload(no_cache, catalogue(), &workload, 23);

    let mut tiny_cache = ServingConfig::paper_default(PlatformProfile::rk3588());
    tiny_cache.plan_cache_capacity = 16; // force wholesale evictions too
    let evicting = Server::run_workload(tiny_cache, catalogue(), &workload, 23);

    let big_cache = ServingConfig::paper_default(PlatformProfile::rk3588());
    let cached = Server::run_workload(big_cache, catalogue(), &workload, 23);

    for (label, run) in [("evicting", &evicting), ("default", &cached)] {
        assert_eq!(
            format!("{:?}", baseline.records),
            format!("{:?}", run.records),
            "{label}: records must be byte-identical with and without the plan cache"
        );
    }
    assert!(
        cached.fleet.plan_cache_hits > 0,
        "the default-capacity run must actually hit"
    );
}
