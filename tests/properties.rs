//! Property-based tests (proptest) over the core data structures and
//! invariants: the pipeline scheduler, CTR random-access decryption, the
//! TZASC contiguity rules and the cache controller.

use proptest::prelude::*;

use llm::{ComputationGraph, CostModel, ModelSpec};
use sim_core::SimDuration;
use tz_crypto::AesCtr;
use tz_hal::{PhysAddr, PhysRange, PlatformProfile, Tzasc, World, PAGE_SIZE};
use tzllm::{simulate, CacheController, CachePolicy, PipelineConfig, Policy, RestorePlan, RestoreRates};

fn small_model(layers: usize, hidden: usize) -> ModelSpec {
    ModelSpec {
        name: format!("prop-{layers}-{hidden}"),
        layers,
        hidden,
        heads: 4,
        kv_heads: 2,
        ffn: hidden * 2,
        vocab: 512,
        context: 1024,
        ..ModelSpec::nano()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any model shape, prompt length, cache fraction, occupancy and
    /// policy: the simulated makespan is bounded below by the critical-path
    /// lower bound and above by the sum of all operator durations, and more
    /// caching never makes the preemptive schedule slower.
    #[test]
    fn pipeline_makespan_is_bounded(
        layers in 2usize..10,
        hidden in 32usize..160,
        prompt in 1usize..256,
        cached_frac in 0.0f64..1.0,
        occupancy in 0.0f64..1.0,
        policy_idx in 0usize..3,
    ) {
        let model = small_model(layers, (hidden / 16) * 16);
        let graph = ComputationGraph::prefill(&model, prompt);
        let cost = CostModel::rk3588();
        let profile = PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, occupancy, 4);
        let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
        let cached = (graph.total_param_bytes() as f64 * cached_frac) as u64;
        let plan = RestorePlan::build(&graph, |i| times[i], &rates, cached);
        plan.validate().unwrap();

        let policy = [Policy::Sequential, Policy::Priority, Policy::PriorityPreemptive][policy_idx];
        let result = simulate(&plan, &PipelineConfig {
            cpu_cores: 4,
            preempt_quantum: SimDuration::from_millis(2),
            policy,
        });

        // With four CPU cores the CPU-path total is not by itself a lower
        // bound (allocation, decryption and CPU compute can overlap on
        // different cores), so bound by the I/O path, the computation path and
        // the per-core CPU share.
        let paths = plan.critical_paths();
        let lower = paths.io.max(paths.compute).max(paths.cpu / 4);
        let upper: SimDuration = plan.ops.iter().map(|o| o.duration).sum();
        prop_assert!(result.makespan >= lower, "makespan {} < lower bound {}", result.makespan, lower);
        prop_assert!(result.makespan <= upper + SimDuration::from_micros(1),
            "makespan {} > serial upper bound {}", result.makespan, upper);
    }

    /// Restoration accounting: cached + restored always equals the model size,
    /// regardless of where the cache boundary falls.
    #[test]
    fn restore_plan_conserves_bytes(
        layers in 2usize..8,
        hidden in 32usize..128,
        cached_frac in 0.0f64..1.0,
    ) {
        let model = small_model(layers, (hidden / 16) * 16);
        let graph = ComputationGraph::prefill(&model, 16);
        let profile = PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, 0.5, 4);
        let total = graph.total_param_bytes();
        let cached = (total as f64 * cached_frac) as u64;
        let plan = RestorePlan::build(&graph, |_| SimDuration::from_micros(10), &rates, cached);
        prop_assert_eq!(plan.cached_bytes + plan.restored_bytes, total);
        prop_assert!(plan.cached_bytes <= cached + 1);
    }

    /// AES-CTR random-access decryption of any sub-range matches decrypting
    /// the whole stream.
    #[test]
    fn ctr_random_access_matches_full_stream(
        key_seed in any::<u8>(),
        len in 1usize..2048,
        window in any::<(u16, u16)>(),
    ) {
        let key = [key_seed; 32];
        let nonce = [0x11u8; 16];
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let plain: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut full = plain.clone();
        ctr.apply(&mut full);

        let a = (window.0 as usize) % len;
        let b = (window.1 as usize) % len;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut slice = full[lo..hi].to_vec();
        ctr.apply_at(lo as u64, &mut slice);
        prop_assert_eq!(&slice[..], &plain[lo..hi]);
    }

    /// However the TZASC region is grown and shrunk page-by-page, non-secure
    /// CPU access to the protected prefix is always denied and access beyond
    /// it is always allowed.
    #[test]
    fn tzasc_extend_shrink_protects_exactly_the_prefix(
        steps in proptest::collection::vec(1u64..16, 1..20),
        shrink_every in 2usize..5,
    ) {
        let mut tzasc = Tzasc::new();
        let base = PhysAddr::new(0x1_0000_0000);
        let id = tzasc.configure_region(World::Secure, PhysRange::new(base, PAGE_SIZE), []).unwrap();
        let mut size = PAGE_SIZE;
        for (i, pages) in steps.iter().enumerate() {
            if i % shrink_every == 0 && size > PAGE_SIZE {
                tzasc.shrink_region(World::Secure, id, PAGE_SIZE).unwrap();
                size -= PAGE_SIZE;
            } else {
                tzasc.extend_region(World::Secure, id, pages * PAGE_SIZE).unwrap();
                size += pages * PAGE_SIZE;
            }
            // Inside the prefix: denied.  Just past the end: allowed.
            let inside = PhysRange::new(PhysAddr::new(base.as_u64() + size - PAGE_SIZE), PAGE_SIZE);
            let outside = PhysRange::new(PhysAddr::new(base.as_u64() + size), PAGE_SIZE);
            prop_assert!(tzasc.check_cpu_access(World::NonSecure, inside).is_err());
            prop_assert!(tzasc.check_cpu_access(World::NonSecure, outside).is_ok());
            prop_assert_eq!(tzasc.protected_bytes(), size);
        }
    }

    /// The cache controller never caches more than the model and never
    /// releases more than it holds.
    #[test]
    fn cache_controller_accounting(
        total in 1u64..(64 * 1024 * 1024),
        fractions in proptest::collection::vec(0.0f64..1.0, 1..10),
        revokes in proptest::collection::vec(0u64..(16 * 1024 * 1024), 0..5),
    ) {
        let mut cache = CacheController::new(total);
        for f in fractions {
            cache.on_inference_complete();
            let released = cache.apply_policy(CachePolicy::Proportion(f));
            prop_assert!(cache.cached_bytes() <= total);
            prop_assert!(released <= total);
        }
        for r in revokes {
            let before = cache.cached_bytes();
            let released = cache.revoke(r);
            prop_assert!(released <= before);
            prop_assert_eq!(cache.cached_bytes(), before - released);
        }
    }
}
