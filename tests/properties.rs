//! Property-based tests over the core data structures and invariants: the
//! pipeline scheduler, CTR random-access decryption, the TZASC contiguity
//! rules and the cache controller.
//!
//! The properties are exercised over many randomly drawn cases, but the
//! randomness comes from [`sim_core::DetRng`] with fixed seeds, so every run
//! checks exactly the same cases (no external proptest dependency, no
//! shrinking — a failing case prints its inputs instead).

use llm::{ComputationGraph, CostModel, ModelSpec};
use sim_core::{DetRng, SimDuration};
use tz_crypto::AesCtr;
use tz_hal::{PhysAddr, PhysRange, PlatformProfile, Tzasc, World, PAGE_SIZE};
use tzllm::{
    simulate, CacheController, CachePolicy, PipelineConfig, Policy, RestorePlan, RestoreRates,
};

const CASES: usize = 48;

fn small_model(layers: usize, hidden: usize) -> ModelSpec {
    ModelSpec {
        name: format!("prop-{layers}-{hidden}"),
        layers,
        hidden,
        heads: 4,
        kv_heads: 2,
        ffn: hidden * 2,
        vocab: 512,
        context: 1024,
    }
}

/// For any model shape, prompt length, cache fraction, occupancy and policy:
/// the simulated makespan is bounded below by the critical-path lower bound
/// and above by the sum of all operator durations.
#[test]
fn pipeline_makespan_is_bounded() {
    let mut rng = DetRng::new(0x70726f70); // "prop"
    for case in 0..CASES {
        let layers = rng.gen_range(2, 10) as usize;
        let hidden = ((rng.gen_range(32, 160) as usize) / 16) * 16;
        let prompt = rng.gen_range(1, 256) as usize;
        let cached_frac = rng.next_f64();
        let occupancy = rng.next_f64();
        let policy = *rng.choose(&[
            Policy::Sequential,
            Policy::Priority,
            Policy::PriorityPreemptive,
        ]);

        let model = small_model(layers, hidden);
        let graph = ComputationGraph::prefill(&model, prompt);
        let cost = CostModel::rk3588();
        let profile = PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, occupancy, 4);
        let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
        let cached = (graph.total_param_bytes() as f64 * cached_frac) as u64;
        let plan = RestorePlan::build(&graph, |i| times[i], &rates, cached);
        plan.validate().unwrap();

        let result = simulate(
            &plan,
            &PipelineConfig {
                cpu_cores: 4,
                preempt_quantum: SimDuration::from_millis(2),
                policy,
                record_trace: true,
            },
        );

        // With four CPU cores the CPU-path total is not by itself a lower
        // bound (allocation, decryption and CPU compute can overlap on
        // different cores), so bound by the I/O path, the computation path and
        // the per-core CPU share.
        let paths = plan.critical_paths();
        let lower = paths.io.max(paths.compute).max(paths.cpu / 4);
        let upper: SimDuration = plan.ops.iter().map(|o| o.duration).sum();
        assert!(
            result.makespan >= lower,
            "case {case} ({layers}l/{hidden}h/{prompt}p/{cached_frac:.3}c/{occupancy:.3}o/{policy:?}): \
             makespan {} < lower bound {}",
            result.makespan,
            lower
        );
        assert!(
            result.makespan <= upper + SimDuration::from_micros(1),
            "case {case} ({layers}l/{hidden}h/{prompt}p/{cached_frac:.3}c/{occupancy:.3}o/{policy:?}): \
             makespan {} > serial upper bound {}",
            result.makespan,
            upper
        );
    }
}

/// Restoration accounting: cached + restored always equals the model size,
/// regardless of where the cache boundary falls.
#[test]
fn restore_plan_conserves_bytes() {
    let mut rng = DetRng::new(0x62797465); // "byte"
    for case in 0..CASES {
        let layers = rng.gen_range(2, 8) as usize;
        let hidden = ((rng.gen_range(32, 128) as usize) / 16) * 16;
        let cached_frac = rng.next_f64();

        let model = small_model(layers, hidden);
        let graph = ComputationGraph::prefill(&model, 16);
        let profile = PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, 0.5, 4);
        let total = graph.total_param_bytes();
        let cached = (total as f64 * cached_frac) as u64;
        let plan = RestorePlan::build(&graph, |_| SimDuration::from_micros(10), &rates, cached);
        assert_eq!(
            plan.cached_bytes + plan.restored_bytes,
            total,
            "case {case}"
        );
        assert!(plan.cached_bytes <= cached + 1, "case {case}");
    }
}

/// AES-CTR random-access decryption of any sub-range matches decrypting the
/// whole stream.
#[test]
fn ctr_random_access_matches_full_stream() {
    let mut rng = DetRng::new(0x637472); // "ctr"
    for case in 0..CASES {
        let key_seed = rng.gen_range(0, 256) as u8;
        let len = rng.gen_range(1, 2048) as usize;
        let a = (rng.gen_range(0, u16::MAX as u64 + 1) as usize) % len;
        let b = (rng.gen_range(0, u16::MAX as u64 + 1) as usize) % len;

        let key = [key_seed; 32];
        let nonce = [0x11u8; 16];
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let plain: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut full = plain.clone();
        ctr.apply(&mut full);

        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut slice = full[lo..hi].to_vec();
        ctr.apply_at(lo as u64, &mut slice);
        assert_eq!(
            &slice[..],
            &plain[lo..hi],
            "case {case}: range {lo}..{hi} of {len}"
        );
    }
}

/// However the TZASC region is grown and shrunk page-by-page, non-secure CPU
/// access to the protected prefix is always denied and access beyond it is
/// always allowed.
#[test]
fn tzasc_extend_shrink_protects_exactly_the_prefix() {
    let mut rng = DetRng::new(0x747a6173); // "tzas"
    for case in 0..CASES {
        let step_count = rng.gen_range(1, 20) as usize;
        let steps: Vec<u64> = (0..step_count).map(|_| rng.gen_range(1, 16)).collect();
        let shrink_every = rng.gen_range(2, 5) as usize;

        let mut tzasc = Tzasc::new();
        let base = PhysAddr::new(0x1_0000_0000);
        let id = tzasc
            .configure_region(World::Secure, PhysRange::new(base, PAGE_SIZE), [])
            .unwrap();
        let mut size = PAGE_SIZE;
        for (i, pages) in steps.iter().enumerate() {
            if i % shrink_every == 0 && size > PAGE_SIZE {
                tzasc.shrink_region(World::Secure, id, PAGE_SIZE).unwrap();
                size -= PAGE_SIZE;
            } else {
                tzasc
                    .extend_region(World::Secure, id, pages * PAGE_SIZE)
                    .unwrap();
                size += pages * PAGE_SIZE;
            }
            // Inside the prefix: denied.  Just past the end: allowed.
            let inside = PhysRange::new(PhysAddr::new(base.as_u64() + size - PAGE_SIZE), PAGE_SIZE);
            let outside = PhysRange::new(PhysAddr::new(base.as_u64() + size), PAGE_SIZE);
            assert!(
                tzasc.check_cpu_access(World::NonSecure, inside).is_err(),
                "case {case} step {i}"
            );
            assert!(
                tzasc.check_cpu_access(World::NonSecure, outside).is_ok(),
                "case {case} step {i}"
            );
            assert_eq!(tzasc.protected_bytes(), size, "case {case} step {i}");
        }
    }
}

/// The batched step price is a well-behaved function of the batch: it is
/// monotone in every sequence's KV length (more context can only add
/// attention work) and invariant under permutations of the batch (a step
/// prices a *set* of sequences — the summation order is not observable).
#[test]
fn batched_step_time_is_monotone_and_permutation_invariant() {
    let cost = CostModel::rk3588();
    let mut rng = DetRng::new(0x73746570); // "step"
    for case in 0..CASES {
        let model = small_model(
            rng.gen_range(2, 8) as usize,
            ((rng.gen_range(32, 128) as usize) / 16) * 16,
        );
        let use_npu = rng.gen_bool(0.5);
        let n = rng.gen_range(1, 9) as usize;
        let mut kv_lens: Vec<usize> = (0..n).map(|_| rng.gen_range(1, 4096) as usize).collect();
        let base = cost.batched_step_time(&model, &kv_lens, None, use_npu);

        // Permutation invariance: shuffling the batch never changes the price.
        let mut shuffled = kv_lens.clone();
        rng.shuffle(&mut shuffled);
        assert_eq!(
            base,
            cost.batched_step_time(&model, &shuffled, None, use_npu),
            "case {case}: {kv_lens:?} vs {shuffled:?}"
        );

        // Monotonicity: growing any single sequence's KV length never makes
        // the step cheaper.
        let victim = rng.gen_range(0, n as u64) as usize;
        let grown_kv = kv_lens[victim] + rng.gen_range(1, 512) as usize;
        kv_lens[victim] = grown_kv;
        let grown = cost.batched_step_time(&model, &kv_lens, None, use_npu);
        assert!(
            grown >= base,
            "case {case}: growing sequence {victim} to kv {grown_kv} made the \
             step cheaper: {grown} < {base}"
        );
    }
}

/// The cache controller never caches more than the model and never releases
/// more than it holds.
#[test]
fn cache_controller_accounting() {
    let mut rng = DetRng::new(0x6361636865); // "cache"
    for case in 0..CASES {
        let total = rng.gen_range(1, 64 * 1024 * 1024);
        let fraction_count = rng.gen_range(1, 10) as usize;
        let revoke_count = rng.gen_range(0, 5) as usize;

        let mut cache = CacheController::new(total);
        for _ in 0..fraction_count {
            let f = rng.next_f64();
            cache.on_inference_complete();
            let released = cache.apply_policy(CachePolicy::Proportion(f));
            assert!(cache.cached_bytes() <= total, "case {case}");
            assert!(released <= total, "case {case}");
        }
        for _ in 0..revoke_count {
            let r = rng.gen_range(0, 16 * 1024 * 1024);
            let before = cache.cached_bytes();
            let released = cache.revoke(r);
            assert!(released <= before, "case {case}");
            assert_eq!(cache.cached_bytes(), before - released, "case {case}");
        }
    }
}
