//! Cross-crate integration tests: the full protected-inference lifecycle on
//! the simulated platform, from provisioning the encrypted model to serving a
//! request, plus the end-to-end performance relations the paper claims.

use llm::{ComputationGraph, FunctionalModel, ModelSpec, PackedModel, Tokenizer};
use ree_kernel::{CmaPool, CmaRegion, FileContent, FileSystem, FlashDevice, TzDriver};
use sim_core::{Bandwidth, GIB};
use tee_kernel::{CheckpointStore, KeyService, SecureMemoryManager, TaRegistry};
use tz_crypto::{HardwareUniqueKey, ModelKey, WrappedModelKey};
use tz_hal::{DeviceId, PhysAddr, PhysRange, Platform, PlatformProfile, World};
use tzllm::{evaluate, InferenceConfig, SystemKind};

fn device_fs() -> FileSystem {
    FileSystem::new(FlashDevice::new(Bandwidth::from_gib_per_sec(2.0), 2.5))
}

/// The full lifecycle: pack → provision → scale secure memory → restore a
/// tensor through the untrusted file system → run a functional inference.
#[test]
fn protected_inference_lifecycle() {
    let platform = Platform::rk3588();
    let spec = ModelSpec::nano();

    // Provider packs the model; device wraps the key.
    let provider_key = ModelKey::derive(b"provider", &spec.name);
    let packed = PackedModel::pack_functional(&spec, &provider_key, [1u8; 16], 77);
    let huk = HardwareUniqueKey::provision("integration-device");
    let wrapped = WrappedModelKey::wrap(&huk, &provider_key, [2u8; 16]);

    // REE side: file system with the encrypted blob, TZ driver with CMA pools.
    let mut fs = device_fs();
    fs.write_file("nano.enc", FileContent::Bytes(packed.blob.clone().unwrap()));
    let params_pool = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let working_pool = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x2_0000_0000), GIB / 2),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let mut tz_driver = TzDriver::new(platform.clone(), params_pool, working_pool);

    // TEE side: register the LLM TA, its key, and a scalable secure region.
    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let mut keys = KeyService::new(huk);
    keys.register_model_key(spec.name.clone(), wrapped);
    let model_key = keys.unwrap_for(&tas, llm_ta, &spec.name).unwrap();

    let mut secmem = SecureMemoryManager::new(platform.clone());
    let region = secmem.create_region(CmaPool::Parameters, llm_ta, vec![DeviceId::Npu]);

    // Scale up enough secure memory for the whole nano model.
    let need = (packed.header.blob_bytes).div_ceil(tz_hal::PAGE_SIZE) * tz_hal::PAGE_SIZE;
    secmem
        .extend_allocated(region, need, &mut tz_driver)
        .unwrap();
    secmem.extend_protected(region, need, &mut tas).unwrap();
    let protected = secmem.region(region).protected_range();

    // The REE cannot read the protected parameters; the secure world can.
    assert!(platform
        .with_tzasc(|t| t.check_cpu_access(World::NonSecure, protected))
        .is_err());
    assert!(platform
        .with_tzasc(|t| t.check_cpu_access(World::Secure, protected))
        .is_ok());

    // Restore every tensor through the untrusted file system, verifying the
    // per-tensor checksum before decrypting.
    for entry in &packed.header.tensors {
        let read = fs.read("nano.enc", entry.offset, entry.bytes).unwrap();
        let plain = packed
            .decrypt_tensor(&model_key, &entry.name, &read.data.unwrap())
            .unwrap();
        assert_eq!(plain.len() as u64, entry.bytes);
    }

    // A functional forward pass generates deterministic tokens.
    let tokenizer = Tokenizer::with_default_merges();
    let prompt: Vec<usize> = tokenizer
        .encode("open the settings app")
        .iter()
        .map(|&t| t as usize)
        .collect();
    let model = FunctionalModel::generate(&spec, 77);
    let out_a = model.generate_greedy(&prompt, 6);
    let out_b = model.generate_greedy(&prompt, 6);
    assert_eq!(out_a, out_b);
    assert_eq!(out_a.len(), 6);

    // Tear down: shrink everything back; the REE regains access.
    secmem
        .shrink(region, need, &mut tas, &mut tz_driver)
        .unwrap();
    assert!(platform
        .with_tzasc(|t| t.check_cpu_access(World::NonSecure, protected))
        .is_ok());
    assert_eq!(tz_driver.pool(CmaPool::Parameters).allocated_bytes(), 0);
}

/// The framework checkpoint round-trips through the untrusted file system and
/// restores far faster than a cold initialisation.
#[test]
fn checkpoint_cycle_through_ree_storage() {
    let profile = PlatformProfile::rk3588();
    let huk = HardwareUniqueKey::provision("integration-device");
    let mut fs = device_fs();
    let store = CheckpointStore::new(
        "llm.ckpt",
        profile.checkpoint_restore,
        profile.decrypt_bytes_per_sec,
    );

    let tokenizer = Tokenizer::with_default_merges();
    let state = tokenizer.to_checkpoint_bytes();
    store.save(&huk, &mut fs, &state);

    let restored = store.restore(&huk, &mut fs).unwrap();
    let restored_tokenizer = Tokenizer::from_checkpoint_bytes(&restored.state).unwrap();
    assert_eq!(
        restored_tokenizer.encode("hello world"),
        tokenizer.encode("hello world")
    );
    assert!(restored.duration < profile.framework_init_total() / 4);
}

/// End-to-end TTFT and decode-speed relations across the four systems for
/// every catalogue model and the paper's prompt lengths.
#[test]
fn headline_performance_relations_hold() {
    let profile = PlatformProfile::rk3588();
    for model in ModelSpec::catalogue() {
        for prompt in [32usize, 512] {
            let cfg = InferenceConfig::paper_default(model.clone(), prompt);
            let memory = evaluate(SystemKind::ReeLlmMemory, &profile, &cfg);
            let flash = evaluate(SystemKind::ReeLlmFlash, &profile, &cfg);
            let tz = evaluate(SystemKind::TzLlm, &profile, &cfg);
            let straw = evaluate(SystemKind::Strawman, &profile, &cfg);

            // Who wins, and by roughly what factor.
            assert!(memory.ttft <= flash.ttft);
            assert!(flash.ttft <= tz.ttft);
            let reduction = 1.0 - tz.ttft.as_secs_f64() / straw.ttft.as_secs_f64();
            assert!(reduction > 0.70, "{} @{prompt}: {reduction}", model.name);

            // Decoding: TZ-LLM between the strawman and the REE baseline.
            assert!(tz.decode_tokens_per_sec > straw.decode_tokens_per_sec);
            assert!(tz.decode_tokens_per_sec < memory.decode_tokens_per_sec);
        }
    }
}

/// The prefill graph the pipeline restores is exactly the model the packer
/// laid out: same tensors, same order, same sizes.
#[test]
fn graph_and_packed_layout_agree() {
    let spec = ModelSpec::qwen2_5_3b();
    let key = ModelKey::derive(b"provider", &spec.name);
    let packed = PackedModel::pack_shape_only(&spec, &key, [5u8; 16]);
    let graph = ComputationGraph::prefill(&spec, 64);
    let layout = graph.param_layout();
    assert_eq!(layout.len(), packed.header.tensors.len());
    for (slice, entry) in layout.iter().zip(&packed.header.tensors) {
        assert_eq!(slice.name, entry.name);
        assert_eq!(slice.offset, entry.offset);
        assert_eq!(slice.bytes, entry.bytes);
    }
}
