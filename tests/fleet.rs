//! Cross-crate fleet-runner tests: the sharded parallel runner must be a
//! pure refactoring of the serial serving layer — shard 0 of a 1-shard
//! fleet replays `Server::run_workload` exactly, the worker-thread count
//! never changes the merged stats, and the stats merge is associative and
//! permutation-invariant even when the shards carry live KV, batching and
//! speculation counters.

use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::fleet::{run_fleet, FleetConfig, FleetStats, ShardStats};
use tzllm::serving::{Server, ServingConfig, SpeculationConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

fn catalogue() -> Vec<llm::ModelSpec> {
    llm::ModelSpec::catalogue()
}

fn paper_config(profile: &PlatformProfile) -> ServingConfig {
    ServingConfig::paper_default(profile.clone())
}

#[test]
fn one_shard_fleet_reproduces_the_serial_server_run() {
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.1 },
        60,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let seed = 0x5EED;
    let direct = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        seed,
    );
    let fleet = run_fleet(
        &workload,
        &catalogue(),
        seed,
        &FleetConfig::homogeneous(1, 1),
        paper_config,
    );
    // shard_seed(seed, 0) == seed, so the one-shard fleet is the serial run.
    let expected = ShardStats::from_report(0, "rk3588", &direct);
    assert_eq!(fleet.shard_count(), 1);
    assert_eq!(fleet.shards().next().unwrap(), &expected);
    assert_eq!(fleet.completed(), direct.records.len() as u64);
    assert_eq!(fleet.digest(), FleetStats::from_shards([expected]).digest());
}

#[test]
fn thread_count_never_changes_the_merged_stats() {
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.6 },
        90,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let run = |threads: usize| {
        run_fleet(
            &workload,
            &catalogue(),
            0xF1EE7,
            &FleetConfig::heterogeneous(6, threads),
            paper_config,
        )
    };
    let serial = run(1);
    let two = run(2);
    let wide = run(6);
    assert_eq!(serial, two, "threads 1 vs 2 must merge identically");
    assert_eq!(serial, wide, "threads 1 vs 6 must merge identically");
    assert_eq!(serial.digest(), wide.digest());
    assert_eq!(serial.shard_count(), 6);
    // The heterogeneous mix really ran: the merged fleet spans all three
    // SoC calibrations.
    assert_eq!(serial.ttft_ms_by_soc().len(), 3);
}

/// Three shards from three *different* serving regimes, so the merge is
/// exercised with live counters from the batching (PR 5), KV spill (PRs
/// 3/4/6) and speculation (PR 7) subsystems — not just zeros.
fn heterogeneous_shard_stats() -> (ShardStats, ShardStats, ShardStats) {
    let profile = PlatformProfile::rk3588();
    let models = vec![llm::ModelSpec::qwen2_5_3b()];

    // Batching-heavy: the continuous-batching step loop drives batch_steps.
    let batched = Server::run_workload(
        ServingConfig::paper_default(profile.clone()),
        catalogue(),
        &WorkloadSpec::standard_multi(
            ArrivalProcess::Poisson { rate_per_sec: 0.2 },
            30,
            &["tinyllama-1.1b", "qwen2.5-3b"],
        ),
        0xA,
    );

    // KV-squeezed chat: a tight secure budget forces sealed spill and
    // restore-ahead traffic under the two-slot dispatcher.
    let mut kv_cfg = ServingConfig::chat_default(profile.clone());
    kv_cfg.kv.budget_fraction = 0.02;
    kv_cfg.continuous_batching = false;
    kv_cfg.max_inflight = 2;
    let chat = Server::run_workload(
        kv_cfg,
        models.clone(),
        &WorkloadSpec::chat(3, 24, SimDuration::from_secs(30), "qwen2.5-3b"),
        0xB,
    );

    // Speculative decode-heavy agent fleet: draft/verify counters.
    let mut spec_cfg = ServingConfig::paper_default(profile);
    spec_cfg.speculation = SpeculationConfig::paper_default();
    let spec = Server::run_workload(
        spec_cfg,
        models,
        &WorkloadSpec::agent_burst(3, 20, SimDuration::from_millis(250), "qwen2.5-3b"),
        0xC,
    );

    let a = ShardStats::from_report(0, "rk3588", &batched);
    let b = ShardStats::from_report(1, "rk3588", &chat);
    let c = ShardStats::from_report(2, "rk3588", &spec);
    assert!(a.batch_steps > 0, "regime A must exercise batching");
    assert!(
        b.kv_spilled_bytes > 0 && b.kv_reused_tokens > 0,
        "regime B must exercise KV retention and sealed spill"
    );
    assert!(
        c.spec_steps > 0 && c.spec_accepted_tokens > 0,
        "regime C must exercise speculation"
    );
    (a, b, c)
}

#[test]
fn merge_is_associative_and_permutation_invariant() {
    let (a, b, c) = heterogeneous_shard_stats();
    let singleton = |s: &ShardStats| FleetStats::from_shards([s.clone()]);

    let left = singleton(&a).merge(singleton(&b)).merge(singleton(&c));
    let right = singleton(&a).merge(singleton(&b).merge(singleton(&c)));
    assert_eq!(left, right, "merge must be associative");
    assert_eq!(left.digest(), right.digest());

    let permutations = [
        [&a, &b, &c],
        [&a, &c, &b],
        [&b, &a, &c],
        [&b, &c, &a],
        [&c, &a, &b],
        [&c, &b, &a],
    ];
    for perm in permutations {
        let merged = perm
            .iter()
            .fold(FleetStats::new(), |acc, s| acc.merge(singleton(s)));
        assert_eq!(merged, left, "merge must be permutation-invariant");
        assert_eq!(merged.digest(), left.digest());
    }

    // The merged aggregates really cover all three regimes' counters.
    assert_eq!(left.completed(), a.completed + b.completed + c.completed);
    assert!(left.counter(|s| s.batch_steps) > 0);
    assert!(left.counter(|s| s.kv_spilled_bytes) > 0);
    assert!(left.counter(|s| s.spec_accepted_tokens) > 0);
    let agg = left.ttft_ms().expect("samples merged");
    assert_eq!(
        agg.count,
        (a.completed + b.completed + c.completed) as usize
    );
}

#[test]
#[should_panic(expected = "merged twice")]
fn duplicate_shard_indices_refuse_to_merge() {
    let (a, _, _) = heterogeneous_shard_stats();
    let _ = FleetStats::from_shards([a.clone()]).merge(FleetStats::from_shards([a]));
}

#[test]
fn metrics_on_fleet_is_thread_invariant_and_digest_covered() {
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.4 },
        60,
        &["tinyllama-1.1b", "qwen2.5-3b"],
    );
    let with_metrics = |profile: &PlatformProfile| {
        let mut c = ServingConfig::paper_default(profile.clone());
        c.metrics = Some(SimDuration::from_secs(60));
        c
    };
    let run = |threads: usize| {
        run_fleet(
            &workload,
            &catalogue(),
            0xD16E57,
            &FleetConfig::heterogeneous(4, threads),
            with_metrics,
        )
    };
    let serial = run(1);
    let wide = run(4);
    // The windowed series are part of the merged stats and the canonical
    // digest, so thread-count invariance now covers them too.
    assert_eq!(serial, wide, "metric series must merge thread-invariantly");
    assert_eq!(serial.digest(), wide.digest());
    let merged = serial.merged_metrics();
    assert!(merged.is_enabled() && merged.series_count() > 0);

    // Metrics are observe-only (same completions, same aggregate TTFT), but
    // the digest must *cover* the series: a metrics-off fleet of the same
    // workload hashes differently.
    let off = run_fleet(
        &workload,
        &catalogue(),
        0xD16E57,
        &FleetConfig::heterogeneous(4, 1),
        paper_config,
    );
    assert_eq!(serial.completed(), off.completed());
    assert_eq!(serial.ttft_ms(), off.ttft_ms());
    assert_ne!(
        serial.digest(),
        off.digest(),
        "the canonical digest must cover the windowed metric series"
    );
}
