//! Acceptance and correctness properties of content-addressed cross-session
//! KV-prefix sharing: the common head of an assistant fleet is stored once
//! (deduped bytes ≈ (N−1) × head bytes), cold first turns of brand-new
//! sessions hit state other sessions produced and get measurably faster,
//! sharing never worsens any request versus the per-session pool, a session
//! can never reach another session's private suffix by over-declaring, and
//! the whole thing is deterministic.

use llm::{ModelSpec, PromptContent};
use sim_core::SimDuration;
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig, ServingReport};
use workloads::{Benchmark, ScriptedRequest, SessionScript, WorkloadSpec};

const MODEL: &str = "qwen2.5-3b";
const SYSTEM_LEN: usize = 512;

fn catalogue() -> Vec<ModelSpec> {
    vec![ModelSpec::by_name(MODEL).expect("catalogue model")]
}

fn assistant(sessions: usize, requests: usize, think_secs: u64) -> WorkloadSpec {
    WorkloadSpec::assistant(
        sessions,
        requests,
        SimDuration::from_secs(think_secs),
        SYSTEM_LEN,
        MODEL,
    )
}

/// Tokens per KV page and bytes per token for the test model under the
/// default chat config.
fn page_geometry() -> (usize, u64) {
    let bpt = ModelSpec::by_name(MODEL).unwrap().kv_bytes_per_token();
    let page_bytes = tzllm::KvConfig::chat_default().page_bytes;
    (((page_bytes / bpt).max(1)) as usize, bpt)
}

/// Per-session request sequences keyed by (session, position), matched
/// across runs (arrival *times* legitimately shift between configurations).
fn by_session_turn(report: &ServingReport) -> Vec<((u64, usize), &tzllm::RequestRecord)> {
    let mut out = Vec::new();
    let mut sessions: Vec<u64> = report.records.iter().map(|r| r.request.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    for s in sessions {
        let mut recs: Vec<&tzllm::RequestRecord> = report
            .records
            .iter()
            .filter(|r| r.request.session == s)
            .collect();
        recs.sort_by_key(|r| r.arrival);
        for (i, r) in recs.into_iter().enumerate() {
            out.push(((s, i), r));
        }
    }
    out
}

/// The headline dedup property: N sessions of the same assistant store the
/// shared system prompt's whole pages exactly once — the store saves
/// (N − 1) × head bytes of secure memory.
#[test]
fn shared_head_is_stored_once_across_the_fleet() {
    let sessions = 6;
    // One turn per session, spread out so every session retains state
    // concurrently by the end of the run.
    let report = Server::run_workload(
        ServingConfig::chat_default(PlatformProfile::rk3588()),
        catalogue(),
        &assistant(sessions, sessions, 300),
        41,
    );
    assert_eq!(report.fleet.completed, sessions);
    let (pt, bpt) = page_geometry();
    let head_pages = SYSTEM_LEN / pt;
    assert!(head_pages >= 2, "the system prompt spans whole pages");
    let expected = (sessions as u64 - 1) * head_pages as u64 * pt as u64 * bpt;
    assert_eq!(
        report.fleet.kv_deduped_bytes, expected,
        "deduped bytes must equal (N-1) x head bytes"
    );
    assert!(report.fleet.kv_shared_tokens > 0);
}

/// Cold first turns of brand-new sessions reuse the head other sessions
/// produced, and get measurably faster than without sharing — today's
/// per-session pool only ever helps follow-up turns.
#[test]
fn cold_first_turns_hit_the_shared_head_and_speed_up() {
    let workload = assistant(6, 6, 600);
    let mut unshared_cfg = ServingConfig::chat_default(PlatformProfile::rk3588());
    unshared_cfg.kv.shared = false;
    let unshared = Server::run_workload(unshared_cfg, catalogue(), &workload, 13);
    let shared = Server::run_workload(
        ServingConfig::chat_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        13,
    );

    // Without sharing no cold turn ever reuses anything.
    assert!(unshared
        .records
        .iter()
        .all(|r| r.request.shared_prefix_len > 0 || r.kv_reused_tokens == 0));
    assert_eq!(unshared.fleet.kv_shared_tokens, 0);
    assert_eq!(unshared.fleet.kv_deduped_bytes, 0);
    assert_eq!(unshared.fleet.kv_shared_hit_rate, 0.0);

    // With sharing, most cold turns hit (the very first session has nobody
    // to share with).
    let cold_hits = shared
        .records
        .iter()
        .filter(|r| r.request.shared_prefix_len == 0 && r.kv_shared_tokens > 0)
        .count();
    let cold_total = shared
        .records
        .iter()
        .filter(|r| r.request.shared_prefix_len == 0)
        .count();
    assert!(
        cold_hits * 3 >= cold_total * 2,
        "most cold first turns must hit the shared head: {cold_hits}/{cold_total}"
    );
    assert!(shared.fleet.kv_shared_hit_rate > 0.5);

    // Pointwise on the same scripts: sharing never worsens a request's
    // service TTFT (±5 ms pipeline-scheduler tolerance), and the hitting
    // cold turns are strictly faster.
    let tolerance = SimDuration::from_millis(5);
    let mut cold_improved = 0usize;
    for ((uk, u), (sk, s)) in by_session_turn(&unshared)
        .iter()
        .zip(&by_session_turn(&shared))
    {
        assert_eq!(uk, sk);
        assert!(
            s.report.ttft <= u.report.ttft + tolerance,
            "session {} turn {} got slower with sharing: {} vs {}",
            sk.0,
            sk.1,
            s.report.ttft,
            u.report.ttft
        );
        if s.request.shared_prefix_len == 0
            && s.kv_shared_tokens > 0
            && s.report.ttft < u.report.ttft
        {
            cold_improved += 1;
        }
    }
    assert!(
        cold_improved >= cold_hits.saturating_sub(1).max(1),
        "hitting cold turns must be strictly faster: {cold_improved}/{cold_hits}"
    );
}

/// With sharing disabled the pool reproduces the per-session semantics: on
/// multi-turn conversation traffic (no cross-session content) the two modes
/// serve byte-identically.
#[test]
fn sharing_is_invisible_on_conversation_traffic() {
    let workload = WorkloadSpec::chat(4, 32, SimDuration::from_secs(30), MODEL);
    let mut unshared_cfg = ServingConfig::chat_default(PlatformProfile::rk3588());
    unshared_cfg.kv.shared = false;
    let unshared = Server::run_workload(unshared_cfg, catalogue(), &workload, 23);
    let shared = Server::run_workload(
        ServingConfig::chat_default(PlatformProfile::rk3588()),
        catalogue(),
        &workload,
        23,
    );
    // Conversations share nothing across sessions, so the content-addressed
    // store finds no cross hits and the runs match record for record.
    assert_eq!(shared.fleet.kv_shared_tokens, 0);
    assert_eq!(shared.fleet.kv_deduped_bytes, 0);
    assert_eq!(
        format!("{:?}", shared.records),
        format!("{:?}", unshared.records)
    );
}

/// Over-declaring `shared_prefix_len` cannot leak another session's private
/// suffix: reuse is bounded by the content chain, so a session that *lies*
/// about sharing everything still only receives the genuinely common head.
#[test]
fn over_declared_sharing_cannot_reach_private_suffixes() {
    let (pt, _) = page_geometry();
    let config = ServingConfig::chat_default(PlatformProfile::rk3588());
    let mut server = Server::new(config, catalogue());
    let head = PromptContent::from_seed(0xAAAA, SYSTEM_LEN);
    let mk_req = |content: PromptContent, prompt_len, shared, delay_secs| ScriptedRequest {
        delay: SimDuration::from_secs(delay_secs),
        model: MODEL.into(),
        benchmark: Benchmark::UltraChat,
        prompt_len,
        shared_prefix_len: shared,
        system_prefix_len: SYSTEM_LEN,
        output_len: 16,
        content,
        output_seed: 0xBEEF,
        accept_permille: 0,
        accept_seed: 0,
        style_label: "assistant",
    };
    // Victim session: system prompt plus a 300-token private suffix.
    server.submit_script(SessionScript {
        session: 0,
        requests: vec![mk_req(head.extended(0xD00D, 300), SYSTEM_LEN + 300, 0, 0)],
    });
    // Attacker session: different private content, but *declares* its whole
    // prompt shared, hoping to be credited the victim's suffix.
    server.submit_script(SessionScript {
        session: 1,
        requests: vec![mk_req(
            head.extended(0xF00D, 300),
            SYSTEM_LEN + 300,
            SYSTEM_LEN + 300,
            500,
        )],
    });
    let report = server.run();
    assert_eq!(report.fleet.completed, 2);
    let attacker = report
        .records
        .iter()
        .find(|r| r.request.session == 1)
        .unwrap();
    let head_tokens = (SYSTEM_LEN / pt) * pt;
    assert!(
        attacker.kv_reused_tokens <= head_tokens,
        "reuse must stop at the genuinely shared head: {} > {head_tokens}",
        attacker.kv_reused_tokens
    );
    assert!(attacker.kv_reused_tokens > 0, "the head itself is shared");
}

/// Shared serving is deterministic: same seed, same records, byte for byte.
#[test]
fn shared_serving_is_deterministic() {
    let workload = assistant(4, 16, 60);
    let run = |seed| {
        Server::run_workload(
            ServingConfig::chat_default(PlatformProfile::rk3588()),
            catalogue(),
            &workload,
            seed,
        )
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    let c = run(6);
    assert_ne!(format!("{:?}", a.records), format!("{:?}", c.records));
}

/// The disabled manager stays invisible on assistant traffic too: every KV
/// counter stays zero and shared prefixes are ignored.
#[test]
fn disabled_manager_ignores_shared_system_prompts() {
    let report = Server::run_workload(
        ServingConfig::paper_default(PlatformProfile::rk3588()),
        catalogue(),
        &assistant(3, 9, 30),
        9,
    );
    assert_eq!(report.fleet.kv_reused_tokens, 0);
    assert_eq!(report.fleet.kv_shared_tokens, 0);
    assert_eq!(report.fleet.kv_deduped_bytes, 0);
    assert_eq!(report.fleet.kv_shared_hit_rate, 0.0);
}
