//! Attack-simulation tests covering the threat model of §3.1 and the
//! defences of §6: direct access, DMA attacks, Iago attacks on every exposed
//! TEE-REE interface, and TA isolation.

use llm::{ModelSpec, PackedModel};
use npu::{ExecutionContext, JobId, NpuDevice, NpuJob};
use ree_kernel::{
    CmaPool, CmaRegion, FileContent, FileSystem, FlashDevice, Misbehaviour, TzDriver,
};
use sim_core::{Bandwidth, DetRng, SimDuration, SimTime, GIB};
use tee_kernel::{
    CheckpointError, CheckpointStore, KeyService, KeyServiceError, KvPagePool, KvPoolError,
    NormalWorldSpill, PageHash, ScalingError, SecureMemoryManager, SecurityViolation,
    ShadowThreadManager, SharedKvStore, SharedSpill, TaRegistry, TeeNpuDriver,
};
use tz_crypto::{HardwareUniqueKey, ModelKey, WrappedModelKey};
use tz_hal::{DeviceId, PhysAddr, PhysRange, Platform, World, PAGE_SIZE};
use tz_quant::{read_f16, write_f16, SpillFormat};

/// Direct access: a non-secure CPU and a non-NPU device cannot touch the
/// parameter region; even the NPU cannot touch regions that do not list it.
#[test]
fn direct_and_dma_access_attacks_are_blocked() {
    let platform = Platform::rk3588();
    let param_region = PhysRange::new(PhysAddr::new(0x1_0000_0000), 64 * 1024 * 1024);
    platform.with_tzasc(|t| {
        t.configure_region(World::Secure, param_region, [DeviceId::Npu])
            .unwrap();
    });

    // Compromised REE OS reads the plaintext parameters: blocked.
    assert!(platform
        .with_tzasc(|t| t.check_cpu_access(World::NonSecure, param_region))
        .is_err());
    // Malicious USB controller DMA: blocked.
    assert!(platform
        .with_tzasc(|t| t.check_dma_access(DeviceId::UsbController, param_region))
        .is_err());
    // The GPU (a different accelerator) is blocked too.
    assert!(platform
        .with_tzasc(|t| t.check_dma_access(DeviceId::Gpu, param_region))
        .is_err());
}

/// Iago attack on secure memory scaling: the TZ driver returns non-adjacent
/// or overlapping CMA blocks; the TEE OS rejects both.
#[test]
fn iago_attack_on_memory_scaling_is_rejected() {
    let platform = Platform::rk3588();
    let mk_pool = |start: u64, size: u64| {
        CmaRegion::new(
            PhysRange::new(PhysAddr::new(start), size),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        )
    };
    let mut tz = TzDriver::new(
        platform.clone(),
        mk_pool(0x1_0000_0000, 2 * GIB),
        mk_pool(0x2_0000_0000, GIB),
    );
    let mut tas = TaRegistry::new();
    let llm = tas.register("llm-ta", true);
    let mut secmem = SecureMemoryManager::new(platform);
    let region = secmem.create_region(CmaPool::Parameters, llm, vec![DeviceId::Npu]);

    secmem.extend_allocated(region, GIB / 4, &mut tz).unwrap();
    tz.set_misbehaviour(Misbehaviour::NonAdjacentBlock);
    assert!(matches!(
        secmem.extend_allocated(region, GIB / 4, &mut tz),
        Err(ScalingError::NonContiguousReply { .. })
    ));
    tz.set_misbehaviour(Misbehaviour::OverlappingBlock);
    assert!(matches!(
        secmem.extend_allocated(region, GIB / 4, &mut tz),
        Err(ScalingError::OverlappingReply)
    ));
}

/// Iago attack on NPU job scheduling: replay, reordering and launching
/// never-initialised jobs are all rejected by the TEE data-plane driver.
#[test]
fn iago_attack_on_npu_scheduling_is_rejected() {
    let platform = Platform::rk3588();
    platform.with_tzasc(|t| {
        t.configure_region(
            World::Secure,
            PhysRange::new(PhysAddr::new(0x2_0000_0000), 64 * 1024 * 1024),
            [DeviceId::Npu],
        )
        .unwrap();
    });
    let ctx = ExecutionContext {
        command_buffer: PhysRange::new(PhysAddr::new(0x2_0000_0000), 0x1000),
        io_page_table: PhysRange::new(PhysAddr::new(0x2_0000_1000), 0x1000),
        inputs: vec![],
        outputs: vec![],
    };
    let mut device = NpuDevice::new(3);
    let mut tee = TeeNpuDriver::new(platform);

    tee.init_secure_job(NpuJob::secure(
        JobId(1),
        ctx.clone(),
        SimDuration::from_millis(1),
        "a",
    ))
    .unwrap();
    tee.init_secure_job(NpuJob::secure(
        JobId(2),
        ctx,
        SimDuration::from_millis(1),
        "b",
    ))
    .unwrap();

    // Unknown job.
    assert!(matches!(
        tee.handle_handoff(JobId(42), &mut device, SimTime::ZERO),
        Err(SecurityViolation::UnknownJob(_))
    ));
    // Reordering.
    assert!(matches!(
        tee.handle_handoff(JobId(2), &mut device, SimTime::ZERO),
        Err(SecurityViolation::OutOfOrder { .. })
    ));
    // Correct order works; replay of a completed job fails.
    tee.handle_handoff(JobId(1), &mut device, SimTime::ZERO)
        .unwrap();
    assert!(matches!(
        tee.handle_handoff(JobId(1), &mut device, SimTime::from_millis(5)),
        Err(SecurityViolation::Replay(_))
    ));
}

/// Iago attack on model loading: forged file content fails the per-tensor
/// checksum; a forged header fails authentication.
#[test]
fn iago_attack_on_model_loading_is_rejected() {
    let spec = ModelSpec::nano();
    let key = ModelKey::derive(b"provider", &spec.name);
    let packed = PackedModel::pack_functional(&spec, &key, [4u8; 16], 1);

    let mut forged = packed.encrypted_tensor_bytes("layer.2.wo").unwrap();
    forged[0] ^= 0x01;
    assert!(packed.decrypt_tensor(&key, "layer.2.wo", &forged).is_err());

    let mut forged_header = packed.clone();
    forged_header.header.tensors[0].bytes += 1;
    assert!(forged_header.verify_header(&key).is_err());
}

/// Model keys in flash are wrapped; only the LLM TA on the right device can
/// obtain them, and tampered checkpoints are rejected.
#[test]
fn key_and_checkpoint_protection() {
    let huk = HardwareUniqueKey::provision("device-a");
    let mk = ModelKey::derive(b"provider", "qwen2.5-3b");
    let wrapped = WrappedModelKey::wrap(&huk, &mk, [8u8; 16]);

    let mut tas = TaRegistry::new();
    let llm = tas.register("llm-ta", true);
    let other = tas.register("widevine-ta", false);
    let mut keys = KeyService::new(huk);
    keys.register_model_key("qwen2.5-3b", wrapped.clone());

    assert!(keys.unwrap_for(&tas, llm, "qwen2.5-3b").is_ok());
    assert_eq!(
        keys.unwrap_for(&tas, other, "qwen2.5-3b").unwrap_err(),
        KeyServiceError::NotAuthorised(other)
    );

    // A different physical device cannot unwrap the same blob.
    let other_device = HardwareUniqueKey::provision("device-b");
    assert!(wrapped.unwrap(&other_device, true).is_err());

    // Checkpoint tampering is detected.
    let mut fs = FileSystem::new(FlashDevice::new(Bandwidth::from_gib_per_sec(2.0), 2.5));
    let huk = HardwareUniqueKey::provision("device-a");
    let store = CheckpointStore::new("ckpt", SimDuration::from_millis(140), 9.2e9);
    store.save(&huk, &mut fs, b"framework state");
    let mut blob = fs.raw_bytes("ckpt").unwrap().to_vec();
    let last = blob.len() - 1;
    blob[last] ^= 0xff;
    fs.write_file("ckpt", FileContent::Bytes(blob));
    assert_eq!(
        store.restore(&huk, &mut fs).unwrap_err(),
        CheckpointError::IntegrityFailure
    );
}

/// KV-cache spill confidentiality and integrity: every byte of a spilled KV
/// page observable in normal-world memory is ciphertext (no 16-byte block of
/// any plaintext page ever appears), and any tampering with a sealed page —
/// ciphertext, tag, or identity header — is rejected on restore.
#[test]
fn kv_spill_is_sealed_and_tamper_evident() {
    let platform = Platform::rk3588();
    let working = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let params = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let mut tz = TzDriver::new(platform.clone(), params, working);
    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let mut mgr = SecureMemoryManager::new(platform);
    let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);

    let page_bytes = PAGE_SIZE; // small pages keep software AES fast in tests
    let mut pool = KvPagePool::new(region, page_bytes, &[0x5au8; 32]);
    let mut spill = NormalWorldSpill::new();

    // Property: across many random KV pages, spilling leaks nothing.
    let mut rng = DetRng::new(0x5ea1);
    let mut plaintexts = Vec::new();
    for seq in 0..16u32 {
        let page: Vec<u8> = (0..page_bytes)
            .map(|_| (rng.gen_range(0, 256)) as u8)
            .collect();
        let slot = pool
            .install(7, seq, page.clone(), &mut mgr, &mut tz, &mut tas)
            .unwrap();
        plaintexts.push(page);
        pool.spill(slot, &mut spill).unwrap();
    }
    assert_eq!(pool.resident_pages(), 0, "plaintext copies are scrubbed");
    let observable = spill.observable_bytes();
    for (i, page) in plaintexts.iter().enumerate() {
        for block in page.chunks(16) {
            assert!(
                !observable.windows(block.len()).any(|w| w == block),
                "plaintext block of page {i} visible in normal-world memory"
            );
        }
    }

    // Tampered ciphertext is rejected before decryption.
    let mut forged = spill.get(0).clone();
    forged.blob.ciphertext[100] ^= 0x01;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // Tampered tag is rejected.
    let mut forged = spill.get(1).clone();
    forged.blob.tag[0] ^= 0x80;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // A re-labelled page (REE swaps session/seq identity) is rejected.
    let mut forged = spill.get(2).clone();
    forged.session = 8;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));

    // The untampered pages all restore to their exact plaintext.
    for (i, page) in plaintexts.iter().enumerate().take(4) {
        let sealed = spill.get(i).clone();
        let slot = pool.restore(sealed, &mut mgr, &mut tz, &mut tas).unwrap();
        let restored = pool.page(slot).unwrap();
        assert_eq!(&restored.data, page);
        assert_eq!(restored.seq, i as u32);
    }
}

fn shared_store_setup() -> (
    SecureMemoryManager,
    TzDriver,
    TaRegistry,
    SharedKvStore,
    SharedSpill,
) {
    let platform = Platform::rk3588();
    let working = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let params = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let tz = TzDriver::new(platform.clone(), params, working);
    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let mut mgr = SecureMemoryManager::new(platform);
    let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);
    let store = SharedKvStore::new(region, PAGE_SIZE, &[0x5au8; 32]);
    (mgr, tz, tas, store, SharedSpill::new())
}

fn random_page(rng: &mut DetRng) -> Vec<u8> {
    (0..PAGE_SIZE)
        .map(|_| rng.gen_range(0, 256) as u8)
        .collect()
}

/// Cross-model isolation of the content-addressed store: byte-identical KV
/// content installed for two different models never aliases onto one secure
/// copy, and evicting one model's copy leaves the other's untouched.
#[test]
fn shared_kv_pages_never_alias_across_models() {
    let (mut mgr, mut tz, mut tas, mut store, _spill) = shared_store_setup();
    let mut rng = DetRng::new(0xA11A);
    let page = random_page(&mut rng);
    let (h0, _) = store
        .install(0, None, page.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let (h1, _) = store
        .install(1, None, page.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    // The chain hash is over content, so it matches — but the store keys on
    // (model, hash): two physical copies, independent reference counts.
    assert_eq!(h0, h1);
    assert_eq!(store.resident_pages(), 2, "no cross-model aliasing");
    assert_eq!(store.refs(0, &h0), Some(1));
    assert_eq!(store.refs(1, &h1), Some(1));
    store.release(0, &h0).unwrap();
    store.evict(0, &h0).unwrap();
    assert!(store.page_data(0, &h0).is_none());
    assert_eq!(
        store.page_data(1, &h1).unwrap(),
        &page[..],
        "model 1's copy survives model 0's eviction"
    );
}

/// A sealed shared page survives tamper attempts: ciphertext, tag, and
/// cross-model relabelling are all rejected, the spill leaks no plaintext
/// block, and the honest blob restores for every referencing session at
/// once.
#[test]
fn sealed_shared_pages_are_tamper_evident_and_model_bound() {
    let (mut mgr, mut tz, mut tas, mut store, mut spill) = shared_store_setup();
    let mut rng = DetRng::new(0x5EA2);
    let page = random_page(&mut rng);
    let (h, _) = store
        .install(0, None, page.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    // A second session references the page.
    store.acquire(0, &h).unwrap();
    // The same content also exists under model 1 and is sealed too — the
    // attacker will try to feed model 1's blob to model 0.
    let (h1, _) = store
        .install(1, None, page.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let idx0 = store.spill(0, &h, &mut spill).unwrap();
    let idx1 = store.spill(1, &h1, &mut spill).unwrap();
    assert_eq!(spill.len(), 2);

    // Confidentiality: no 16-byte plaintext block appears in the attacker's
    // view of normal-world memory.
    let observable = spill.observable_bytes();
    for block in page.chunks(16) {
        assert!(
            !observable.windows(block.len()).any(|w| w == block),
            "plaintext block visible in normal-world memory"
        );
    }

    // Tampered ciphertext is rejected before decryption.
    let mut forged = spill.get(idx0).clone();
    forged.blob.ciphertext[7] ^= 0x01;
    assert!(matches!(
        store.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // Tampered tag is rejected.
    let mut forged = spill.get(idx0).clone();
    forged.blob.tag[0] ^= 0x80;
    assert!(matches!(
        store.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // Model 1's sealed copy relabelled as model 0: same content, same chain
    // hash, valid seal — but the tag binds the model, so it is rejected.
    let mut relabelled = spill.get(idx1).clone();
    relabelled.model = 0;
    assert!(matches!(
        store.restore(relabelled, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));

    // The honest blob restores once and serves both references.
    let sealed = spill.take(idx0);
    store.restore(sealed, &mut mgr, &mut tz, &mut tas).unwrap();
    assert_eq!(store.page_data(0, &h).unwrap(), &page[..]);
    assert_eq!(store.refs(0, &h), Some(2));
}

/// Copy-on-divergence keeps private suffixes private: two sessions share a
/// head page, then diverge; each divergent page has its own chain identity
/// and reference count, one session's release never disturbs the other's
/// suffix, and no chain that reproduces only the head can name either
/// private page.
#[test]
fn copy_on_divergence_keeps_suffixes_private() {
    let (mut mgr, mut tz, mut tas, mut store, _spill) = shared_store_setup();
    let mut rng = DetRng::new(0xD1FF);
    let head = random_page(&mut rng);
    let suffix_a = random_page(&mut rng);
    let suffix_b = random_page(&mut rng);

    // Session A: [head][suffix_a]; session B: [head][suffix_b].
    let (h_head, _) = store
        .install(0, None, head.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let (h_a, refs_a) = store
        .install(
            0,
            Some(&h_head),
            suffix_a.clone(),
            &mut mgr,
            &mut tz,
            &mut tas,
        )
        .unwrap();
    let (_, head_refs) = store
        .install(0, None, head.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let (h_b, refs_b) = store
        .install(
            0,
            Some(&h_head),
            suffix_b.clone(),
            &mut mgr,
            &mut tz,
            &mut tas,
        )
        .unwrap();
    assert_eq!(head_refs, 2, "the head is shared");
    assert_eq!((refs_a, refs_b), (1, 1), "suffixes are private");
    assert_ne!(h_a, h_b, "divergent content, divergent identity");
    assert_eq!(
        store.resident_pages(),
        3,
        "head stored once, suffixes apart"
    );

    // A page is only reachable by reproducing its exact chain: B cannot
    // derive A's suffix identity from anything it knows short of A's bytes.
    assert_ne!(PageHash::chain(Some(&h_head), &suffix_b), h_a);

    // Session B releases everything; A's state is untouched.
    store.release(0, &h_head).unwrap();
    store.release(0, &h_b).unwrap();
    store.evict(0, &h_b).unwrap();
    assert_eq!(store.page_data(0, &h_a).unwrap(), &suffix_a[..]);
    assert_eq!(store.refs(0, &h_head), Some(1), "A still holds the head");
    // The head cannot be evicted while A references it.
    assert!(matches!(
        store.evict(0, &h_head),
        Err(KvPoolError::StillReferenced(1))
    ));
}

/// A page of well-formed finite f16 values (quantized round-trips are only
/// meaningful over valid f16 data, unlike the raw random pages above).
fn random_f16_page(rng: &mut DetRng) -> Vec<u8> {
    let mut out = vec![0u8; PAGE_SIZE as usize];
    for i in 0..out.len() / 2 {
        let unit = rng.gen_range(0, 1 << 16) as f32 / (1 << 16) as f32;
        write_f16(&mut out, i, (unit - 0.5) * 16.0);
    }
    out
}

/// Quantized sealed spill, the round-trip property: quantize → seal → spill
/// → restore → dequantize reproduces every element within the format's
/// per-block error bound, the spill region holds the *compressed* payload
/// (2–4× denser than f16), and no 16-byte block of the original plaintext is
/// observable in normal-world memory.
#[test]
fn quantized_kv_spill_roundtrips_within_error_bound_and_leaks_nothing() {
    for format in [SpillFormat::Int8, SpillFormat::Int4] {
        let platform = Platform::rk3588();
        let working = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        );
        let params = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        );
        let mut tz = TzDriver::new(platform.clone(), params, working);
        let mut tas = TaRegistry::new();
        let llm_ta = tas.register("llm-ta", true);
        let mut mgr = SecureMemoryManager::new(platform);
        let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);
        let mut pool = KvPagePool::with_format(region, PAGE_SIZE, &[0x6bu8; 32], format);
        let mut spill = NormalWorldSpill::new();

        let mut rng = DetRng::new(0x0f16 + format.id() as u64);
        let mut plaintexts = Vec::new();
        for seq in 0..4u32 {
            let page = random_f16_page(&mut rng);
            let slot = pool
                .install(2, seq, page.clone(), &mut mgr, &mut tz, &mut tas)
                .unwrap();
            plaintexts.push(page);
            let idx = pool.spill(slot, &mut spill).unwrap();
            assert_eq!(
                spill.get(idx).blob.ciphertext.len(),
                format.sealed_len(PAGE_SIZE as usize),
                "the spill holds the compressed payload, not f16"
            );
        }
        assert!(format.expansion(PAGE_SIZE as usize) > 1.9);

        // Confidentiality: even quantized, nothing recognisable leaks.
        let observable = spill.observable_bytes();
        for page in &plaintexts {
            for block in page.chunks(16) {
                assert!(
                    !observable.windows(block.len()).any(|w| w == block),
                    "plaintext block visible in normal-world memory"
                );
            }
        }

        // Round-trip accuracy: within one scale step per element.
        for (i, page) in plaintexts.iter().enumerate() {
            let slot = pool
                .restore(spill.get(i).clone(), &mut mgr, &mut tz, &mut tas)
                .unwrap();
            let restored = &pool.page(slot).unwrap().data;
            assert_eq!(restored.len(), page.len());
            let bound = format.error_bound(8.0);
            for e in 0..page.len() / 2 {
                let err = (read_f16(page, e) - read_f16(restored, e)).abs();
                assert!(err <= bound, "{format:?} page {i} elem {e}: err {err}");
            }
        }
    }
}

/// Tamper rejection of quantized blobs: a flipped ciphertext bit, a flipped
/// tag bit, and a swapped identity header are all rejected before any
/// decryption or dequantization, exactly as for f16 blobs.
#[test]
fn quantized_blob_tampering_is_rejected() {
    let platform = Platform::rk3588();
    let working = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let params = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let mut tz = TzDriver::new(platform.clone(), params, working);
    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let mut mgr = SecureMemoryManager::new(platform);
    let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);
    let mut pool = KvPagePool::with_format(region, PAGE_SIZE, &[0x6cu8; 32], SpillFormat::Int8);
    let mut spill = NormalWorldSpill::new();
    let mut rng = DetRng::new(0x7a3f);
    let slot = pool
        .install(5, 1, random_f16_page(&mut rng), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let idx = pool.spill(slot, &mut spill).unwrap();

    let mut forged = spill.get(idx).clone();
    forged.blob.ciphertext[3] ^= 0x01;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    let mut forged = spill.get(idx).clone();
    forged.blob.tag[8] ^= 0x40;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    let mut forged = spill.get(idx).clone();
    forged.seq = 2;
    assert!(matches!(
        pool.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // The honest blob still restores.
    assert!(pool
        .restore(spill.take(idx), &mut mgr, &mut tz, &mut tas)
        .is_ok());
}

/// Format confusion is rejected by the MAC: an INT4 blob relabelled INT8
/// (which would make the dequantizer mis-parse scales as codes) fails
/// verification on both the per-session pool and the shared store — the
/// seal binds the format id and both lengths, not just the page identity.
#[test]
fn format_confusion_between_int4_and_int8_is_rejected() {
    // Per-session pool.
    let platform = Platform::rk3588();
    let working = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let params = CmaRegion::new(
        PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
        platform.profile.cma_bandwidth(),
        platform.profile.page_alloc_ns,
    );
    let mut tz = TzDriver::new(platform.clone(), params, working);
    let mut tas = TaRegistry::new();
    let llm_ta = tas.register("llm-ta", true);
    let mut mgr = SecureMemoryManager::new(platform);
    let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);
    let mut pool = KvPagePool::with_format(region, PAGE_SIZE, &[0x6du8; 32], SpillFormat::Int4);
    let mut spill = NormalWorldSpill::new();
    let mut rng = DetRng::new(0x4bad);
    let slot = pool
        .install(9, 0, random_f16_page(&mut rng), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let idx = pool.spill(slot, &mut spill).unwrap();
    for relabel in [SpillFormat::Int8, SpillFormat::F16] {
        let mut forged = spill.get(idx).clone();
        forged.format = relabel;
        assert!(
            matches!(
                pool.restore(forged, &mut mgr, &mut tz, &mut tas),
                Err(KvPoolError::Integrity)
            ),
            "INT4 blob relabelled {relabel:?} must fail the MAC"
        );
    }
    assert!(pool
        .restore(spill.take(idx), &mut mgr, &mut tz, &mut tas)
        .is_ok());

    // Shared content-addressed store.
    let (mut mgr, mut tz, mut tas, _, _) = {
        // Fresh setup (the helper below builds an f16 store; we need INT4).
        let platform = Platform::rk3588();
        let working = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        );
        let params = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x1_0000_0000), GIB),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        );
        let tz = TzDriver::new(platform.clone(), params, working);
        let mut tas = TaRegistry::new();
        let llm_ta = tas.register("llm-ta", true);
        let mut mgr = SecureMemoryManager::new(platform);
        let region = mgr.create_region(CmaPool::Working, llm_ta, vec![DeviceId::Npu]);
        (mgr, tz, tas, region, ())
    };
    let mut store = SharedKvStore::with_format(0, PAGE_SIZE, &[0x6eu8; 32], SpillFormat::Int4);
    let mut shared_spill = SharedSpill::new();
    let page = random_f16_page(&mut rng);
    let (h, _) = store
        .install(0, None, page.clone(), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let idx = store.spill(0, &h, &mut shared_spill).unwrap();
    assert_eq!(
        shared_spill.payload_bytes(),
        SpillFormat::Int4.sealed_len(PAGE_SIZE as usize) as u64,
        "the CMA pays for the quantized payload, not the f16 page"
    );
    let mut forged = shared_spill.get(idx).clone();
    forged.format = SpillFormat::Int8;
    assert!(matches!(
        store.restore(forged, &mut mgr, &mut tz, &mut tas),
        Err(KvPoolError::Integrity)
    ));
    // The honest blob restores to the INT4 approximation of the page.
    store
        .restore(shared_spill.take(idx), &mut mgr, &mut tz, &mut tas)
        .unwrap();
    let restored = store.page_data(0, &h).unwrap();
    let bound = SpillFormat::Int4.error_bound(8.0);
    for e in 0..page.len() / 2 {
        let err = (read_f16(&page, e) - read_f16(restored, e)).abs();
        assert!(err <= bound, "elem {e}: err {err} > bound {bound}");
    }
}

/// A compromised LLM TA cannot reach another TA's memory, and a malicious REE
/// scheduler cannot run a TA thread past a TEE-managed lock.
#[test]
fn ta_isolation_and_thread_order_enforcement() {
    let platform = Platform::rk3588();
    let mut tas = TaRegistry::new();
    let llm = tas.register("llm-ta", true);
    let keymaster = tas.register("keymaster-ta", false);
    tas.map(
        keymaster,
        PhysRange::new(PhysAddr::new(0x3_0000_0000), 0x10000),
    )
    .unwrap();
    assert!(tas
        .check_access(llm, PhysRange::new(PhysAddr::new(0x3_0000_0000), 0x1000))
        .is_err());

    let mut threads = ShadowThreadManager::new(platform);
    let t1 = threads.create_thread(llm);
    let t2 = threads.create_thread(llm);
    let lock = threads.create_mutex();
    assert!(threads.mutex_lock(lock, t1).unwrap());
    assert!(!threads.mutex_lock(lock, t2).unwrap());
    // The REE scheduler tries to force t2 to run anyway.
    let (outcome, _) = threads.resume(t2).unwrap();
    assert_eq!(outcome, tee_kernel::ResumeOutcome::RefusedBlocked(lock));
}

/// The NPU launch path enforces TZPC/TZASC state: the REE cannot launch while
/// the NPU is secured, and a secure job whose context lies outside secure
/// memory is rejected before it ever reaches the device.
#[test]
fn npu_launch_respects_world_configuration() {
    let platform = Platform::rk3588();
    let mut device = NpuDevice::new(3);
    platform.with_tzpc(|t| t.set_secure(World::Secure, DeviceId::Npu, true).unwrap());
    let ree_job = NpuJob::non_secure(
        JobId(9),
        ExecutionContext::empty(),
        SimDuration::from_millis(1),
        "ree",
    );
    assert!(device
        .launch(&platform, World::NonSecure, ree_job, SimTime::ZERO)
        .is_err());

    let mut tee = TeeNpuDriver::new(platform);
    let outside = ExecutionContext {
        command_buffer: PhysRange::new(PhysAddr::new(0x8000_0000), 0x1000),
        io_page_table: PhysRange::new(PhysAddr::new(0x8000_1000), 0x1000),
        inputs: vec![],
        outputs: vec![],
    };
    assert!(matches!(
        tee.init_secure_job(NpuJob::secure(
            JobId(10),
            outside,
            SimDuration::from_millis(1),
            "bad"
        )),
        Err(SecurityViolation::ContextNotSecure(_))
    ));
}
