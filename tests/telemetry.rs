//! End-to-end properties of the serving telemetry subsystem: lifecycle
//! spans reconcile exactly with recorded TTFTs, lane occupancy never
//! exceeds capacity, the step loop's batch/spec/chunk spans show up when
//! the corresponding features run, and the Chrome trace-event export is
//! structurally sound.  The observe-only proof (telemetry on == telemetry
//! off, bit for bit, against the committed baseline) lives in
//! `crates/bench/tests/serial_reproduction.rs`.

use sim_core::{Phase, SimDuration, Track};
use tz_hal::PlatformProfile;
use tzllm::serving::{Server, ServingConfig, ServingReport, SpeculationConfig};
use workloads::{ArrivalProcess, WorkloadSpec};

const MODELS: [&str; 3] = ["tinyllama-1.1b", "qwen2.5-3b", "phi-3-3.8b"];

fn catalogue() -> Vec<llm::ModelSpec> {
    MODELS
        .iter()
        .map(|m| llm::ModelSpec::by_name(m).expect("catalogue model"))
        .collect()
}

fn cold_heavy_traced(requests: usize) -> ServingReport {
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.telemetry = true;
    let workload = WorkloadSpec::standard_multi(
        ArrivalProcess::Poisson { rate_per_sec: 0.1 },
        requests,
        &MODELS,
    );
    Server::run_workload(config, catalogue(), &workload, 0x7E1E)
}

#[test]
fn telemetry_is_off_by_default_and_exports_nothing() {
    let config = ServingConfig::paper_default(PlatformProfile::rk3588());
    assert!(!config.telemetry);
    let workload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.2 }, 10, &MODELS);
    let report = Server::run_workload(config, catalogue(), &workload, 1);
    assert!(report.telemetry.is_none());
}

#[test]
fn lifecycle_spans_tile_each_requests_ttft_exactly() {
    let report = cold_heavy_traced(60);
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    assert_eq!(report.records.len(), 60);
    for r in &report.records {
        // The TTFT phases tile [arrival, first_token] without gap or
        // overlap: exact nanosecond equality, no rounding slack.
        assert_eq!(
            telemetry.request_ttft_span_sum(r.request.id),
            r.ttft_e2e(),
            "request {} span sum != recorded TTFT",
            r.request.id
        );
        // And they really tile: sorted by start, consecutive spans abut.
        let mut spans: Vec<_> = telemetry
            .request_spans(r.request.id)
            .filter(|s| s.phase.counts_toward_ttft())
            .collect();
        spans.sort_by_key(|s| s.start);
        assert_eq!(spans.first().expect("spans exist").start, r.arrival);
        for w in spans.windows(2) {
            assert_eq!(
                w[0].end, w[1].start,
                "request {} lifecycle spans must abut",
                r.request.id
            );
        }
        assert_eq!(spans.last().expect("spans exist").end, r.first_token);
        // Decode follows the first token and stays out of the TTFT sum.
        let decode: Vec<_> = telemetry
            .request_spans(r.request.id)
            .filter(|s| s.phase == Phase::Decode)
            .collect();
        for d in decode {
            assert_eq!(d.start, r.first_token);
            assert_eq!(d.end, r.completed);
        }
    }
}

#[test]
fn step_loop_spans_cover_batching_and_chunked_prefills() {
    let report = cold_heavy_traced(60);
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    let count = |phase: Phase| {
        telemetry
            .spans()
            .iter()
            .filter(|s| s.phase == phase)
            .count()
    };
    assert_eq!(
        count(Phase::BatchStep) as u64,
        report.fleet.batch_steps,
        "one BatchStep span per batched step"
    );
    assert!(
        count(Phase::PrefillChunk) > 0,
        "chunked prefills must appear on the NPU track"
    );
    // Chunk spans nest inside their step: every PrefillChunk lies within
    // some BatchStep interval on the same lane track.
    let steps: Vec<_> = telemetry
        .spans()
        .iter()
        .filter(|s| s.phase == Phase::BatchStep)
        .collect();
    for chunk in telemetry
        .spans()
        .iter()
        .filter(|s| s.phase == Phase::PrefillChunk)
    {
        assert!(
            steps.iter().any(|st| st.track == chunk.track
                && st.start <= chunk.start
                && chunk.end <= st.end),
            "prefill chunk must nest inside a batched step"
        );
    }
    let (_, mean_occ, _) = telemetry
        .histogram_stats("batch.occupancy")
        .expect("occupancy observed");
    assert!(mean_occ >= 1.0, "steps always carry at least one sequence");
}

#[test]
fn speculative_steps_record_draft_and_verify_spans() {
    let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
    config.telemetry = true;
    config.speculation = SpeculationConfig::paper_default();
    let workload =
        WorkloadSpec::standard_multi(ArrivalProcess::Poisson { rate_per_sec: 0.1 }, 40, &MODELS);
    let report = Server::run_workload(config, catalogue(), &workload, 0x5bec);
    assert!(report.fleet.spec_steps > 0, "speculation must engage");
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    let spans = |phase: Phase| {
        telemetry
            .spans()
            .iter()
            .filter(move |s| s.phase == phase)
            .count()
    };
    assert!(spans(Phase::SpecDraft) > 0, "draft rounds must be visible");
    assert_eq!(
        spans(Phase::SpecDraft),
        spans(Phase::SpecVerify),
        "every draft pass pairs with a verify sweep"
    );
}

#[test]
fn occupancy_spans_respect_lane_capacities() {
    let report = cold_heavy_traced(60);
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    let mut occupancy_spans = 0usize;
    for s in telemetry.spans() {
        if s.phase != Phase::Occupancy {
            continue;
        }
        occupancy_spans += 1;
        assert!(matches!(s.track, Track::Lane(_)));
        let label = telemetry.resolve(s.label);
        let (name, level) = label
            .split_once('=')
            .expect("occupancy label is name=level");
        let level: u64 = level.parse().expect("numeric level");
        let lane = report
            .resources
            .iter()
            .find(|l| l.name == name)
            .expect("occupancy span names a registered lane");
        assert!(
            level >= 1 && level <= lane.capacity,
            "lane {name} occupancy {level} outside [1, {}]",
            lane.capacity
        );
        assert!(s.end > s.start, "occupancy segments have extent");
    }
    assert!(
        occupancy_spans > 0,
        "the ledger journal must yield segments"
    );
}

#[test]
fn chrome_trace_export_is_structurally_sound() {
    let report = cold_heavy_traced(30);
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    let json = telemetry.chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // One complete event per span, metadata for both track processes, and
    // counter events for the gauge series.
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        telemetry.spans().len()
    );
    assert!(json.contains("\"name\":\"requests\""));
    assert!(json.contains("\"name\":\"lanes\""));
    assert!(json.contains("\"ph\":\"C\""));
    // Every request track is named with its model and session style.
    assert!(json.matches("\"ph\":\"M\"").count() >= report.records.len());
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "braces and brackets balance");

    // The textual reports ride on the same data.
    let waterfall = tzllm::ttft_waterfall(&report);
    assert_eq!(waterfall.lines().count(), report.records.len() + 1);
    let cp = tzllm::critical_path_report(&report);
    assert!(
        cp.attributed_fraction() >= 0.90,
        "cold TTFT attribution fell to {:.1}%",
        cp.attributed_fraction() * 100.0
    );
}

#[test]
fn sealing_shows_up_on_the_cpu_lane_under_kv_pressure() {
    let mut config = ServingConfig::chat_default(PlatformProfile::rk3588());
    config.kv.budget_fraction = 0.02;
    config.telemetry = true;
    let workload = WorkloadSpec::chat(6, 48, SimDuration::from_secs(30), "qwen2.5-3b");
    let report = Server::run_workload(
        config,
        vec![llm::ModelSpec::qwen2_5_3b()],
        &workload,
        0xCAA7,
    );
    assert!(
        report.fleet.kv_spilled_bytes > 0,
        "the squeezed budget must force sealing"
    );
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    assert!(telemetry.counter("kv.seal_events") > 0);
    assert_eq!(
        telemetry.counter("kv.sealed_bytes"),
        report.fleet.kv_spilled_bytes,
        "seal counters must account every spilled byte"
    );
    assert!(
        telemetry.spans().iter().any(|s| s.phase == Phase::Seal),
        "seal events must be visible on the lane tracks"
    );
}
