//! A simplified buddy page allocator for the REE OS.
//!
//! The buddy system serves ordinary (non-contiguous) page allocations: the
//! REE-LLM-Flash baseline allocates its parameter buffers through this path
//! (4 KiB pages, no contiguity requirement), and Figure 3 compares its
//! allocation time against CMA under memory pressure.
//!
//! The model tracks page accounting and order-based free lists precisely, but
//! charges time from the calibrated per-page cost rather than simulating the
//! real splitting/coalescing work.

use sim_core::{SimDuration, SimTime};
use tz_hal::{PhysAddr, PhysRange, PAGE_SIZE};

/// Maximum buddy order (2^10 pages = 4 MiB blocks, like Linux).
pub const MAX_ORDER: usize = 10;

/// Errors from the buddy allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuddyError {
    /// Not enough free memory to satisfy the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free at the time of the request.
        free: u64,
    },
    /// Freed a range that was not allocated.
    NotAllocated(PhysRange),
}

impl std::fmt::Display for BuddyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuddyError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "out of memory: requested {requested} bytes, {free} bytes free"
                )
            }
            BuddyError::NotAllocated(r) => write!(f, "range {r} was not allocated"),
        }
    }
}

impl std::error::Error for BuddyError {}

/// Result of a (possibly multi-page, non-contiguous) allocation.
#[derive(Debug, Clone)]
pub struct BuddyAllocation {
    /// The page frames handed out.  They are not necessarily contiguous; the
    /// model hands out ascending addresses from the free pool.
    pub pages: Vec<PhysAddr>,
    /// How long the allocation took.
    pub duration: SimDuration,
}

impl BuddyAllocation {
    /// Total bytes allocated.
    pub fn bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }
}

/// The buddy allocator over a physical range.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    range: PhysRange,
    total_pages: u64,
    allocated_pages: u64,
    /// Pages pinned as unmovable by the base OS (never available).
    reserved_pages: u64,
    page_alloc_ns: u64,
    next_free_hint: u64,
    allocations: std::collections::BTreeMap<u64, u64>, // start pfn -> page count
}

impl BuddyAllocator {
    /// Creates an allocator managing `range`, with `reserved_bytes` pinned by
    /// the base OS and `page_alloc_ns` the calibrated per-page cost.
    pub fn new(range: PhysRange, reserved_bytes: u64, page_alloc_ns: u64) -> Self {
        let total_pages = range.size / PAGE_SIZE;
        let reserved_pages = (reserved_bytes / PAGE_SIZE).min(total_pages);
        BuddyAllocator {
            range,
            total_pages,
            allocated_pages: 0,
            reserved_pages,
            page_alloc_ns,
            next_free_hint: 0,
            allocations: std::collections::BTreeMap::new(),
        }
    }

    /// The range this allocator manages.
    pub fn range(&self) -> PhysRange {
        self.range
    }

    /// Free bytes available for allocation.
    pub fn free_bytes(&self) -> u64 {
        (self.total_pages - self.allocated_pages - self.reserved_pages) * PAGE_SIZE
    }

    /// Bytes currently allocated (excluding the base-OS reservation).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_pages * PAGE_SIZE
    }

    /// Total manageable bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages * PAGE_SIZE
    }

    /// Allocates `bytes` worth of 4 KiB pages (rounded up).  The returned
    /// pages need not be physically contiguous.
    pub fn alloc_pages(&mut self, bytes: u64) -> Result<BuddyAllocation, BuddyError> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        if pages * PAGE_SIZE > self.free_bytes() {
            return Err(BuddyError::OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        let start_pfn = self.next_free_hint;
        let mut out = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            out.push(PhysAddr::new(
                self.range.start.as_u64() + (start_pfn + i) * PAGE_SIZE,
            ));
        }
        self.allocations.insert(start_pfn, pages);
        self.next_free_hint += pages;
        self.allocated_pages += pages;
        let duration = SimDuration::from_nanos(pages * self.page_alloc_ns);
        Ok(BuddyAllocation {
            pages: out,
            duration,
        })
    }

    /// Frees an allocation previously returned by [`BuddyAllocator::alloc_pages`],
    /// identified by its first page.
    pub fn free_pages(&mut self, first_page: PhysAddr) -> Result<SimDuration, BuddyError> {
        let pfn = (first_page.as_u64() - self.range.start.as_u64()) / PAGE_SIZE;
        match self.allocations.remove(&pfn) {
            Some(pages) => {
                self.allocated_pages -= pages;
                Ok(SimDuration::from_nanos(pages * self.page_alloc_ns / 2))
            }
            None => Err(BuddyError::NotAllocated(PhysRange::new(
                first_page, PAGE_SIZE,
            ))),
        }
    }

    /// Time to allocate `bytes` through the buddy path without mutating state
    /// (used for the Figure 3 comparison sweep).
    pub fn estimate_alloc_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.div_ceil(PAGE_SIZE) * self.page_alloc_ns)
    }

    /// Convenience wrapper that also reports the completion instant.
    pub fn alloc_pages_at(
        &mut self,
        bytes: u64,
        now: SimTime,
    ) -> Result<(BuddyAllocation, SimTime), BuddyError> {
        let alloc = self.alloc_pages(bytes)?;
        let end = now + alloc.duration;
        Ok((alloc, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GIB;

    fn allocator() -> BuddyAllocator {
        let range = PhysRange::new(PhysAddr::new(0x4000_0000), 14 * GIB);
        BuddyAllocator::new(range, 2 * GIB, 260)
    }

    #[test]
    fn accounting_tracks_alloc_and_free() {
        let mut buddy = allocator();
        let before = buddy.free_bytes();
        let a = buddy.alloc_pages(GIB).unwrap();
        assert_eq!(a.bytes(), GIB);
        assert_eq!(buddy.free_bytes(), before - GIB);
        buddy.free_pages(a.pages[0]).unwrap();
        assert_eq!(buddy.free_bytes(), before);
    }

    #[test]
    fn oom_when_request_exceeds_free() {
        let mut buddy = allocator();
        let err = buddy.alloc_pages(20 * GIB).unwrap_err();
        assert!(matches!(err, BuddyError::OutOfMemory { .. }));
    }

    #[test]
    fn allocation_time_scales_with_pages() {
        let buddy = allocator();
        let t8 = buddy.estimate_alloc_time(8 * GIB);
        let t1 = buddy.estimate_alloc_time(GIB);
        assert!((t8.as_secs_f64() / t1.as_secs_f64() - 8.0).abs() < 0.01);
        // ~2M pages at 260 ns each ~ 0.55 s, the flat buddy line in Figure 3.
        assert!(
            t8.as_secs_f64() > 0.4 && t8.as_secs_f64() < 0.8,
            "t8 = {t8}"
        );
    }

    #[test]
    fn double_free_detected() {
        let mut buddy = allocator();
        let a = buddy.alloc_pages(PAGE_SIZE).unwrap();
        buddy.free_pages(a.pages[0]).unwrap();
        assert!(matches!(
            buddy.free_pages(a.pages[0]),
            Err(BuddyError::NotAllocated(_))
        ));
    }

    #[test]
    fn pages_are_distinct() {
        let mut buddy = allocator();
        let a = buddy.alloc_pages(16 * PAGE_SIZE).unwrap();
        let b = buddy.alloc_pages(16 * PAGE_SIZE).unwrap();
        let mut all: Vec<u64> = a
            .pages
            .iter()
            .chain(b.pages.iter())
            .map(|p| p.as_u64())
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len);
    }
}
