//! The REE NPU driver — control plane.
//!
//! §4.3: TZ-LLM keeps the full-fledged NPU driver in the REE and extends it
//! (167 LoC in the paper's prototype) with *shadow-job scheduling*: the
//! unified scheduling queue holds both non-secure jobs and shadow jobs, and
//! whenever a shadow job reaches the head of the queue the driver proactively
//! hands the NPU to the TEE data-plane driver instead of launching anything
//! itself.
//!
//! The control plane owns:
//! * the scheduling queue (FIFO, like the Rockchip driver's single queue),
//! * power / frequency management (modelled as the fixed `npu_driver_reinit`
//!   cost that a detach-attach world switch would pay — the cost the
//!   co-driver design avoids),
//! * completion bookkeeping.
//!
//! It never touches secure memory and never needs to: that is the whole point
//! of the control/data-plane split.

use std::collections::VecDeque;

use npu::{JobId, JobKind, NpuJob};
use sim_core::{SimDuration, SimTime};

/// What the scheduler decided to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleDecision {
    /// The queue is empty; nothing to do.
    Idle,
    /// Launch this non-secure job on the device.
    LaunchNonSecure(NpuJob),
    /// A shadow job is at the head: hand the NPU over to the TEE driver so it
    /// can run the paired secure job.
    HandoffToTee {
        /// The shadow job being consumed.
        shadow: NpuJob,
        /// The secure job the TEE driver is expected to run.
        paired_secure_job: JobId,
    },
}

/// Statistics the driver keeps for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Non-secure jobs launched.
    pub non_secure_launched: u64,
    /// Shadow jobs consumed (secure handoffs).
    pub handoffs: u64,
    /// Completions observed.
    pub completions: u64,
    /// Full driver re-initialisations (detach/attach baseline only).
    pub reinits: u64,
}

/// The REE NPU control-plane driver.
#[derive(Debug)]
pub struct ReeNpuDriver {
    queue: VecDeque<NpuJob>,
    stats: DriverStats,
    /// Per-job scheduling overhead on the CPU (queue manipulation, ioctl).
    schedule_overhead: SimDuration,
    /// Cost of a full detach-attach reinitialisation (baseline design).
    reinit_cost: SimDuration,
    attached: bool,
}

impl ReeNpuDriver {
    /// Creates an attached, idle driver.
    pub fn new(schedule_overhead: SimDuration, reinit_cost: SimDuration) -> Self {
        ReeNpuDriver {
            queue: VecDeque::new(),
            stats: DriverStats::default(),
            schedule_overhead,
            reinit_cost,
            attached: true,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Number of jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the driver currently owns the device (false while detached in
    /// the detach-attach baseline).
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// Enqueues a non-secure job from an REE application.
    pub fn enqueue_non_secure(&mut self, job: NpuJob) {
        assert!(
            matches!(job.kind, JobKind::NonSecure),
            "enqueue_non_secure only accepts non-secure jobs"
        );
        self.queue.push_back(job);
    }

    /// Enqueues a shadow job on behalf of the TEE driver (§4.3: "each time the
    /// LLM TA issues a secure NPU job, the TEE driver issues a paired shadow
    /// job with an empty execution context to the REE driver").
    pub fn enqueue_shadow(&mut self, shadow: NpuJob) {
        assert!(
            shadow.is_shadow(),
            "enqueue_shadow only accepts shadow jobs"
        );
        self.queue.push_back(shadow);
    }

    /// Pops the next job from the queue and decides what to do with it.
    /// Returns the decision and the CPU time the scheduling step consumed.
    pub fn schedule_next(&mut self) -> (ScheduleDecision, SimDuration) {
        match self.queue.pop_front() {
            None => (ScheduleDecision::Idle, SimDuration::ZERO),
            Some(job) => match job.kind {
                JobKind::NonSecure => {
                    self.stats.non_secure_launched += 1;
                    (
                        ScheduleDecision::LaunchNonSecure(job),
                        self.schedule_overhead,
                    )
                }
                JobKind::Shadow { paired_secure_job } => {
                    self.stats.handoffs += 1;
                    (
                        ScheduleDecision::HandoffToTee {
                            shadow: job,
                            paired_secure_job,
                        },
                        self.schedule_overhead,
                    )
                }
                JobKind::Secure => {
                    unreachable!(
                        "secure jobs are never placed in the REE queue; only their shadows are"
                    )
                }
            },
        }
    }

    /// Records that a job (non-secure or shadow) completed.
    pub fn on_completion(&mut self, _job: JobId, _now: SimTime) {
        self.stats.completions += 1;
    }

    /// Full detach: relinquish the device, tearing down control-plane state.
    /// Returns the time it takes.  Part of the rejected detach-attach design
    /// and of the §2.3 motivation measurement.
    pub fn detach(&mut self) -> SimDuration {
        self.attached = false;
        self.stats.reinits += 1;
        self.reinit_cost / 2
    }

    /// Full attach: re-probe the device and rebuild control-plane state.
    pub fn attach(&mut self) -> SimDuration {
        self.attached = true;
        self.reinit_cost / 2
    }

    /// The cost of a full detach-attach cycle (≈32 ms on the paper's testbed).
    pub fn full_reinit_cost(&self) -> SimDuration {
        self.reinit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu::ExecutionContext;

    fn ns_job(id: u64) -> NpuJob {
        NpuJob::non_secure(
            JobId(id),
            ExecutionContext::empty(),
            SimDuration::from_millis(5),
            format!("nn-{id}"),
        )
    }

    fn driver() -> ReeNpuDriver {
        ReeNpuDriver::new(SimDuration::from_micros(30), SimDuration::from_millis(32))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut d = driver();
        d.enqueue_non_secure(ns_job(1));
        d.enqueue_shadow(NpuJob::shadow(JobId(100), JobId(10)));
        d.enqueue_non_secure(ns_job(2));

        match d.schedule_next().0 {
            ScheduleDecision::LaunchNonSecure(j) => assert_eq!(j.id, JobId(1)),
            other => panic!("unexpected {other:?}"),
        }
        match d.schedule_next().0 {
            ScheduleDecision::HandoffToTee {
                paired_secure_job, ..
            } => {
                assert_eq!(paired_secure_job, JobId(10))
            }
            other => panic!("unexpected {other:?}"),
        }
        match d.schedule_next().0 {
            ScheduleDecision::LaunchNonSecure(j) => assert_eq!(j.id, JobId(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.schedule_next().0, ScheduleDecision::Idle);
        assert_eq!(d.stats().non_secure_launched, 2);
        assert_eq!(d.stats().handoffs, 1);
    }

    #[test]
    #[should_panic]
    fn secure_jobs_cannot_enter_the_ree_queue() {
        let mut d = driver();
        d.enqueue_non_secure(NpuJob::secure(
            JobId(1),
            ExecutionContext::empty(),
            SimDuration::from_millis(1),
            "secure",
        ));
    }

    #[test]
    fn detach_attach_costs_the_full_reinit() {
        let mut d = driver();
        let t = d.detach() + d.attach();
        assert_eq!(t, SimDuration::from_millis(32));
        assert!(d.is_attached());
        assert_eq!(d.stats().reinits, 1);
    }

    #[test]
    fn completions_are_counted() {
        let mut d = driver();
        d.enqueue_non_secure(ns_job(1));
        let _ = d.schedule_next();
        d.on_completion(JobId(1), SimTime::from_millis(5));
        assert_eq!(d.stats().completions, 1);
    }
}
