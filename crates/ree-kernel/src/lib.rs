//! # ree-kernel
//!
//! Model of the Rich Execution Environment OS (OpenHarmony's Linux kernel in
//! the paper) at the granularity TZ-LLM interacts with it:
//!
//! * [`buddy`] — the ordinary page allocator (used by the REE-LLM-Flash
//!   baseline and the Figure 3 comparison).
//! * [`cma`] — the Contiguous Memory Allocator with movable-page migration,
//!   the mechanism behind dynamic secure-memory scaling.
//! * [`flash`] — the NVMe flash device and the REE file system holding the
//!   encrypted model files.
//! * [`tz_driver`] — the TrustZone driver: CMA delegation and SMC forwarding
//!   (untrusted; can be made adversarial for Iago-attack tests).
//! * [`npu_driver`] — the NPU control-plane driver with shadow-job scheduling.
//! * [`s2pt`] — the rejected stage-2-page-table design, for Figure 2.
//!
//! Everything in this crate is *outside* the TCB.

pub mod buddy;
pub mod cma;
pub mod flash;
pub mod npu_driver;
pub mod s2pt;
pub mod tz_driver;

pub use buddy::{BuddyAllocation, BuddyAllocator, BuddyError};
pub use cma::{CmaAllocCost, CmaError, CmaRegion};
pub use flash::{FileContent, FileSystem, FlashDevice, FsError, ReadResult};
pub use npu_driver::{DriverStats, ReeNpuDriver, ScheduleDecision};
pub use s2pt::{S2Granularity, StageTwoConfig};
pub use tz_driver::{CmaPool, CmaReply, Misbehaviour, TzDriver};
