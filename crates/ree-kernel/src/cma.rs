//! Contiguous Memory Allocator (CMA) model with movable-page migration.
//!
//! TrustZone (TZASC) can only protect contiguous physical memory, so TZ-LLM
//! scales secure memory by allocating from a Linux CMA region (§2.2, §3.2).
//! CMA keeps a physically contiguous reservation usable by *movable* pages;
//! to hand out contiguous blocks it migrates those movable pages elsewhere,
//! which costs CPU time proportional to the occupied bytes.  That migration
//! cost is the transient overhead Figures 3 and 16 measure.
//!
//! The model tracks, for the CMA region:
//! * a watermark of contiguous allocations growing from the region start
//!   (matching the extend/shrink, first-in-last-out pattern of §4.2), and
//! * the movable bytes currently parked inside the not-yet-allocated tail of
//!   the region (a function of REE memory pressure).

use sim_core::{Bandwidth, SimDuration};
use tz_hal::{PhysAddr, PhysRange, PAGE_SIZE};

/// Breakdown of where the time of one CMA allocation went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmaAllocCost {
    /// Time spent migrating movable pages out of the requested block.
    pub migration: SimDuration,
    /// Time spent on ordinary page bookkeeping for the block.
    pub bookkeeping: SimDuration,
    /// Bytes that had to be migrated.
    pub migrated_bytes: u64,
}

impl CmaAllocCost {
    /// Total allocation latency.
    pub fn total(&self) -> SimDuration {
        self.migration + self.bookkeeping
    }
}

/// Errors from the CMA model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmaError {
    /// The request does not fit in the remaining CMA space.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        remaining: u64,
    },
    /// Tried to release more bytes than are allocated.
    ReleaseUnderflow,
    /// Requests must be page-aligned.
    Misaligned,
}

impl std::fmt::Display for CmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmaError::OutOfSpace {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "CMA out of space: requested {requested}, remaining {remaining}"
                )
            }
            CmaError::ReleaseUnderflow => write!(f, "released more CMA bytes than allocated"),
            CmaError::Misaligned => write!(f, "CMA requests must be page aligned"),
        }
    }
}

impl std::error::Error for CmaError {}

/// The CMA region state.
#[derive(Debug, Clone)]
pub struct CmaRegion {
    range: PhysRange,
    /// Bytes allocated contiguously from the start of the region.
    allocated: u64,
    /// Movable bytes currently resident in the unallocated tail.
    occupied_movable: u64,
    /// Single-thread migration bandwidth.
    migration_bw: Bandwidth,
    /// Per-page bookkeeping cost in nanoseconds.
    page_alloc_ns: u64,
    /// Cumulative CPU time spent migrating (REE interference accounting).
    total_migration_cpu: SimDuration,
}

impl CmaRegion {
    /// Creates a CMA region over `range`.
    pub fn new(range: PhysRange, migration_bw: Bandwidth, page_alloc_ns: u64) -> Self {
        assert!(range.start.is_aligned(PAGE_SIZE) && range.size.is_multiple_of(PAGE_SIZE));
        CmaRegion {
            range,
            allocated: 0,
            occupied_movable: 0,
            migration_bw,
            page_alloc_ns,
            total_migration_cpu: SimDuration::ZERO,
        }
    }

    /// The full reserved range.
    pub fn range(&self) -> PhysRange {
        self.range
    }

    /// Bytes currently allocated (the contiguous watermark).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Bytes still available.
    pub fn remaining_bytes(&self) -> u64 {
        self.range.size - self.allocated
    }

    /// The currently allocated contiguous block (empty when nothing is
    /// allocated).
    pub fn allocated_range(&self) -> PhysRange {
        PhysRange::new(self.range.start, self.allocated)
    }

    /// Movable bytes parked in the unallocated tail (set by memory pressure).
    pub fn occupied_movable_bytes(&self) -> u64 {
        self.occupied_movable
    }

    /// Cumulative CPU time spent on migration since creation.
    pub fn total_migration_cpu(&self) -> SimDuration {
        self.total_migration_cpu
    }

    /// Models REE memory pressure: `pressure_bytes` of movable data are
    /// mapped by applications (stress-ng in the paper's experiments), of which
    /// everything that fits parks inside the unallocated CMA tail.
    ///
    /// Linux places movable allocations in CMA freely and only migrates them
    /// out on demand, so under sustained pressure the tail is effectively
    /// fully occupied — this is the regime where the paper measures 1.9 GB/s
    /// allocation throughput.
    pub fn set_memory_pressure(&mut self, pressure_bytes: u64) {
        self.occupied_movable = pressure_bytes.min(self.remaining_bytes());
    }

    /// Fraction of the unallocated tail occupied by movable pages.
    pub fn occupancy(&self) -> f64 {
        if self.remaining_bytes() == 0 {
            return 0.0;
        }
        self.occupied_movable as f64 / self.remaining_bytes() as f64
    }

    /// Allocates `bytes` contiguously, adjacent to the previous allocation
    /// (growing the watermark), migrating any movable pages in the way.
    ///
    /// `threads` is the number of migration threads the TZ driver uses; the
    /// paper reports 1.9 GB/s single-threaded and 3.8 GB/s with four threads.
    pub fn alloc_contiguous(
        &mut self,
        bytes: u64,
        threads: usize,
    ) -> Result<(PhysRange, CmaAllocCost), CmaError> {
        if !bytes.is_multiple_of(PAGE_SIZE) {
            return Err(CmaError::Misaligned);
        }
        if bytes > self.remaining_bytes() {
            return Err(CmaError::OutOfSpace {
                requested: bytes,
                remaining: self.remaining_bytes(),
            });
        }
        // Movable pages are assumed uniformly spread over the unallocated
        // tail, so the block at the watermark contains a proportional share.
        let migrated_bytes = ((bytes as f64) * self.occupancy()).round() as u64;
        let migrated_bytes = migrated_bytes.min(self.occupied_movable);

        let threads = threads.max(1);
        let scale = 1.0 + (threads.min(4) as f64 - 1.0) / 3.0;
        let migration = self
            .migration_bw
            .scaled(scale)
            .time_for_bytes(migrated_bytes);
        let bookkeeping = SimDuration::from_nanos((bytes / PAGE_SIZE) * self.page_alloc_ns);

        let block = PhysRange::new(
            PhysAddr::new(self.range.start.as_u64() + self.allocated),
            bytes,
        );
        self.allocated += bytes;
        self.occupied_movable -= migrated_bytes;
        // The CPU work is the single-thread-equivalent time (all threads busy).
        let cpu_time = self.migration_bw.time_for_bytes(migrated_bytes);
        self.total_migration_cpu += cpu_time;

        Ok((
            block,
            CmaAllocCost {
                migration,
                bookkeeping,
                migrated_bytes,
            },
        ))
    }

    /// Releases `bytes` from the end of the allocated block back to the CMA
    /// pool (the `shrink` direction of §4.2).
    pub fn release_from_end(&mut self, bytes: u64) -> Result<SimDuration, CmaError> {
        if !bytes.is_multiple_of(PAGE_SIZE) {
            return Err(CmaError::Misaligned);
        }
        if bytes > self.allocated {
            return Err(CmaError::ReleaseUnderflow);
        }
        self.allocated -= bytes;
        Ok(SimDuration::from_nanos(
            (bytes / PAGE_SIZE) * self.page_alloc_ns / 2,
        ))
    }

    /// Estimates the cost of allocating `bytes` at the current occupancy
    /// without changing any state (Figure 3 sweeps).
    pub fn estimate_alloc(&self, bytes: u64, threads: usize) -> CmaAllocCost {
        let migrated_bytes =
            (((bytes.min(self.remaining_bytes())) as f64) * self.occupancy()).round() as u64;
        let threads = threads.max(1);
        let scale = 1.0 + (threads.min(4) as f64 - 1.0) / 3.0;
        CmaAllocCost {
            migration: self
                .migration_bw
                .scaled(scale)
                .time_for_bytes(migrated_bytes),
            bookkeeping: SimDuration::from_nanos((bytes / PAGE_SIZE) * self.page_alloc_ns),
            migrated_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GIB;

    fn region() -> CmaRegion {
        CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x1_0000_0000), 9 * GIB),
            Bandwidth::from_bytes_per_sec(1.9e9),
            260,
        )
    }

    #[test]
    fn allocations_are_adjacent_and_contiguous() {
        let mut cma = region();
        let (a, _) = cma.alloc_contiguous(GIB, 1).unwrap();
        let (b, _) = cma.alloc_contiguous(2 * GIB, 1).unwrap();
        assert!(a.is_followed_by(&b));
        assert_eq!(cma.allocated_range().size, 3 * GIB);
        assert_eq!(cma.allocated_range().start, cma.range().start);
    }

    #[test]
    fn no_pressure_means_no_migration() {
        let mut cma = region();
        let (_, cost) = cma.alloc_contiguous(8 * GIB, 1).unwrap();
        assert_eq!(cost.migrated_bytes, 0);
        assert_eq!(cost.migration, SimDuration::ZERO);
        // Only bookkeeping: ~0.5 s for 8 GiB of pages.
        assert!(cost.total().as_secs_f64() < 1.0);
    }

    #[test]
    fn high_pressure_approaches_paper_allocation_time() {
        let mut cma = region();
        cma.set_memory_pressure(16 * GIB); // saturate the tail
        let cost = cma.estimate_alloc(8 * GIB, 1);
        // 8 GiB at ~1.9 GB/s + bookkeeping ~ 4.2-5.1 s (paper: 4.18 s for 8137 MB).
        let t = cost.total().as_secs_f64();
        assert!(t > 3.8 && t < 5.6, "t = {t}");
        // Four threads roughly halve it.
        let t4 = cma.estimate_alloc(8 * GIB, 4).total().as_secs_f64();
        assert!(t4 < t * 0.62, "t4 = {t4}, t = {t}");
    }

    #[test]
    fn migration_scales_with_pressure() {
        let mut cma = region();
        let mut last = 0u64;
        for pressure in [0u64, 1, 2, 4, 6] {
            cma.set_memory_pressure(pressure * GIB);
            let cost = cma.estimate_alloc(8 * GIB, 1);
            assert!(cost.migrated_bytes >= last, "monotone in pressure");
            last = cost.migrated_bytes;
        }
        assert!(last > 5 * GIB);
    }

    #[test]
    fn release_shrinks_from_end_and_reuses_space() {
        let mut cma = region();
        let (_, _) = cma.alloc_contiguous(4 * GIB, 1).unwrap();
        cma.release_from_end(2 * GIB).unwrap();
        assert_eq!(cma.allocated_bytes(), 2 * GIB);
        let (c, _) = cma.alloc_contiguous(GIB, 1).unwrap();
        assert_eq!(c.start.as_u64(), cma.range().start.as_u64() + 2 * GIB);
        assert!(matches!(
            cma.release_from_end(10 * GIB),
            Err(CmaError::ReleaseUnderflow)
        ));
    }

    #[test]
    fn out_of_space_rejected() {
        let mut cma = region();
        assert!(matches!(
            cma.alloc_contiguous(10 * GIB, 1),
            Err(CmaError::OutOfSpace { .. })
        ));
        assert!(matches!(
            cma.alloc_contiguous(123, 1),
            Err(CmaError::Misaligned)
        ));
    }

    #[test]
    fn migration_cpu_time_accumulates_for_interference_accounting() {
        let mut cma = region();
        cma.set_memory_pressure(8 * GIB);
        let before = cma.total_migration_cpu();
        let (_, cost) = cma.alloc_contiguous(2 * GIB, 4).unwrap();
        assert!(cma.total_migration_cpu() > before);
        // CPU time is the single-thread-equivalent, i.e. at least the wall time.
        assert!(cma.total_migration_cpu() >= cost.migration);
    }
}
