//! Flash storage device and the REE file system.
//!
//! Model files live in the REE file system because the TEE has no storage
//! stack of its own; the LLM TA delegates reads to the client application
//! (CA), which issues asynchronous I/O against the NVMe flash (§3.2).  Since
//! the REE is untrusted, everything the TA reads back must be encrypted and
//! checksummed.
//!
//! Two kinds of file content are supported:
//! * real bytes, for the small functional models used in correctness tests;
//! * synthetic sizes, for the multi-gigabyte benchmark models where only the
//!   timing matters.

use std::collections::BTreeMap;

use sim_core::{Bandwidth, SimDuration};

/// Reads smaller than this pay the small-read penalty (command overhead
/// dominates sequential streaming).
pub const SMALL_READ_THRESHOLD: u64 = 128 * 1024;

/// Errors from the file system model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with the given path.
    NotFound(String),
    /// Read past the end of the file.
    OutOfBounds {
        /// The file path.
        path: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// Requested byte content of a synthetic (size-only) file.
    SyntheticContent(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::OutOfBounds {
                path,
                offset,
                len,
                size,
            } => {
                write!(
                    f,
                    "read [{offset}, +{len}) out of bounds for {path} ({size} bytes)"
                )
            }
            FsError::SyntheticContent(p) => {
                write!(f, "{p} is a synthetic file without byte content")
            }
        }
    }
}

impl std::error::Error for FsError {}

/// The flash device: a constant-bandwidth sequential reader with a penalty
/// for small random reads.
#[derive(Debug, Clone)]
pub struct FlashDevice {
    bandwidth: Bandwidth,
    small_read_penalty: f64,
}

impl FlashDevice {
    /// Creates a flash device.
    pub fn new(bandwidth: Bandwidth, small_read_penalty: f64) -> Self {
        assert!(small_read_penalty >= 1.0);
        FlashDevice {
            bandwidth,
            small_read_penalty,
        }
    }

    /// Sequential-read bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Time to read `bytes` in one request.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        let base = self.bandwidth.time_for_bytes(bytes);
        if bytes < SMALL_READ_THRESHOLD {
            base * self.small_read_penalty + SimDuration::from_micros(80)
        } else {
            base
        }
    }
}

/// Content of a file in the REE file system.
#[derive(Debug, Clone)]
pub enum FileContent {
    /// Real bytes (small functional models, wrapped keys, checkpoints).
    Bytes(Vec<u8>),
    /// Size-only content for multi-gigabyte benchmark models.
    Synthetic {
        /// Logical size in bytes.
        size: u64,
    },
}

impl FileContent {
    /// Logical size of the file.
    pub fn size(&self) -> u64 {
        match self {
            FileContent::Bytes(b) => b.len() as u64,
            FileContent::Synthetic { size } => *size,
        }
    }
}

/// Result of a timed read.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The bytes read (`None` for synthetic files).
    pub data: Option<Vec<u8>>,
    /// How long the flash transfer took.
    pub duration: SimDuration,
}

/// The REE file system: a flat path → content map on one flash device.
#[derive(Debug, Clone)]
pub struct FileSystem {
    device: FlashDevice,
    files: BTreeMap<String, FileContent>,
    bytes_read: u64,
}

impl FileSystem {
    /// Creates an empty file system on `device`.
    pub fn new(device: FlashDevice) -> Self {
        FileSystem {
            device,
            files: BTreeMap::new(),
            bytes_read: 0,
        }
    }

    /// The underlying flash device.
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// Creates or replaces a file.
    pub fn write_file(&mut self, path: impl Into<String>, content: FileContent) {
        self.files.insert(path.into(), content);
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Size of a file.
    pub fn size_of(&self, path: &str) -> Result<u64, FsError> {
        self.files
            .get(path)
            .map(FileContent::size)
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Total bytes read since creation (I/O accounting).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads `len` bytes at `offset`, returning data when the file has real
    /// bytes and timing in both cases.
    pub fn read(&mut self, path: &str, offset: u64, len: u64) -> Result<ReadResult, FsError> {
        let content = self
            .files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let size = content.size();
        if offset + len > size {
            return Err(FsError::OutOfBounds {
                path: path.to_string(),
                offset,
                len,
                size,
            });
        }
        let duration = self.device.read_time(len);
        self.bytes_read += len;
        let data = match content {
            FileContent::Bytes(bytes) => {
                Some(bytes[offset as usize..(offset + len) as usize].to_vec())
            }
            FileContent::Synthetic { .. } => None,
        };
        Ok(ReadResult { data, duration })
    }

    /// Reads the whole file.
    pub fn read_all(&mut self, path: &str) -> Result<ReadResult, FsError> {
        let size = self.size_of(path)?;
        self.read(path, 0, size)
    }

    /// Returns the byte content of a real-bytes file without charging I/O
    /// time (used by the model packer in tests).
    pub fn raw_bytes(&self, path: &str) -> Result<&[u8], FsError> {
        match self.files.get(path) {
            Some(FileContent::Bytes(b)) => Ok(b),
            Some(FileContent::Synthetic { .. }) => Err(FsError::SyntheticContent(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GIB;

    fn fs() -> FileSystem {
        FileSystem::new(FlashDevice::new(Bandwidth::from_bytes_per_sec(2.0e9), 2.5))
    }

    #[test]
    fn sequential_read_time_matches_bandwidth() {
        let fs = fs();
        let t = fs.device().read_time(2 * GIB);
        assert!((t.as_secs_f64() - (2.0 * GIB as f64) / 2.0e9).abs() < 1e-6);
    }

    #[test]
    fn small_reads_pay_a_penalty() {
        let fs = fs();
        let small = fs.device().read_time(4096);
        let linear = Bandwidth::from_bytes_per_sec(2.0e9).time_for_bytes(4096);
        assert!(small > linear * 2);
    }

    #[test]
    fn read_real_bytes_roundtrip() {
        let mut fs = fs();
        fs.write_file("model.bin", FileContent::Bytes((0u8..200).collect()));
        let r = fs.read("model.bin", 10, 20).unwrap();
        assert_eq!(r.data.unwrap(), (10u8..30).collect::<Vec<u8>>());
        assert!(r.duration > SimDuration::ZERO);
        assert_eq!(fs.bytes_read(), 20);
    }

    #[test]
    fn synthetic_files_give_timing_only() {
        let mut fs = fs();
        fs.write_file("llama-3-8b.enc", FileContent::Synthetic { size: 8 * GIB });
        assert_eq!(fs.size_of("llama-3-8b.enc").unwrap(), 8 * GIB);
        let r = fs.read("llama-3-8b.enc", GIB, GIB).unwrap();
        assert!(r.data.is_none());
        assert!((r.duration.as_secs_f64() - GIB as f64 / 2.0e9).abs() < 1e-6);
        assert!(fs.raw_bytes("llama-3-8b.enc").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let mut fs = fs();
        assert!(matches!(
            fs.read("missing", 0, 1),
            Err(FsError::NotFound(_))
        ));
        fs.write_file("small", FileContent::Bytes(vec![0u8; 10]));
        assert!(matches!(
            fs.read("small", 5, 10),
            Err(FsError::OutOfBounds { .. })
        ));
    }
}
