//! Stage-2 page table (S2PT) alternative — the design the paper rejects.
//!
//! §2.4.2 examines protecting secure memory with stage-2 translation instead
//! of CMA + TZASC: run the REE inside a thin hypervisor and unmap secure
//! pages from the stage-2 tables.  The paper rejects it because (a) stage-2
//! walks impose a *continuous* overhead on REE applications once mappings
//! fragment to 4 KiB (up to 9.8 % on Geekbench, Figure 2), (b) disabling it
//! when idle forfeits parameter caching, and (c) it cannot stop DMA attacks
//! without additional IOMMU monitoring.
//!
//! This module models that alternative so Figure 2 and the design comparison
//! can be regenerated.

use serde::{Deserialize, Serialize};

/// Stage-2 mapping granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum S2Granularity {
    /// 4 KiB mappings — what the system degrades to after fragmentation.
    Page4K,
    /// 2 MiB block mappings.
    Block2M,
    /// 1 GiB block mappings.
    Block1G,
}

impl S2Granularity {
    /// Relative cost of a two-dimensional walk at this granularity, expressed
    /// as the multiplier applied to a workload's TLB sensitivity.
    ///
    /// Calibrated so that 4 KiB mappings reproduce the average 2.0 % /
    /// maximum 9.8 % Geekbench overhead of Figure 2.
    pub fn walk_cost_factor(self) -> f64 {
        match self {
            S2Granularity::Page4K => 1.0,
            S2Granularity::Block2M => 0.28,
            S2Granularity::Block1G => 0.11,
        }
    }
}

/// The stage-2 protection state of the REE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTwoConfig {
    /// Whether stage-2 translation is currently enabled.
    pub enabled: bool,
    /// Mapping granularity currently in effect.
    pub granularity: S2Granularity,
}

impl StageTwoConfig {
    /// Stage-2 disabled (the TZ-LLM / CMA design).
    pub fn disabled() -> Self {
        StageTwoConfig {
            enabled: false,
            granularity: S2Granularity::Block1G,
        }
    }

    /// Stage-2 enabled with 4 KiB mappings (the post-fragmentation state the
    /// paper measures).
    pub fn enabled_4k() -> Self {
        StageTwoConfig {
            enabled: true,
            granularity: S2Granularity::Page4K,
        }
    }

    /// The slowdown factor this configuration imposes on a workload with the
    /// given TLB sensitivity (0.0 = never misses the TLB, 1.0 = extremely
    /// walk-heavy).  Returns a multiplicative factor ≥ 1.0 applied to the
    /// workload's runtime.
    pub fn slowdown_factor(&self, tlb_sensitivity: f64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let s = tlb_sensitivity.clamp(-0.05, 1.0);
        1.0 + s * 0.098 * self.granularity.walk_cost_factor() / 1.0
    }

    /// Disabling stage-2 protection requires scrubbing all protected memory
    /// first (§2.4.2); returns the number of bytes that must be cleared.
    pub fn disable_requires_clearing(&self, protected_bytes: u64) -> u64 {
        if self.enabled {
            protected_bytes
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_has_no_overhead() {
        let cfg = StageTwoConfig::disabled();
        assert_eq!(cfg.slowdown_factor(1.0), 1.0);
        assert_eq!(cfg.slowdown_factor(0.0), 1.0);
    }

    #[test]
    fn enabled_4k_reaches_papers_worst_case() {
        let cfg = StageTwoConfig::enabled_4k();
        // The most walk-heavy subtest (Navigation, 9.8 %) has sensitivity 1.0.
        let worst = cfg.slowdown_factor(1.0);
        assert!((worst - 1.098).abs() < 1e-9);
        // A cache-friendly subtest barely notices.
        let best = cfg.slowdown_factor(0.02);
        assert!(best < 1.01);
    }

    #[test]
    fn huge_pages_reduce_but_do_not_eliminate_overhead() {
        let four_k = StageTwoConfig::enabled_4k().slowdown_factor(1.0);
        let two_m = StageTwoConfig {
            enabled: true,
            granularity: S2Granularity::Block2M,
        }
        .slowdown_factor(1.0);
        assert!(two_m > 1.0 && two_m < four_k);
    }

    #[test]
    fn disabling_requires_clearing_protected_memory() {
        let cfg = StageTwoConfig::enabled_4k();
        assert_eq!(cfg.disable_requires_clearing(1024), 1024);
        assert_eq!(
            StageTwoConfig::disabled().disable_requires_clearing(1024),
            0
        );
    }
}
