//! The REE TrustZone (TZ) driver.
//!
//! The TZ driver is the REE kernel's bridge to the TEE (§3.2, Figure 4).  In
//! TZ-LLM it gains two duties beyond the stock OpenHarmony driver (the paper
//! adds 197 LoC for this):
//!
//! 1. **CMA delegation** — when the TEE OS scales secure memory, the TZ
//!    driver allocates/frees contiguous blocks from the CMA region on its
//!    behalf (memory ballooning) and reports the physical address back.
//! 2. **SMC forwarding** — it forwards client-application invocations and TA
//!    I/O delegation requests through the secure monitor.
//!
//! The TZ driver is *untrusted*: everything it reports is re-validated inside
//! the TEE (`tee-kernel::secure_memory`).  For the Iago-attack tests it can be
//! put into an adversarial mode where it returns non-adjacent blocks.

use std::sync::Arc;

use sim_core::SimDuration;
use tz_hal::{PhysRange, Platform, SmcFunction, World};

use crate::cma::{CmaAllocCost, CmaError, CmaRegion};

/// Identifies one of the CMA pools the TZ driver manages on behalf of the TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmaPool {
    /// The large pool backing the LLM-parameter TZASC region.
    Parameters,
    /// The smaller pool backing KV cache / activations / other TA data.
    Working,
}

/// A CMA allocation reply sent back to the TEE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmaReply {
    /// The block the driver claims to have allocated.
    pub block: PhysRange,
    /// The time the allocation took (migration + bookkeeping).
    pub cost: CmaAllocCost,
}

/// Adversarial behaviours for Iago-attack testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Misbehaviour {
    /// Behave correctly.
    #[default]
    None,
    /// Return a block that is not adjacent to the previous allocation.
    NonAdjacentBlock,
    /// Return a block that overlaps memory the REE still uses.
    OverlappingBlock,
}

/// The TZ driver state.
#[derive(Debug)]
pub struct TzDriver {
    platform: Arc<Platform>,
    param_pool: CmaRegion,
    working_pool: CmaRegion,
    misbehaviour: Misbehaviour,
    migration_threads: usize,
}

impl TzDriver {
    /// Creates the TZ driver with its two CMA pools.
    pub fn new(platform: Arc<Platform>, param_pool: CmaRegion, working_pool: CmaRegion) -> Self {
        let migration_threads = platform.profile.cma_migration_threads;
        TzDriver {
            platform,
            param_pool,
            working_pool,
            misbehaviour: Misbehaviour::None,
            migration_threads,
        }
    }

    /// Switches the driver into an adversarial mode (tests only).
    pub fn set_misbehaviour(&mut self, m: Misbehaviour) {
        self.misbehaviour = m;
    }

    /// Applies REE memory pressure to the parameter pool (stress-ng model).
    pub fn set_memory_pressure(&mut self, bytes: u64) {
        self.param_pool.set_memory_pressure(bytes);
    }

    /// Immutable access to a pool (for assertions and experiment accounting).
    pub fn pool(&self, pool: CmaPool) -> &CmaRegion {
        match pool {
            CmaPool::Parameters => &self.param_pool,
            CmaPool::Working => &self.working_pool,
        }
    }

    fn pool_mut(&mut self, pool: CmaPool) -> &mut CmaRegion {
        match pool {
            CmaPool::Parameters => &mut self.param_pool,
            CmaPool::Working => &mut self.working_pool,
        }
    }

    /// Handles a CMA allocation request from the TEE (one SMC round trip).
    ///
    /// Returns the reply the TEE will validate plus the SMC transition cost.
    pub fn cma_alloc(
        &mut self,
        pool: CmaPool,
        bytes: u64,
    ) -> Result<(CmaReply, SimDuration), CmaError> {
        let smc_cost = self
            .platform
            .with_smc(|smc| smc.round_trip(World::Secure, SmcFunction::CmaRequest));
        let threads = self.migration_threads;
        let misbehaviour = self.misbehaviour;
        let (block, cost) = self.pool_mut(pool).alloc_contiguous(bytes, threads)?;
        let block = match misbehaviour {
            Misbehaviour::None => block,
            Misbehaviour::NonAdjacentBlock => {
                // Claim an address one page past where the block should be.
                PhysRange::new(block.start.add(tz_hal::PAGE_SIZE), block.size)
            }
            Misbehaviour::OverlappingBlock => {
                // Claim the block starts at the very beginning of the pool,
                // overlapping previously handed-out memory.
                PhysRange::new(self.pool(pool).range().start, block.size)
            }
        };
        Ok((CmaReply { block, cost }, smc_cost))
    }

    /// Handles a CMA release request from the TEE.
    pub fn cma_release(&mut self, pool: CmaPool, bytes: u64) -> Result<SimDuration, CmaError> {
        let smc_cost = self
            .platform
            .with_smc(|smc| smc.round_trip(World::Secure, SmcFunction::CmaRequest));
        let free_cost = self.pool_mut(pool).release_from_end(bytes)?;
        Ok(smc_cost + free_cost)
    }

    /// Forwards a CA → TA invocation through the monitor and returns its cost.
    pub fn invoke_ta(&self) -> SimDuration {
        self.platform
            .with_smc(|smc| smc.round_trip(World::NonSecure, SmcFunction::InvokeTa))
    }

    /// Forwards a TA → CA I/O delegation (model loading) and returns its cost.
    pub fn delegate_io(&self) -> SimDuration {
        self.platform
            .with_smc(|smc| smc.round_trip(World::Secure, SmcFunction::DelegateIo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{Bandwidth, GIB};
    use tz_hal::PhysAddr;

    fn driver() -> TzDriver {
        let platform = Platform::rk3588();
        let params = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x1_0000_0000), 9 * GIB),
            platform.profile.cma_bandwidth(),
            platform.profile.page_alloc_ns,
        );
        let working = CmaRegion::new(
            PhysRange::new(PhysAddr::new(0x3_8000_0000), GIB),
            Bandwidth::from_bytes_per_sec(1.9e9),
            platform.profile.page_alloc_ns,
        );
        TzDriver::new(platform, params, working)
    }

    #[test]
    fn allocations_grow_adjacent_blocks() {
        let mut d = driver();
        let (a, _) = d.cma_alloc(CmaPool::Parameters, GIB).unwrap();
        let (b, _) = d.cma_alloc(CmaPool::Parameters, GIB).unwrap();
        assert!(a.block.is_followed_by(&b.block));
        assert_eq!(d.pool(CmaPool::Parameters).allocated_bytes(), 2 * GIB);
    }

    #[test]
    fn pressure_makes_allocation_slower() {
        let mut d = driver();
        let (_, _) = d.cma_alloc(CmaPool::Parameters, GIB).unwrap();
        let fast = d.pool(CmaPool::Parameters).estimate_alloc(GIB, 4).total();
        d.set_memory_pressure(8 * GIB);
        let slow = d.pool(CmaPool::Parameters).estimate_alloc(GIB, 4).total();
        assert!(slow > fast * 2);
    }

    #[test]
    fn misbehaving_driver_returns_non_adjacent_blocks() {
        let mut d = driver();
        let (a, _) = d.cma_alloc(CmaPool::Parameters, GIB).unwrap();
        d.set_misbehaviour(Misbehaviour::NonAdjacentBlock);
        let (b, _) = d.cma_alloc(CmaPool::Parameters, GIB).unwrap();
        assert!(!a.block.is_followed_by(&b.block));
    }

    #[test]
    fn smc_round_trips_are_counted() {
        let d = driver();
        let platform = d.platform.clone();
        let before = platform.with_smc(|s| s.total_calls());
        d.invoke_ta();
        d.delegate_io();
        assert_eq!(platform.with_smc(|s| s.total_calls()), before + 4);
    }

    #[test]
    fn release_returns_memory() {
        let mut d = driver();
        d.cma_alloc(CmaPool::Working, GIB / 2).unwrap();
        d.cma_release(CmaPool::Working, GIB / 2).unwrap();
        assert_eq!(d.pool(CmaPool::Working).allocated_bytes(), 0);
        assert!(d.cma_release(CmaPool::Working, GIB).is_err());
    }
}
