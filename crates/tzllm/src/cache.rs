//! Partial parameter caching (§4.1).
//!
//! After an inference completes, TZ-LLM does not necessarily return all
//! secure memory: it lazily releases parameters in *reverse* topological
//! order as REE memory pressure demands, so that the parameters used by the
//! earliest prefill operators stay resident.  The next inference can then
//! start computing immediately while the tail of the model is restored in
//! parallel — eliminating the initial pipeline bubble.
//!
//! Because release happens from the end of the blob and the blob is laid out
//! in topological order, the cached prefix is always a contiguous prefix of
//! the parameter region, which is exactly what the TZASC's contiguity
//! constraint needs (§4.2).

use sim_core::SimDuration;

use crate::restore::CriticalPaths;

/// Policy deciding how many parameter bytes remain cached between inferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachePolicy {
    /// Cache nothing (cold start every time).
    None,
    /// Cache a fixed fraction of the parameter blob (the Figure 14 sweep).
    Proportion(f64),
    /// Cache as much as fits under the given REE memory headroom in bytes
    /// (the adaptive policy: release only what the REE actually needs).
    MemoryHeadroom(u64),
}

/// The caching controller: tracks the cached prefix across inferences.
#[derive(Debug, Clone)]
pub struct CacheController {
    total_param_bytes: u64,
    cached_bytes: u64,
}

impl CacheController {
    /// Creates a controller for a model with `total_param_bytes` of parameters,
    /// starting cold.
    pub fn new(total_param_bytes: u64) -> Self {
        CacheController {
            total_param_bytes,
            cached_bytes: 0,
        }
    }

    /// Total parameter bytes of the model this controller tracks.
    pub fn total_bytes(&self) -> u64 {
        self.total_param_bytes
    }

    /// Overwrites the cached prefix (clamped to the model size).
    pub fn seed(&mut self, cached_bytes: u64) {
        self.cached_bytes = cached_bytes.min(self.total_param_bytes);
    }

    /// Bytes currently cached (a prefix of the blob).
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Fraction of the model currently cached.
    pub fn cached_fraction(&self) -> f64 {
        if self.total_param_bytes == 0 {
            return 0.0;
        }
        self.cached_bytes as f64 / self.total_param_bytes as f64
    }

    /// Called when an inference completes: all parameters are resident.
    pub fn on_inference_complete(&mut self) {
        self.cached_bytes = self.total_param_bytes;
    }

    /// Applies the caching policy after an inference, returning how many
    /// bytes are released back to the REE (in reverse topological order).
    pub fn apply_policy(&mut self, policy: CachePolicy) -> u64 {
        let target = match policy {
            CachePolicy::None => 0,
            CachePolicy::Proportion(p) => {
                (self.total_param_bytes as f64 * p.clamp(0.0, 1.0)).round() as u64
            }
            CachePolicy::MemoryHeadroom(headroom) => self.total_param_bytes.min(headroom),
        };
        let released = self.cached_bytes.saturating_sub(target);
        self.cached_bytes = self.cached_bytes.min(target);
        released
    }

    /// The REE asks for `bytes` of memory back (memory-pressure callback,
    /// §4.1: "The LLM TA provides an interface to the REE OS to revoke secure
    /// memory").  Releases from the end of the cached prefix and returns how
    /// much was actually released.
    pub fn revoke(&mut self, bytes: u64) -> u64 {
        let released = bytes.min(self.cached_bytes);
        self.cached_bytes -= released;
        released
    }

    /// Estimates the caching proportion beyond which additional caching stops
    /// improving TTFT: once the restoration work for the uncached tail fits
    /// under the computation time, restoration is fully hidden (§7.2.3).
    ///
    /// `paths` are the cold-start critical paths; restoration here means the
    /// non-computation share of the CPU and I/O paths.
    pub fn saturation_proportion(paths: &CriticalPaths) -> f64 {
        let restore_cpu = paths.cpu.saturating_sub(paths.compute_cpu_share());
        let restore = paths.io.max(restore_cpu);
        if restore.is_zero() {
            return 0.0;
        }
        let compute = paths.compute;
        if compute >= restore {
            return 0.0;
        }
        1.0 - compute.as_secs_f64() / restore.as_secs_f64()
    }
}

/// Internal helper to expose the CPU-compute share of the CPU path.
trait CpuShare {
    fn compute_cpu_share(&self) -> SimDuration;
}

impl CpuShare for CriticalPaths {
    fn compute_cpu_share(&self) -> SimDuration {
        // The CPU path is alloc + decrypt + cpu-compute; the compute path is
        // cpu-compute + npu-compute.  The cpu-compute share cannot exceed
        // either, so use the smaller as a conservative estimate.
        self.cpu.min(self.compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GIB;

    #[test]
    fn lifecycle_cold_to_cached_to_revoked() {
        let mut cache = CacheController::new(8 * GIB);
        assert_eq!(cache.cached_bytes(), 0);
        cache.on_inference_complete();
        assert_eq!(cache.cached_bytes(), 8 * GIB);
        let released = cache.apply_policy(CachePolicy::Proportion(0.25));
        assert_eq!(released, 6 * GIB);
        assert_eq!(cache.cached_bytes(), 2 * GIB);
        assert!((cache.cached_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn revoke_releases_at_most_whats_cached() {
        let mut cache = CacheController::new(4 * GIB);
        cache.on_inference_complete();
        assert_eq!(cache.revoke(GIB), GIB);
        assert_eq!(cache.revoke(10 * GIB), 3 * GIB);
        assert_eq!(cache.cached_bytes(), 0);
        assert_eq!(cache.revoke(1), 0);
    }

    #[test]
    fn headroom_policy_caps_at_model_size() {
        let mut cache = CacheController::new(2 * GIB);
        cache.on_inference_complete();
        cache.apply_policy(CachePolicy::MemoryHeadroom(10 * GIB));
        assert_eq!(cache.cached_bytes(), 2 * GIB);
        cache.apply_policy(CachePolicy::MemoryHeadroom(GIB / 2));
        assert_eq!(cache.cached_bytes(), GIB / 2);
        cache.apply_policy(CachePolicy::None);
        assert_eq!(cache.cached_bytes(), 0);
    }

    #[test]
    fn saturation_is_zero_when_compute_dominates() {
        let paths = CriticalPaths {
            io: SimDuration::from_secs(4),
            cpu: SimDuration::from_secs(3),
            compute: SimDuration::from_secs(14),
        };
        assert_eq!(CacheController::saturation_proportion(&paths), 0.0);
    }

    #[test]
    fn saturation_grows_when_restoration_dominates() {
        let paths = CriticalPaths {
            io: SimDuration::from_secs(4),
            cpu: SimDuration::from_secs(2),
            compute: SimDuration::from_secs(1),
        };
        let p = CacheController::saturation_proportion(&paths);
        assert!(p > 0.5 && p < 1.0, "p = {p}");
    }
}
