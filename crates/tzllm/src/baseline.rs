//! The evaluated systems: TZ-LLM and the three baselines of §7.
//!
//! * **REE-LLM-Memory** — unmodified llama.cpp in the REE with all parameters
//!   preloaded (theoretical best; no protection, memory-inefficient).
//! * **REE-LLM-Flash** — unmodified llama.cpp in the REE, loading parameters
//!   with pipelined restoration at inference start (buddy allocation, no
//!   decryption; practical but unprotected).
//! * **Strawman** — LLM inference in the TEE without TZ-LLM's optimisations:
//!   full cold start (framework init, sequential CMA allocation, load,
//!   decryption) and CPU-only computation.
//! * **TZ-LLM** — this paper's system (see [`crate::system`]).

use sim_core::SimDuration;
use tz_hal::PlatformProfile;

#[cfg(test)]
use llm::ModelSpec;
use llm::{ComputationGraph, CostModel};

use crate::pipeline::{simulate, PipelineConfig, Policy};
use crate::restore::{RestorePlan, RestoreRates};
use crate::system::{
    cma_occupancy, evaluate_tzllm, InferenceConfig, InferenceReport, TtftBreakdown,
};

/// The systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Parameters preloaded in REE memory.
    ReeLlmMemory,
    /// Parameters restored from flash in the REE (buddy allocation, no
    /// decryption).
    ReeLlmFlash,
    /// TEE inference without pipelining or NPU support.
    Strawman,
    /// The full TZ-LLM system.
    TzLlm,
}

impl SystemKind {
    /// All systems in the order the figures plot them.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::ReeLlmMemory,
            SystemKind::ReeLlmFlash,
            SystemKind::TzLlm,
            SystemKind::Strawman,
        ]
    }

    /// The label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::ReeLlmMemory => "REE-LLM-Memory",
            SystemKind::ReeLlmFlash => "REE-LLM-Flash",
            SystemKind::Strawman => "Strawman",
            SystemKind::TzLlm => "TZ-LLM",
        }
    }
}

/// Restoration rates for the REE-LLM-Flash baseline: buddy-system allocation
/// (no migration), no decryption.
fn ree_flash_rates(profile: &PlatformProfile) -> RestoreRates {
    RestoreRates {
        flash: profile.flash_bandwidth(),
        alloc_secs_per_byte: profile.page_alloc_ns as f64 * 1e-9 / tz_hal::PAGE_SIZE as f64,
        alloc_fixed: SimDuration::ZERO,
        // No decryption: model the step as effectively free.
        decrypt: sim_core::Bandwidth::from_bytes_per_sec(1e18),
    }
}

/// Evaluates any of the four systems on one request.
pub fn evaluate(
    system: SystemKind,
    profile: &PlatformProfile,
    config: &InferenceConfig,
) -> InferenceReport {
    let cost = CostModel::rk3588();
    match system {
        SystemKind::TzLlm => evaluate_tzllm(profile, config),

        SystemKind::ReeLlmMemory => {
            // Warm framework, parameters resident, NPU without world switches.
            let graph = ComputationGraph::prefill(&config.model, config.prompt_len);
            let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
            let rates = ree_flash_rates(profile);
            let plan = RestorePlan::build(&graph, |i| times[i], &rates, graph.total_param_bytes());
            let critical_paths = plan.critical_paths();
            let result = simulate(
                &plan,
                &PipelineConfig {
                    cpu_cores: profile.big_cores,
                    preempt_quantum: SimDuration::from_millis(2),
                    policy: Policy::PriorityPreemptive,
                    record_trace: false,
                },
            );
            let breakdown = TtftBreakdown {
                framework_init: SimDuration::ZERO,
                working_alloc: profile.kv_cache_alloc + profile.activation_alloc,
                pipeline: result.makespan,
                npu_overhead: SimDuration::ZERO,
                ..TtftBreakdown::default()
            };
            InferenceReport {
                ttft: breakdown.total(),
                decode_tokens_per_sec: cost.decode_tokens_per_sec(
                    &config.model,
                    config.prompt_len + config.output_len,
                    true,
                ),
                breakdown,
                restoration_cpu: SimDuration::ZERO,
                critical_paths,
                npu_busy: result.busy_npu_compute,
                restored_bytes: 0,
            }
        }

        SystemKind::ReeLlmFlash => {
            let graph = ComputationGraph::prefill(&config.model, config.prompt_len);
            let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
            let rates = ree_flash_rates(profile);
            let cached =
                (graph.total_param_bytes() as f64 * config.cached_fraction.clamp(0.0, 1.0)) as u64;
            let plan = RestorePlan::build(&graph, |i| times[i], &rates, cached);
            let critical_paths = plan.critical_paths();
            let result = simulate(
                &plan,
                &PipelineConfig {
                    cpu_cores: profile.big_cores,
                    preempt_quantum: SimDuration::from_millis(2),
                    policy: Policy::PriorityPreemptive,
                    record_trace: false,
                },
            );
            let breakdown = TtftBreakdown {
                framework_init: SimDuration::ZERO,
                working_alloc: profile.kv_cache_alloc + profile.activation_alloc,
                pipeline: result.makespan,
                npu_overhead: SimDuration::ZERO,
                ..TtftBreakdown::default()
            };
            InferenceReport {
                ttft: breakdown.total(),
                decode_tokens_per_sec: cost.decode_tokens_per_sec(
                    &config.model,
                    config.prompt_len + config.output_len,
                    true,
                ),
                breakdown,
                restoration_cpu: result.restoration_cpu_time(),
                critical_paths,
                npu_busy: result.busy_npu_compute,
                restored_bytes: plan.restored_bytes,
            }
        }

        SystemKind::Strawman => {
            // Cold start, sequential restoration, CPU-only computation.
            let graph = ComputationGraph::prefill(&config.model, config.prompt_len);
            let times: Vec<SimDuration> =
                graph.ops.iter().map(|o| cost.op_time_cpu_only(o)).collect();
            let occupancy = cma_occupancy(&config.model, config.memory_pressure);
            // The strawman allocates with a single migration thread.
            let rates = RestoreRates::from_profile(profile, occupancy, 1);
            let mut plan = RestorePlan::build(&graph, |i| times[i], &rates, 0);
            // No NPU in the TEE: every computation operator runs on the CPU.
            for op in &mut plan.ops {
                if op.kind == crate::restore::PipeOpKind::NpuCompute {
                    op.kind = crate::restore::PipeOpKind::CpuCompute;
                }
            }
            let critical_paths = plan.critical_paths();
            let result = simulate(
                &plan,
                &PipelineConfig {
                    cpu_cores: profile.big_cores,
                    preempt_quantum: SimDuration::from_millis(2),
                    policy: Policy::Sequential,
                    record_trace: false,
                },
            );
            let breakdown = TtftBreakdown {
                framework_init: profile.framework_init_total(),
                working_alloc: profile.kv_cache_alloc + profile.activation_alloc,
                pipeline: result.makespan,
                npu_overhead: SimDuration::ZERO,
                ..TtftBreakdown::default()
            };
            InferenceReport {
                ttft: breakdown.total(),
                decode_tokens_per_sec: cost.decode_tokens_per_sec(
                    &config.model,
                    config.prompt_len + config.output_len,
                    false,
                ),
                breakdown,
                restoration_cpu: result.restoration_cpu_time(),
                critical_paths,
                npu_busy: result.busy_npu_compute,
                restored_bytes: plan.restored_bytes,
            }
        }
    }
}

/// The Figure-1 style cold-start breakdown of the strawman workflow.
pub fn strawman_breakdown(
    profile: &PlatformProfile,
    config: &InferenceConfig,
) -> Vec<(String, SimDuration)> {
    let cost = CostModel::rk3588();
    let graph = ComputationGraph::prefill(&config.model, config.prompt_len);
    let total_bytes = graph.total_param_bytes();
    let occupancy = cma_occupancy(&config.model, config.memory_pressure);
    let rates = RestoreRates::from_profile(profile, occupancy, 1);

    let cpu_prefill: SimDuration = graph.ops.iter().map(|o| cost.op_time_cpu_only(o)).sum();
    vec![
        ("llama.cpp meta init".into(), profile.framework_meta_init),
        ("tokenizer init".into(), profile.tokenizer_init),
        ("kv cache allocation (CMA)".into(), profile.kv_cache_alloc),
        (
            "activation allocation (CMA)".into(),
            profile.activation_alloc,
        ),
        (
            "param allocation (CMA)".into(),
            rates.alloc_fixed * graph.ops.len() as u64
                + SimDuration::from_secs_f64(total_bytes as f64 * rates.alloc_secs_per_byte),
        ),
        ("param load".into(), rates.flash.time_for_bytes(total_bytes)),
        (
            "param decryption".into(),
            rates.decrypt.time_for_bytes(total_bytes),
        ),
        ("CPU prefill".into(), cpu_prefill),
    ]
}

/// Decode-speed label helper for Figure 11: which device the system decodes on.
pub fn decode_uses_npu(system: SystemKind) -> bool {
    !matches!(system, SystemKind::Strawman)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::stats::reduction;

    fn profile() -> PlatformProfile {
        PlatformProfile::rk3588()
    }

    #[test]
    fn ttft_ordering_matches_the_paper() {
        for model in ModelSpec::catalogue() {
            let cfg = InferenceConfig::paper_default(model.clone(), 128);
            let memory = evaluate(SystemKind::ReeLlmMemory, &profile(), &cfg);
            let flash = evaluate(SystemKind::ReeLlmFlash, &profile(), &cfg);
            let tz = evaluate(SystemKind::TzLlm, &profile(), &cfg);
            let straw = evaluate(SystemKind::Strawman, &profile(), &cfg);
            assert!(memory.ttft <= flash.ttft, "{}", model.name);
            assert!(flash.ttft <= tz.ttft, "{}", model.name);
            assert!(tz.ttft < straw.ttft, "{}", model.name);
        }
    }

    #[test]
    fn tzllm_reduces_ttft_by_at_least_three_quarters_vs_strawman() {
        // Paper: 76.1% - 90.9% across models and benchmarks.
        for model in ModelSpec::catalogue() {
            for prompt in [32usize, 128, 512] {
                let cfg = InferenceConfig::paper_default(model.clone(), prompt);
                let tz = evaluate(SystemKind::TzLlm, &profile(), &cfg);
                let straw = evaluate(SystemKind::Strawman, &profile(), &cfg);
                let red = reduction(straw.ttft.as_secs_f64(), tz.ttft.as_secs_f64());
                assert!(
                    red > 0.70 && red < 0.97,
                    "{} @{prompt}: reduction {red:.3} (tz {}, straw {})",
                    model.name,
                    tz.ttft,
                    straw.ttft
                );
            }
        }
    }

    #[test]
    fn tzllm_overhead_vs_ree_flash_is_moderate() {
        // Paper: 5.2% - 28.3% average overhead vs REE-LLM-Flash.
        for model in ModelSpec::catalogue() {
            let cfg = InferenceConfig::paper_default(model.clone(), 128);
            let tz = evaluate(SystemKind::TzLlm, &profile(), &cfg);
            let flash = evaluate(SystemKind::ReeLlmFlash, &profile(), &cfg);
            let overhead = tz.ttft.as_secs_f64() / flash.ttft.as_secs_f64() - 1.0;
            assert!(
                overhead > 0.0 && overhead < 0.7,
                "{}: overhead {overhead:.3}",
                model.name
            );
        }
    }

    #[test]
    fn decoding_speed_relations_match_figure_11() {
        for model in ModelSpec::catalogue() {
            let cfg = InferenceConfig::paper_default(model.clone(), 128);
            let ree = evaluate(SystemKind::ReeLlmMemory, &profile(), &cfg);
            let tz = evaluate(SystemKind::TzLlm, &profile(), &cfg);
            let straw = evaluate(SystemKind::Strawman, &profile(), &cfg);
            // TZ-LLM is slightly slower than the REE baseline...
            let slowdown = 1.0 - tz.decode_tokens_per_sec / ree.decode_tokens_per_sec;
            assert!(
                slowdown > 0.0 && slowdown < 0.08,
                "{}: slowdown {slowdown:.3}",
                model.name
            );
            // ...and faster than the CPU-only strawman.
            let gain = tz.decode_tokens_per_sec / straw.decode_tokens_per_sec - 1.0;
            assert!(gain > 0.0 && gain < 0.45, "{}: gain {gain:.3}", model.name);
        }
    }

    #[test]
    fn strawman_breakdown_matches_figure_1_shape() {
        let cfg = InferenceConfig::paper_default(ModelSpec::llama3_8b(), 512);
        let breakdown = strawman_breakdown(&profile(), &cfg);
        let get = |name: &str| {
            breakdown
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, d)| d.as_secs_f64())
                .unwrap()
        };
        // Figure 1 anchors (8-bit Llama-3-8B, 512-token prompt).
        assert!(
            (get("param load") - 4.05).abs() < 0.6,
            "{}",
            get("param load")
        );
        assert!(
            (get("decryption") - 0.89).abs() < 0.3,
            "{}",
            get("decryption")
        );
        assert!(get("param allocation") > 2.0 && get("param allocation") < 6.0);
        assert!(get("CPU prefill") > 130.0 && get("CPU prefill") < 210.0);
        assert!((get("tokenizer") - 1.8).abs() < 0.1);
        // The full strawman TTFT is dominated by the CPU prefill.
        let total: f64 = breakdown.iter().map(|(_, d)| d.as_secs_f64()).sum();
        assert!(total > 140.0 && total < 230.0, "total = {total}");
    }

    #[test]
    fn decode_device_flags() {
        assert!(decode_uses_npu(SystemKind::TzLlm));
        assert!(decode_uses_npu(SystemKind::ReeLlmMemory));
        assert!(!decode_uses_npu(SystemKind::Strawman));
    }
}
