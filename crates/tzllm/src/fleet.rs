//! Sharded parallel fleet simulation.
//!
//! The serving layer simulates *one* device; the ROADMAP's fleet-scale
//! experiments need millions of requests across millions of devices.
//! Devices share no state — each phone is its own TrustZone — so the fleet
//! is embarrassingly shardable: [`run_fleet`] partitions a fleet-wide
//! [`WorkloadSpec`] into per-device-shard sub-workloads
//! ([`WorkloadSpec::partition`]), runs one independent
//! [`Server`] + `sim_core` engine per shard on
//! [`std::thread::scope`] workers, and merges the per-shard results into one
//! [`FleetStats`].
//!
//! Three properties make the parallel run trustworthy:
//!
//! * **Splittable seeds** — shard `i` draws every stream from
//!   [`sim_core::shard_seed`]`(seed, i)`; shard 0 is the identity, so a
//!   1-shard fleet replays the unsharded serial trace bit-for-bit.
//! * **Thread-count independence** — worker threads claim shard indices
//!   from an atomic counter, but nothing a shard computes depends on which
//!   thread ran it or when; `--threads 1` and `--threads N` produce
//!   byte-identical merged stats (CI's determinism matrix gate diffs the
//!   [`FleetStats::digest`] of both on every PR).
//! * **Associative merging** — [`FleetStats`] is a map keyed by shard index
//!   (disjoint-key union is associative and permutation-invariant by
//!   construction); order-sensitive floating-point aggregates are *derived*
//!   from the map in shard-index order at read time, never accumulated in
//!   completion order.  Percentiles merge exactly: each shard keeps its raw
//!   sorted sample vectors and the fleet summary is computed over their
//!   multiset union.
//!
//! Device heterogeneity comes from [`DeviceMix`]: each shard's
//! [`PlatformProfile`] is a pure function of its index, so a fleet can span
//! flagship/midrange/entry SoC calibrations without threatening determinism.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use llm::ModelSpec;
use sim_core::{shard_seed, LogHistogram, PercentileSummary, WindowedMetrics};
use tz_crypto::Sha256;
use tz_hal::PlatformProfile;
use workloads::{DeviceMix, WorkloadSpec};

use crate::serving::{Server, ServingConfig, ServingReport};

/// How a fleet run is sharded and parallelised.
///
/// `shards` is part of the experiment definition: it fixes the workload
/// partition and the per-shard seed streams, so changing it changes the
/// simulated fleet.  `threads` is pure execution: any thread count yields
/// byte-identical merged stats for the same `(workload, seed, shards, mix)`.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of device shards the workload is partitioned into.
    pub shards: usize,
    /// Worker threads executing the shards (clamped to `1..=shards`).
    pub threads: usize,
    /// Which SoC calibration each shard runs.
    pub mix: DeviceMix,
}

impl FleetConfig {
    /// A homogeneous RK3588 fleet.
    pub fn homogeneous(shards: usize, threads: usize) -> Self {
        FleetConfig {
            shards,
            threads,
            mix: DeviceMix::homogeneous(PlatformProfile::rk3588()),
        }
    }

    /// The default heterogeneous fleet
    /// ([`DeviceMix::heterogeneous_default`]).
    pub fn heterogeneous(shards: usize, threads: usize) -> Self {
        FleetConfig {
            shards,
            threads,
            mix: DeviceMix::heterogeneous_default(),
        }
    }
}

/// The mergeable statistics of one device shard: every deterministic counter
/// the serving layer's [`FleetStats`](crate::serving::FleetStats) carries
/// (KV, batching, speculation — PRs 3–7), plus the raw sorted latency
/// samples exact percentile merging needs.  Derived ratios and means are
/// deliberately absent: they are recomputed from these exact quantities at
/// fleet level, because merged ratios of ratios are neither associative nor
/// meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index within the fleet.
    pub shard: u32,
    /// SoC name of the shard's [`PlatformProfile`] calibration.
    pub soc: String,
    /// Completed requests.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Completion time of the shard's last request, nanoseconds.
    pub horizon_ns: u64,
    /// Dispatches that found a completely cold cache.
    pub cold_starts: u64,
    /// Parameter bytes restored ahead of dispatch.
    pub restore_ahead_bytes: u64,
    /// Restoration-plan cache hits.
    pub plan_cache_hits: u64,
    /// Restoration-plan cache misses.
    pub plan_cache_misses: u64,
    /// Batched NPU steps executed (0 under the slot dispatcher).
    pub batch_steps: u64,
    /// Starvation guard maximum across the shard's steps.
    pub batch_max_steps_behind: u64,
    /// Batched steps that ran a speculative draft + verify pass.
    pub spec_steps: u64,
    /// Draft tokens proposed.
    pub spec_proposed_tokens: u64,
    /// Draft tokens accepted by the verify pass.
    pub spec_accepted_tokens: u64,
    /// Draft tokens rejected and rewound.
    pub spec_rejected_tokens: u64,
    /// Prompt tokens served from retained KV state.
    pub kv_reused_tokens: u64,
    /// Plain (f16) KV bytes sealed and spilled.
    pub kv_spilled_bytes: u64,
    /// Compressed bytes those seals actually wrote.
    pub kv_spilled_compressed_bytes: u64,
    /// Sealed bytes unsealed at dispatch time.
    pub kv_unsealed_bytes: u64,
    /// Sealed bytes unsealed ahead of dispatch.
    pub kv_restore_ahead_bytes: u64,
    /// f16 bytes reconstructed by dequantization.
    pub kv_dequant_bytes: u64,
    /// Retained KV bytes dropped.
    pub kv_dropped_bytes: u64,
    /// Prompt tokens served from other sessions' shared pages.
    pub kv_shared_tokens: u64,
    /// Peak secure bytes saved by content-addressed dedup.
    pub kv_deduped_bytes: u64,
    /// End-to-end TTFT samples, milliseconds, sorted ascending.
    pub ttft_ms: Vec<f64>,
    /// Service TTFT samples (dispatch → first token), ms, sorted ascending.
    pub service_ttft_ms: Vec<f64>,
    /// Queue-wait samples, milliseconds, sorted ascending.
    pub queue_wait_ms: Vec<f64>,
    /// Follow-up-turn TTFT samples (requests with a shared prefix), ms,
    /// sorted ascending.
    pub followup_ttft_ms: Vec<f64>,
    /// The shard's windowed metric series (disabled/empty unless the shard's
    /// [`ServingConfig`] enabled metrics).  Counters, gauges and log-bucketed
    /// histograms all merge bucket-wise with pure integer arithmetic, so the
    /// fleet-level fold is exactly associative and permutation-invariant —
    /// this is what lets `fleet_scale` report time-resolved percentiles
    /// without shipping raw samples.
    pub metrics: WindowedMetrics,
}

impl ShardStats {
    /// Reduces one shard's [`ServingReport`] to its mergeable statistics.
    /// The records themselves are dropped by the caller right after, which
    /// is what keeps a million-request fleet's memory bounded.
    pub fn from_report(shard: u32, soc: &str, report: &ServingReport) -> Self {
        let sorted = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
            v
        };
        let fleet = &report.fleet;
        ShardStats {
            shard,
            soc: soc.to_string(),
            completed: report.records.len() as u64,
            rejected: report.rejected.len() as u64,
            horizon_ns: fleet.horizon.as_nanos(),
            cold_starts: fleet.cold_starts as u64,
            restore_ahead_bytes: fleet.restore_ahead_bytes,
            plan_cache_hits: fleet.plan_cache_hits,
            plan_cache_misses: fleet.plan_cache_misses,
            batch_steps: fleet.batch_steps,
            batch_max_steps_behind: fleet.batch_max_steps_behind,
            spec_steps: fleet.spec_steps,
            spec_proposed_tokens: fleet.spec_proposed_tokens,
            spec_accepted_tokens: fleet.spec_accepted_tokens,
            spec_rejected_tokens: fleet.spec_rejected_tokens,
            kv_reused_tokens: fleet.kv_reused_tokens,
            kv_spilled_bytes: fleet.kv_spilled_bytes,
            kv_spilled_compressed_bytes: fleet.kv_spilled_compressed_bytes,
            kv_unsealed_bytes: fleet.kv_unsealed_bytes,
            kv_restore_ahead_bytes: fleet.kv_restore_ahead_bytes,
            kv_dequant_bytes: fleet.kv_dequant_bytes,
            kv_dropped_bytes: fleet.kv_dropped_bytes,
            kv_shared_tokens: fleet.kv_shared_tokens,
            kv_deduped_bytes: fleet.kv_deduped_bytes,
            ttft_ms: sorted(
                report
                    .records
                    .iter()
                    .map(|r| r.ttft_e2e().as_millis_f64())
                    .collect(),
            ),
            service_ttft_ms: sorted(
                report
                    .records
                    .iter()
                    .map(|r| r.service_ttft().as_millis_f64())
                    .collect(),
            ),
            queue_wait_ms: sorted(
                report
                    .records
                    .iter()
                    .map(|r| r.queue_wait().as_millis_f64())
                    .collect(),
            ),
            followup_ttft_ms: sorted(
                report
                    .records
                    .iter()
                    .filter(|r| r.request.shared_prefix_len > 0)
                    .map(|r| r.ttft_e2e().as_millis_f64())
                    .collect(),
            ),
            metrics: report.metrics.clone().unwrap_or_else(WindowedMetrics::off),
        }
    }

    /// Feeds this shard's canonical byte serialization into `hasher`:
    /// integers little-endian, floats as IEEE-754 bit patterns — no
    /// formatting, no locale, no platform dependence.
    fn hash_into(&self, hasher: &mut Sha256) {
        hasher.update(&self.shard.to_le_bytes());
        hasher.update(&(self.soc.len() as u64).to_le_bytes());
        hasher.update(self.soc.as_bytes());
        for counter in [
            self.completed,
            self.rejected,
            self.horizon_ns,
            self.cold_starts,
            self.restore_ahead_bytes,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.batch_steps,
            self.batch_max_steps_behind,
            self.spec_steps,
            self.spec_proposed_tokens,
            self.spec_accepted_tokens,
            self.spec_rejected_tokens,
            self.kv_reused_tokens,
            self.kv_spilled_bytes,
            self.kv_spilled_compressed_bytes,
            self.kv_unsealed_bytes,
            self.kv_restore_ahead_bytes,
            self.kv_dequant_bytes,
            self.kv_dropped_bytes,
            self.kv_shared_tokens,
            self.kv_deduped_bytes,
        ] {
            hasher.update(&counter.to_le_bytes());
        }
        for samples in [
            &self.ttft_ms,
            &self.service_ttft_ms,
            &self.queue_wait_ms,
            &self.followup_ttft_ms,
        ] {
            hasher.update(&(samples.len() as u64).to_le_bytes());
            for v in samples.iter() {
                hasher.update(&v.to_bits().to_le_bytes());
            }
        }
        let metric_bytes = self.metrics.canonical_bytes();
        hasher.update(&(metric_bytes.len() as u64).to_le_bytes());
        hasher.update(&metric_bytes);
    }
}

/// Deterministically merged fleet statistics: a map from shard index to
/// [`ShardStats`].  The map *is* the mergeable structure — union of
/// disjoint-key maps is associative and commutative, so any merge tree over
/// any shard arrival order yields the same value (the property tests in
/// `tests/fleet.rs` exercise exactly this).  Fleet-level aggregates are
/// accessor methods that fold the map in shard-index order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    shards: BTreeMap<u32, ShardStats>,
}

impl FleetStats {
    /// An empty fleet (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one shard's stats.
    ///
    /// # Panics
    /// Panics if the shard index is already present — a duplicate means two
    /// workers ran the same shard, which would double-count silently.
    pub fn insert(&mut self, stats: ShardStats) {
        let shard = stats.shard;
        assert!(
            self.shards.insert(shard, stats).is_none(),
            "shard {shard} merged twice"
        );
    }

    /// Merges two disjoint fleets.  Associative and permutation-invariant:
    /// `a.merge(b.merge(c)) == a.merge(b).merge(c)` and any argument order
    /// yields the same map.
    ///
    /// # Panics
    /// Panics if the fleets share a shard index.
    #[must_use]
    pub fn merge(mut self, other: FleetStats) -> FleetStats {
        for (_, stats) in other.shards {
            self.insert(stats);
        }
        self
    }

    /// Builds a fleet from shard stats in any order.
    pub fn from_shards(shards: impl IntoIterator<Item = ShardStats>) -> Self {
        let mut fleet = Self::new();
        for s in shards {
            fleet.insert(s);
        }
        fleet
    }

    /// The merged shards in shard-index order.
    pub fn shards(&self) -> impl Iterator<Item = &ShardStats> {
        self.shards.values()
    }

    /// Number of merged shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Completed requests across the fleet.
    pub fn completed(&self) -> u64 {
        self.shards.values().map(|s| s.completed).sum()
    }

    /// Rejected requests across the fleet.
    pub fn rejected(&self) -> u64 {
        self.shards.values().map(|s| s.rejected).sum()
    }

    /// The latest shard horizon, nanoseconds — the fleet experiment's
    /// simulated makespan (devices run in parallel in the real world).
    pub fn horizon_ns(&self) -> u64 {
        self.shards
            .values()
            .map(|s| s.horizon_ns)
            .max()
            .unwrap_or(0)
    }

    /// Simulated fleet throughput in requests/second: the sum of each
    /// device shard's own completion rate (devices serve independently and
    /// concurrently).  Folded in shard-index order, so the floating-point
    /// sum is reproducible.
    pub fn throughput_rps(&self) -> f64 {
        self.shards
            .values()
            .map(|s| {
                let secs = s.horizon_ns as f64 / 1e9;
                if secs > 0.0 {
                    s.completed as f64 / secs
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Sums one counter across shards in shard-index order.
    pub fn counter(&self, f: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards.values().map(f).sum()
    }

    /// Exact fleet-wide end-to-end TTFT percentiles (multiset union of the
    /// shards' samples).
    pub fn ttft_ms(&self) -> Option<PercentileSummary> {
        self.merged_summary(|s| &s.ttft_ms)
    }

    /// Exact fleet-wide service-TTFT percentiles.
    pub fn service_ttft_ms(&self) -> Option<PercentileSummary> {
        self.merged_summary(|s| &s.service_ttft_ms)
    }

    /// Exact fleet-wide queue-wait percentiles.
    pub fn queue_wait_ms(&self) -> Option<PercentileSummary> {
        self.merged_summary(|s| &s.queue_wait_ms)
    }

    /// Exact fleet-wide follow-up-turn TTFT percentiles.
    pub fn followup_ttft_ms(&self) -> Option<PercentileSummary> {
        self.merged_summary(|s| &s.followup_ttft_ms)
    }

    /// Exact per-SoC end-to-end TTFT percentiles, keyed by calibration name
    /// — how the heterogeneous mix splits the fleet distribution.
    pub fn ttft_ms_by_soc(&self) -> BTreeMap<String, PercentileSummary> {
        let mut by_soc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for s in self.shards.values() {
            by_soc
                .entry(s.soc.clone())
                .or_default()
                .extend_from_slice(&s.ttft_ms);
        }
        by_soc
            .into_iter()
            .filter_map(|(soc, v)| PercentileSummary::from_values(&v).map(|p| (soc, p)))
            .collect()
    }

    /// The fleet's windowed metric series: every shard's [`WindowedMetrics`]
    /// folded bucket-wise in shard-index order.  The fold is pure integer
    /// arithmetic, so any fold order would produce the same value — index
    /// order is used for definiteness, not correctness.  Disabled (and
    /// therefore empty) shard registries merge as identities, so a fleet
    /// with metrics off returns a disabled registry.
    pub fn merged_metrics(&self) -> WindowedMetrics {
        let mut merged = WindowedMetrics::off();
        for s in self.shards.values() {
            merged.merge_from(&s.metrics);
        }
        merged
    }

    /// The fleet-wide run-total histogram for one `(metric, class)` series:
    /// all shards' per-window histograms merged into one.  `None` when no
    /// shard recorded the series.
    pub fn merged_histogram(
        &self,
        name: &'static str,
        class: &'static str,
    ) -> Option<LogHistogram> {
        let mut merged: Option<LogHistogram> = None;
        for s in self.shards.values() {
            if let Some(h) = s.metrics.merged_histogram(name, class) {
                merged.get_or_insert_with(LogHistogram::new).merge_from(&h);
            }
        }
        merged
    }

    fn merged_summary(&self, f: impl Fn(&ShardStats) -> &Vec<f64>) -> Option<PercentileSummary> {
        let merged: Vec<f64> = self
            .shards
            .values()
            .flat_map(|s| f(s).iter().copied())
            .collect();
        PercentileSummary::from_values(&merged)
    }

    /// The canonical stats digest: hex SHA-256 over every shard's exact
    /// byte serialization in shard-index order.  Byte-stable across
    /// machines, thread counts and merge orders — CI's determinism matrix
    /// gate `diff`s this string across `--threads 1/2/8` runs.
    pub fn digest(&self) -> String {
        let mut hasher = Sha256::new();
        hasher.update(&(self.shards.len() as u64).to_le_bytes());
        for stats in self.shards.values() {
            stats.hash_into(&mut hasher);
        }
        let digest = hasher.finalize();
        let mut hex = String::with_capacity(digest.len() * 2);
        for byte in digest {
            use std::fmt::Write as _;
            let _ = write!(hex, "{byte:02x}");
        }
        hex
    }
}

/// Runs the fleet: partitions `workload` into `config.shards` sub-workloads,
/// executes one independent serving simulation per shard on up to
/// `config.threads` scoped worker threads, and merges the results.
///
/// `make_config` builds each shard's [`ServingConfig`] from the shard's
/// [`DeviceMix`]-assigned profile; it must be a pure function of the profile
/// (and must install that profile), or determinism across thread counts is
/// forfeit.  Shard `i` runs with seed [`shard_seed`]`(seed, i)`, so a
/// 1-shard fleet reproduces `Server::run_workload(config, catalogue,
/// workload, seed)` exactly.
pub fn run_fleet<F>(
    workload: &WorkloadSpec,
    catalogue: &[ModelSpec],
    seed: u64,
    config: &FleetConfig,
    make_config: F,
) -> FleetStats
where
    F: Fn(&PlatformProfile) -> ServingConfig + Sync,
{
    let sub_workloads = workload.partition(config.shards);
    let next_shard = AtomicUsize::new(0);
    let results: Mutex<Vec<ShardStats>> = Mutex::new(Vec::with_capacity(config.shards));
    let workers = config.threads.clamp(1, config.shards);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                if shard >= config.shards {
                    break;
                }
                let profile = config.mix.profile_for_shard(shard as u64);
                let serving = make_config(profile);
                let report = Server::run_workload(
                    serving,
                    catalogue.to_vec(),
                    &sub_workloads[shard],
                    shard_seed(seed, shard as u64),
                );
                // Reduce to mergeable stats immediately: the per-request
                // records die here, keeping fleet memory O(samples), not
                // O(requests × record).
                let stats = ShardStats::from_report(shard as u32, profile.soc, &report);
                results
                    .lock()
                    .expect("a sibling worker panicked")
                    .push(stats);
            });
        }
    });
    FleetStats::from_shards(results.into_inner().expect("workers joined"))
}
