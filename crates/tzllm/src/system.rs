//! End-to-end TZ-LLM inference evaluation.
//!
//! Assembles the pieces — checkpoint restore, secure-memory scaling costs,
//! pipelined restoration, NPU co-driver overhead, decoding — into the
//! per-request metrics the paper reports: time-to-first-token (TTFT) and
//! decoding speed, with a breakdown of where the time went.

use std::collections::HashMap;

use sim_core::SimDuration;
use tz_hal::PlatformProfile;

use llm::{ComputationGraph, CostModel, ModelSpec};

use crate::cache::CacheController;
use crate::pipeline::{simulate, PipelineConfig, PipelineResult, Policy};
use crate::restore::{CriticalPaths, RestorePlan, RestoreRates};

/// Configuration of one evaluated inference request.
#[derive(Debug, Clone)]
pub struct InferenceConfig {
    /// The model.
    pub model: ModelSpec,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate (for decode-speed reporting).
    pub output_len: usize,
    /// REE memory pressure in bytes (drives CMA migration cost).
    pub memory_pressure: u64,
    /// Fraction of the parameters already cached in secure memory (§7.2.3).
    pub cached_fraction: f64,
    /// Pipeline scheduling policy (for the Figure 13 ablations).
    pub policy: Policy,
    /// Whether the framework-state checkpoint exists (TZ-LLM) or a full cold
    /// initialisation is required.
    pub use_checkpoint: bool,
}

impl InferenceConfig {
    /// A default configuration matching the paper's worst-case setup for the
    /// given model: cold cache, per-model memory pressure (13/11/10/6 GB for
    /// the four catalogue models), preemptive scheduling, checkpoint present.
    pub fn paper_default(model: ModelSpec, prompt_len: usize) -> Self {
        let pressure_gib: u64 = match model.name.as_str() {
            "tinyllama-1.1b" => 13,
            "qwen2.5-3b" => 11,
            "phi-3-3.8b" => 10,
            "llama-3-8b" => 6,
            _ => 8,
        };
        InferenceConfig {
            model,
            prompt_len,
            output_len: 64,
            memory_pressure: pressure_gib * sim_core::GIB,
            cached_fraction: 0.0,
            policy: Policy::PriorityPreemptive,
            use_checkpoint: true,
        }
    }

    /// The paper-default configuration, but with the cached fraction taken
    /// from the *live* state of a [`CacheController`] instead of a hand-set
    /// knob — this is how the serving layer builds per-dispatch
    /// configurations (§4.1 partial parameter caching across requests).
    pub fn from_cache(model: ModelSpec, prompt_len: usize, cache: &CacheController) -> Self {
        let mut config = Self::paper_default(model, prompt_len);
        config.cached_fraction = cache.cached_fraction();
        config
    }
}

/// Where the TTFT of one request went.
#[derive(Debug, Clone, Copy, Default)]
pub struct TtftBreakdown {
    /// Framework initialisation (cold init or checkpoint restore).
    pub framework_init: SimDuration,
    /// KV-cache and activation allocation in the working region.
    pub working_alloc: SimDuration,
    /// The restoration + prefill pipeline makespan.
    pub pipeline: SimDuration,
    /// NPU world-switch overhead attributable to the prefill.
    pub npu_overhead: SimDuration,
    /// KV-prefix unsealing time *not* hidden behind the pipeline: sealed KV
    /// pages decrypt on the CPU while the (shorter) prefill computes on the
    /// NPU, so only the excess beyond the NPU-busy window surfaces in TTFT.
    pub kv_restore: SimDuration,
}

impl TtftBreakdown {
    /// The total TTFT.
    pub fn total(&self) -> SimDuration {
        self.framework_init
            + self.working_alloc
            + self.pipeline
            + self.npu_overhead
            + self.kv_restore
    }
}

/// The outcome of evaluating one inference request on one system.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Time to first token.
    pub ttft: SimDuration,
    /// Decoding speed in tokens per second.
    pub decode_tokens_per_sec: f64,
    /// TTFT breakdown.
    pub breakdown: TtftBreakdown,
    /// CPU time spent on restoration (allocation migration + decryption),
    /// which is what interferes with concurrent REE applications (Figure 16).
    pub restoration_cpu: SimDuration,
    /// The three candidate critical paths of the pipeline (Figure 12).
    pub critical_paths: CriticalPaths,
    /// NPU busy time inside the prefill pipeline — the slice of the TTFT
    /// during which the NPU is genuinely occupied (the serving dispatcher
    /// pauses concurrent decodes only for this window plus the world-switch
    /// overhead).
    pub npu_busy: SimDuration,
    /// Parameter bytes this request had to restore from flash (zero for a
    /// fully cached dispatch); the serving dispatcher uses this to decide
    /// whether the request occupies the flash/decrypt lanes.
    pub restored_bytes: u64,
}

/// Memoises the expensive middle of the crate-internal `evaluate_service`
/// step: building the
/// prefill graph, extending it into a [`RestorePlan`] (hundreds of
/// operators) and simulating the pipeline schedule.
///
/// The result is fully determined by `(model, prompt_len, cached_bytes,
/// output_len, memory pressure, policy)`, all of which recur heavily in
/// serving sweeps — prompt lengths are drawn from a few hundred distinct
/// benchmark values and cache states cluster on the retention policy's
/// targets — so a dispatch is usually a lookup instead of a fresh
/// simulation.  Eviction is wholesale (`clear` on overflow) to stay
/// deterministic: no iteration-order-dependent victim selection.
#[derive(Debug, Default)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, PlanEntry>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Interned model identity (the serving layer's `ModelId`).
    model: u32,
    prompt_len: u32,
    /// Prompt tokens served from a reused KV prefix (the prefill graph only
    /// covers the remaining `prompt_len - reused_prefix` tokens).
    reused_prefix: u32,
    output_len: u32,
    cached_bytes: u64,
    memory_pressure: u64,
    policy: Policy,
}

/// The memoised products of one graph-build + plan-build + pipeline run.
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    pipeline: SimDuration,
    npu_busy: SimDuration,
    restoration_cpu: SimDuration,
    critical_paths: CriticalPaths,
    restored_bytes: u64,
    decode_tokens_per_sec: f64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            ..Default::default()
        }
    }

    /// Lookups that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build and simulate a fresh plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn get(&mut self, key: &PlanKey) -> Option<PlanEntry> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        match self.map.get(key) {
            Some(entry) => {
                self.hits += 1;
                Some(*entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: PlanKey, entry: PlanEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(key, entry);
    }
}

/// Dispatch-time inputs of one service evaluation, borrowed from the serving
/// layer's interned model table (no per-dispatch `ModelSpec` clone).
pub(crate) struct ServiceParams<'a> {
    pub model: &'a ModelSpec,
    /// Interned model identity for plan-cache keying.
    pub model_key: u32,
    /// `ComputationGraph::total_param_bytes()` for this model, precomputed
    /// once per model (prompt-length independent) so cache hits never build
    /// a graph just to turn the cached fraction into a byte count.
    pub total_param_bytes: u64,
    pub prompt_len: usize,
    /// Leading prompt tokens whose KV state is reused from the secure KV
    /// pool (multi-turn prefix reuse): the prefill graph only processes the
    /// remaining suffix, while decoding still attends over the full context.
    /// Always `< prompt_len` — at least one token is prefilled.
    pub reused_prefix: usize,
    pub output_len: usize,
    pub memory_pressure: u64,
    pub cached_fraction: f64,
    pub policy: Policy,
}

/// The CMA occupancy implied by a given memory pressure: the fraction of the
/// to-be-allocated parameter region that must be migrated.
pub fn cma_occupancy(model: &ModelSpec, memory_pressure: u64) -> f64 {
    if model.total_q8_bytes() == 0 {
        return 0.0;
    }
    (memory_pressure as f64 / model.total_q8_bytes() as f64).clamp(0.0, 1.0)
}

/// Evaluates the service time of one request with an explicit framework
/// initialisation cost.
///
/// This is the single evaluation core shared by [`evaluate_tzllm`] and the
/// serving layer ([`crate::serving`]).  `params.cached_fraction` is the one
/// source of truth for the cache state — the serving layer sets it from the
/// live [`CacheController`] at dispatch time.  `framework_init` is
/// dispatch-time state (a warm TA restores cheaply), so the caller decides
/// it, as is `kv_unseal` (the time to verify + decrypt the sealed part of a
/// reused KV prefix; it overlaps the prefill's NPU window and only its
/// excess surfaces in the TTFT).  `plan_cache` (if any) memoises the
/// graph/plan/pipeline work, which is deterministic in the remaining inputs;
/// `framework_init` and `kv_unseal` are added on top of the cached pipeline
/// numbers so warm and cold dispatches share entries.
pub(crate) fn evaluate_service(
    profile: &PlatformProfile,
    params: &ServiceParams<'_>,
    framework_init: SimDuration,
    kv_unseal: SimDuration,
    plan_cache: Option<&mut PlanCache>,
) -> InferenceReport {
    let model = params.model;
    debug_assert!(params.reused_prefix < params.prompt_len.max(1));
    let new_tokens = params
        .prompt_len
        .saturating_sub(params.reused_prefix)
        .max(1);
    let cached = (params.total_param_bytes as f64 * params.cached_fraction.clamp(0.0, 1.0)) as u64;
    let key = PlanKey {
        model: params.model_key,
        prompt_len: params.prompt_len as u32,
        reused_prefix: params.reused_prefix as u32,
        output_len: params.output_len as u32,
        cached_bytes: cached,
        memory_pressure: params.memory_pressure,
        policy: params.policy,
    };

    let mut plan_cache = plan_cache;
    let entry = match plan_cache.as_mut().and_then(|c| c.get(&key)) {
        Some(entry) => entry,
        None => {
            let cost = CostModel::rk3588();
            // Only the suffix's tokens are processed, but their attention
            // still spans the reused context — the suffix prefill is not
            // priced as if the retained prefix were free compute.
            let graph = ComputationGraph::prefill_suffix(model, new_tokens, params.prompt_len);
            let occupancy = cma_occupancy(model, params.memory_pressure);
            let rates =
                RestoreRates::from_profile(profile, occupancy, profile.cma_migration_threads);
            let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
            let plan = RestorePlan::build(&graph, |i| times[i], &rates, cached);
            let critical_paths = plan.critical_paths();

            let pipe_cfg = PipelineConfig {
                cpu_cores: profile.big_cores,
                preempt_quantum: SimDuration::from_millis(2),
                policy: params.policy,
                record_trace: false,
            };
            let result: PipelineResult = simulate(&plan, &pipe_cfg);

            // Decoding: NPU-accelerated, paying one handoff per layer per
            // token.
            let per_handoff = profile.codriver_switch_cost() * 2;
            let decode_base =
                cost.decode_token_time(model, params.prompt_len + params.output_len, true);
            let decode_token = decode_base + per_handoff * model.layers as u64;
            let entry = PlanEntry {
                pipeline: result.makespan,
                npu_busy: result.busy_npu_compute,
                restoration_cpu: result.restoration_cpu_time(),
                critical_paths,
                restored_bytes: plan.restored_bytes,
                decode_tokens_per_sec: 1.0 / decode_token.as_secs_f64(),
            };
            if let Some(c) = plan_cache.as_mut() {
                c.insert(key, entry);
            }
            entry
        }
    };

    // One fused secure NPU job per layer during prefill: each pays the
    // co-driver switch in both directions plus the completion SMC.
    let per_handoff = profile.codriver_switch_cost() * 2;
    let npu_overhead = per_handoff * model.layers as u64;

    let breakdown = TtftBreakdown {
        framework_init,
        working_alloc: profile.kv_cache_alloc + profile.activation_alloc,
        pipeline: entry.pipeline,
        npu_overhead,
        // Unsealing streams on the CPU decrypt threads while the prefill
        // computes on the NPU; only the part the NPU window cannot hide is
        // serial TTFT.
        kv_restore: kv_unseal.saturating_sub(entry.npu_busy),
    };

    InferenceReport {
        ttft: breakdown.total(),
        decode_tokens_per_sec: entry.decode_tokens_per_sec,
        breakdown,
        restoration_cpu: entry.restoration_cpu,
        critical_paths: entry.critical_paths,
        npu_busy: entry.npu_busy,
        restored_bytes: entry.restored_bytes,
    }
}

/// Evaluates TZ-LLM on one inference request.
///
/// Since the serving refactor this is a thin special case of the serving
/// path: a [`crate::serving::Server`] with a one-model catalogue receives a
/// single request at time zero, with its cache seeded to
/// `config.cached_fraction` — so every figure binary exercises exactly the
/// code the multi-session server runs.
pub fn evaluate_tzllm(profile: &PlatformProfile, config: &InferenceConfig) -> InferenceReport {
    crate::serving::single_request(profile, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> PlatformProfile {
        PlatformProfile::rk3588()
    }

    #[test]
    fn ttft_decreases_with_caching() {
        let mut cfg = InferenceConfig::paper_default(ModelSpec::qwen2_5_3b(), 128);
        let cold = evaluate_tzllm(&profile(), &cfg);
        cfg.cached_fraction = 1.0;
        let warm = evaluate_tzllm(&profile(), &cfg);
        assert!(warm.ttft < cold.ttft);
        assert_eq!(warm.restoration_cpu, SimDuration::ZERO);
    }

    /// The request-sequence extension of `ttft_decreases_with_caching`: under
    /// adaptive retention, consecutive warm requests strictly improve TTFT
    /// until the cache saturates, then TTFT stays flat.
    #[test]
    fn ttft_improves_across_warm_request_sequence_until_saturation() {
        use crate::serving::{RetentionPolicy, Server, ServingConfig};

        let mut config = ServingConfig::paper_default(profile());
        config.retention = RetentionPolicy::Adaptive {
            step_fraction: 0.25,
        };
        // No REE pressure headroom cap: the cache can grow to the whole model.
        config.memory_pressure = 8 * sim_core::GIB;
        let mut server = Server::new(config, vec![ModelSpec::qwen2_5_3b()]);
        // Identical requests, spaced far enough apart that nothing queues.
        for i in 0..8u64 {
            server.submit_at(
                sim_core::SimTime::from_secs(i * 300),
                i,
                "qwen2.5-3b",
                128,
                8,
            );
        }
        let report = server.run();
        assert_eq!(report.records.len(), 8);

        let fractions: Vec<f64> = report.records.iter().map(|r| r.cached_fraction).collect();
        let ttfts: Vec<SimDuration> = report.records.iter().map(|r| r.report.ttft).collect();
        // The cache warms in 25 % steps: 0, 0.25, 0.5, 0.75, 1.0, 1.0, ...
        assert_eq!(fractions[0], 0.0);
        for w in fractions.windows(2) {
            assert!(w[1] >= w[0], "cache must warm monotonically: {fractions:?}");
        }
        assert!(
            fractions[4] >= 1.0 - 1e-9,
            "cache fully warm by request 4: {fractions:?}"
        );

        // TTFT saturates when the remaining restoration hides entirely behind
        // computation (§7.2.3) — possibly *before* the whole blob is cached.
        // Until that plateau every warm request is strictly faster; after it,
        // TTFT stays exactly flat.
        let plateau = (1..ttfts.len())
            .find(|&i| ttfts[i] >= ttfts[i - 1])
            .expect("TTFT saturates within the sequence")
            - 1;
        assert!(
            plateau >= 2,
            "expected several strictly-improving warm requests: {ttfts:?}"
        );
        for i in 1..=plateau {
            assert!(
                ttfts[i] < ttfts[i - 1],
                "warm request {i} must strictly improve TTFT: {ttfts:?}"
            );
        }
        for i in (plateau + 1)..ttfts.len() {
            assert_eq!(
                ttfts[i], ttfts[plateau],
                "past saturation TTFT is flat: {ttfts:?}"
            );
        }
        // The plateau TTFT matches the hand-set fully-cached knob: caching
        // beyond the saturation proportion buys nothing more.
        let mut knob = InferenceConfig::paper_default(ModelSpec::qwen2_5_3b(), 128);
        knob.output_len = 8;
        knob.cached_fraction = 1.0;
        let warm = evaluate_tzllm(&profile(), &knob);
        assert_eq!(ttfts[plateau], warm.ttft);
    }

    #[test]
    fn checkpoint_restore_saves_seconds() {
        let mut cfg = InferenceConfig::paper_default(ModelSpec::llama3_8b(), 128);
        let with = evaluate_tzllm(&profile(), &cfg);
        cfg.use_checkpoint = false;
        let without = evaluate_tzllm(&profile(), &cfg);
        let saved = without.ttft.as_secs_f64() - with.ttft.as_secs_f64();
        assert!(saved > 1.5 && saved < 3.0, "saved = {saved}");
    }

    #[test]
    fn preemptive_policy_is_at_least_as_good() {
        let mut cfg = InferenceConfig::paper_default(ModelSpec::llama3_8b(), 128);
        cfg.policy = Policy::Sequential;
        let seq = evaluate_tzllm(&profile(), &cfg);
        cfg.policy = Policy::Priority;
        let pri = evaluate_tzllm(&profile(), &cfg);
        cfg.policy = Policy::PriorityPreemptive;
        let pre = evaluate_tzllm(&profile(), &cfg);
        assert!(pri.ttft < seq.ttft);
        assert!(pre.ttft <= pri.ttft);
    }

    #[test]
    fn decode_speed_increases_for_smaller_models() {
        let tiny = evaluate_tzllm(
            &profile(),
            &InferenceConfig::paper_default(ModelSpec::tinyllama_1_1b(), 128),
        );
        let llama = evaluate_tzllm(
            &profile(),
            &InferenceConfig::paper_default(ModelSpec::llama3_8b(), 128),
        );
        assert!(tiny.decode_tokens_per_sec > llama.decode_tokens_per_sec * 4.0);
    }

    #[test]
    fn npu_overhead_is_a_tiny_fraction_of_ttft() {
        let report = evaluate_tzllm(
            &profile(),
            &InferenceConfig::paper_default(ModelSpec::llama3_8b(), 512),
        );
        let frac = report.breakdown.npu_overhead.as_secs_f64() / report.ttft.as_secs_f64();
        assert!(frac < 0.01, "frac = {frac}");
    }
}
