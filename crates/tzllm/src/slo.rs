//! SLO attainment, error-budget burn rate, and overload-episode detection
//! over the windowed metrics a serving or fleet run recorded.
//!
//! The serving layer answers "how fast was the system"; this module answers
//! the operator's question — "was the latency objective met, and when it was
//! not, *when* did the budget burn and *which lane* was the bottleneck?".
//! It consumes a (possibly fleet-merged) [`WindowedMetrics`] registry and
//! produces:
//!
//! * per-target, per-window **attainment** — the fraction of requests in the
//!   window whose latency sketch bucket estimate was at or under the target
//!   threshold ([`sim_core::LogHistogram::count_le_ns`]);
//! * the **error-budget burn rate** of each window —
//!   `(1 − attainment) / (1 − objective)`, the standard multi-window
//!   burn-rate definition: 1.0 means the budget is being spent exactly at
//!   the rate the objective allows, and higher values exhaust it
//!   proportionally faster;
//! * **overload episodes** — maximal runs of consecutive windows whose burn
//!   rate meets [`SloConfig::burn_threshold`], each annotated with the lane
//!   that was busiest during the episode (derived from the `lane_inuse_ns`
//!   counter and `lane_capacity` gauge the dispatcher records);
//! * an **OpenMetrics text exposition** ([`openmetrics`]) plus a long-format
//!   **CSV time-series** ([`csv_timeseries`]), and a strict in-repo
//!   validator ([`validate_openmetrics`]) CI runs against the exposition.
//!
//! Everything here is a pure read-time fold over the integer metric state,
//! so the report is byte-deterministic whenever the metrics are — which the
//! fleet digest matrix already guarantees across thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sim_core::{SimDuration, SimTime, WindowedMetrics};

/// One latency objective: requests of `class` observed by histogram series
/// `metric` should complete within `threshold` at least `objective` of the
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// Histogram series name the target is judged against
    /// (`"ttft_cold"`, `"ttft_followup"`, `"tbt"`).
    pub metric: &'static str,
    /// Request class ([`SessionStyle`](workloads::SessionStyle) label).
    pub class: &'static str,
    /// Latency threshold a "good" request stays at or under.
    pub threshold: SimDuration,
    /// Attainment objective in `(0, 1)`, e.g. `0.95`.
    pub objective: f64,
}

/// The default per-metric objectives, calibrated against the reproduction's
/// own fleet-scale numbers (p50 TTFT ≈ 3.6 s, p95 ≈ 7.8 s on the
/// heterogeneous mix): cold prefill gets a generous 10 s budget, follow-up
/// turns must beat it warm, and decode must stream tokens at interactive
/// cadence.
pub const DEFAULT_OBJECTIVES: [(&str, SimDuration, f64); 3] = [
    ("ttft_cold", SimDuration::from_secs(10), 0.9),
    ("ttft_followup", SimDuration::from_secs(5), 0.9),
    ("tbt", SimDuration::from_millis(1500), 0.9),
];

impl SloTarget {
    /// Expands [`DEFAULT_OBJECTIVES`] across the request classes actually
    /// present in `metrics`, in deterministic (metric, class) order.
    pub fn defaults_for(metrics: &WindowedMetrics) -> Vec<SloTarget> {
        let mut targets = Vec::new();
        for (metric, threshold, objective) in DEFAULT_OBJECTIVES {
            for class in metrics.histogram_classes(metric) {
                targets.push(SloTarget {
                    metric,
                    class,
                    threshold,
                    objective,
                });
            }
        }
        targets
    }
}

/// Tunables for the monitor itself (as opposed to the per-target SLOs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A window whose burn rate is at or above this enters an overload
    /// episode.  1.0 = burning budget exactly as fast as the objective
    /// allows; the default 2.0 flags windows spending budget at twice the
    /// sustainable rate.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            burn_threshold: 2.0,
        }
    }
}

/// One window's attainment against one target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAttainment {
    /// Window index (`start = index × window width`).
    pub window: u64,
    /// Window start time.
    pub start: SimTime,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests at or under the target threshold.
    pub good: u64,
}

impl WindowAttainment {
    /// Fraction of the window's requests that met the threshold.
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.good as f64 / self.total as f64
        }
    }

    /// Error-budget burn rate: `(1 − attainment) / (1 − objective)`.
    pub fn burn_rate(&self, objective: f64) -> f64 {
        let budget = 1.0 - objective;
        if budget <= 0.0 {
            return if self.good == self.total {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (1.0 - self.attainment()) / budget
    }
}

/// One target's full evaluation: run totals plus the per-window series.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetReport {
    /// The objective being judged.
    pub target: SloTarget,
    /// Per-window attainment, ascending window index; only windows with at
    /// least one observation appear.
    pub windows: Vec<WindowAttainment>,
    /// Requests observed across the run.
    pub total: u64,
    /// Requests at or under the threshold across the run.
    pub good: u64,
}

impl TargetReport {
    /// Run-total attainment.
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.good as f64 / self.total as f64
        }
    }

    /// The worst (highest) single-window burn rate, 0.0 when no windows.
    pub fn peak_burn_rate(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.burn_rate(self.target.objective))
            .fold(0.0, f64::max)
    }

    /// Whether the run as a whole met the objective.
    pub fn met(&self) -> bool {
        self.attainment() >= self.target.objective
    }
}

/// A maximal run of consecutive windows whose burn rate met the episode
/// threshold, annotated with the busiest lane while it lasted.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadEpisode {
    /// Histogram series of the target that burned.
    pub metric: &'static str,
    /// Request class of the target that burned.
    pub class: &'static str,
    /// First window index of the episode.
    pub first_window: u64,
    /// Last window index of the episode (inclusive).
    pub last_window: u64,
    /// Episode start time.
    pub start: SimTime,
    /// Highest single-window burn rate inside the episode.
    pub peak_burn_rate: f64,
    /// Requests that missed the threshold during the episode.
    pub bad_requests: u64,
    /// The lane with the highest mean utilisation over the episode's
    /// windows — the resource that bounded the system while budget burned.
    /// `None` when the run recorded no lane series.
    pub bounding_lane: Option<&'static str>,
    /// That lane's mean utilisation over the episode (1.0 = saturated).
    pub bounding_lane_utilisation: f64,
}

/// The full SLO evaluation of one (possibly fleet-merged) metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Window width the metrics were recorded at.
    pub window: SimDuration,
    /// Per-target evaluations, in the order the targets were given.
    pub targets: Vec<TargetReport>,
    /// Detected overload episodes, ordered by (metric, class, first window).
    pub episodes: Vec<OverloadEpisode>,
    /// Per-lane per-window utilisation in `[0, 1]`-ish (can exceed 1.0 only
    /// by rounding), keyed lane → window index → utilisation.
    pub lane_utilisation: BTreeMap<&'static str, BTreeMap<u64, f64>>,
}

impl SloReport {
    /// The worst single-window burn rate across every target.
    pub fn peak_burn_rate(&self) -> f64 {
        self.targets
            .iter()
            .map(TargetReport::peak_burn_rate)
            .fold(0.0, f64::max)
    }

    /// Looks up one target's report.
    pub fn target(&self, metric: &str, class: &str) -> Option<&TargetReport> {
        self.targets
            .iter()
            .find(|t| t.target.metric == metric && t.target.class == class)
    }

    /// A human-readable multi-line summary (used by the example binary).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SLO report ({} windows of {:.0} s)",
            self.targets
                .iter()
                .map(|t| t.windows.len())
                .max()
                .unwrap_or(0),
            self.window.as_secs_f64()
        );
        for t in &self.targets {
            let _ = writeln!(
                out,
                "  {:14} class={:12} threshold={:>7.2}s objective={:.0}%  attainment={:6.2}%  peak_burn={:5.2}  [{}]",
                t.target.metric,
                t.target.class,
                t.target.threshold.as_secs_f64(),
                t.target.objective * 100.0,
                t.attainment() * 100.0,
                t.peak_burn_rate(),
                if t.met() { "met" } else { "MISSED" },
            );
        }
        if self.episodes.is_empty() {
            let _ = writeln!(out, "  no overload episodes");
        }
        for e in &self.episodes {
            let lane = e.bounding_lane.unwrap_or("?");
            let _ = writeln!(
                out,
                "  overload: {}/{} windows {}..={} (t={:.0}s) peak_burn={:.2} bad={} bounded by {} ({:.0}% busy)",
                e.metric,
                e.class,
                e.first_window,
                e.last_window,
                e.start.as_secs_f64(),
                e.peak_burn_rate,
                e.bad_requests,
                lane,
                e.bounding_lane_utilisation * 100.0,
            );
        }
        out
    }
}

/// Per-lane per-window utilisation derived from the `lane_inuse_ns` counter
/// and the `lane_capacity` gauge: `inuse_ns / (capacity × window_ns)`.
/// Under a fleet merge both the busy-nanosecond integral and the capacity
/// gauge sum across shards, so the ratio stays the fleet-wide mean
/// utilisation.
pub fn lane_utilisation(metrics: &WindowedMetrics) -> BTreeMap<&'static str, BTreeMap<u64, f64>> {
    let mut out = BTreeMap::new();
    let window_ns = metrics.window().as_nanos() as f64;
    for lane in metrics.counter_classes("lane_inuse_ns") {
        let capacity: f64 = metrics
            .gauge_series("lane_capacity", lane)
            .and_then(|s| s.values().next())
            .map(|g| g.last())
            .unwrap_or(0.0);
        if capacity <= 0.0 || window_ns <= 0.0 {
            continue;
        }
        let Some(series) = metrics.counter_series("lane_inuse_ns", lane) else {
            continue;
        };
        let per_window: BTreeMap<u64, f64> = series
            .iter()
            .map(|(&w, &inuse)| (w, inuse as f64 / (capacity * window_ns)))
            .collect();
        out.insert(lane, per_window);
    }
    out
}

/// Evaluates `targets` over `metrics` and detects overload episodes.
pub fn evaluate(metrics: &WindowedMetrics, targets: &[SloTarget], config: &SloConfig) -> SloReport {
    let lanes = lane_utilisation(metrics);
    let mut reports = Vec::with_capacity(targets.len());
    for target in targets {
        let mut windows = Vec::new();
        let mut total = 0u64;
        let mut good = 0u64;
        if let Some(series) = metrics.histogram_series(target.metric, target.class) {
            for (&w, hist) in series {
                let t = hist.count();
                if t == 0 {
                    continue;
                }
                let g = hist.count_le_ns(target.threshold.as_nanos());
                total += t;
                good += g;
                windows.push(WindowAttainment {
                    window: w,
                    start: metrics.window_start(w),
                    total: t,
                    good: g,
                });
            }
        }
        reports.push(TargetReport {
            target: *target,
            windows,
            total,
            good,
        });
    }

    let mut episodes = Vec::new();
    for report in &reports {
        let mut run: Vec<&WindowAttainment> = Vec::new();
        let flush = |run: &mut Vec<&WindowAttainment>, episodes: &mut Vec<OverloadEpisode>| {
            if run.is_empty() {
                return;
            }
            let first = run[0];
            let last = run[run.len() - 1];
            let peak = run
                .iter()
                .map(|w| w.burn_rate(report.target.objective))
                .fold(0.0, f64::max);
            let bad = run.iter().map(|w| w.total - w.good).sum();
            let (lane, util) = bounding_lane(&lanes, first.window, last.window);
            episodes.push(OverloadEpisode {
                metric: report.target.metric,
                class: report.target.class,
                first_window: first.window,
                last_window: last.window,
                start: first.start,
                peak_burn_rate: peak,
                bad_requests: bad,
                bounding_lane: lane,
                bounding_lane_utilisation: util,
            });
            run.clear();
        };
        for w in &report.windows {
            let hot = w.burn_rate(report.target.objective) >= config.burn_threshold;
            let contiguous = run
                .last()
                .map(|prev| prev.window + 1 == w.window)
                .unwrap_or(true);
            if !hot || !contiguous {
                flush(&mut run, &mut episodes);
            }
            if hot {
                run.push(w);
            }
        }
        flush(&mut run, &mut episodes);
    }

    SloReport {
        window: metrics.window(),
        targets: reports,
        episodes,
        lane_utilisation: lanes,
    }
}

/// The lane with the highest mean utilisation over windows
/// `[first, last]`; ties break towards the lexicographically first lane so
/// the answer never depends on map iteration luck.
fn bounding_lane(
    lanes: &BTreeMap<&'static str, BTreeMap<u64, f64>>,
    first: u64,
    last: u64,
) -> (Option<&'static str>, f64) {
    let mut best: Option<(&'static str, f64)> = None;
    for (&lane, series) in lanes {
        let span: Vec<f64> = series.range(first..=last).map(|(_, &u)| u).collect();
        if span.is_empty() {
            continue;
        }
        let mean = span.iter().sum::<f64>() / span.len() as f64;
        let better = match best {
            None => true,
            Some((_, b)) => mean > b,
        };
        if better {
            best = Some((lane, mean));
        }
    }
    match best {
        Some((lane, util)) => (Some(lane), util),
        None => (None, 0.0),
    }
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_f64(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{}", v);
    }
}

/// Renders the run-total view of `metrics` plus the SLO evaluation as an
/// OpenMetrics / Prometheus text exposition:
///
/// * counters become `tzllm_<name>_total{class="…"}` (summed over windows);
/// * gauges become `tzllm_<name>{class="…"}` (the last recorded value);
/// * latency histograms become `tzllm_<name>_bucket{class="…",le="…"}` with
///   cumulative counts, second-valued `le` bounds, a `+Inf` bucket, and
///   `_count`/`_sum` samples (sum in seconds);
/// * the SLO report contributes `tzllm_slo_attainment`,
///   `tzllm_slo_burn_rate_peak`, `tzllm_slo_objective` and
///   `tzllm_slo_overload_episodes`.
///
/// The exposition ends with the mandatory `# EOF` line and parses under
/// [`validate_openmetrics`] (CI runs exactly that check).
pub fn openmetrics(metrics: &WindowedMetrics, slo: &SloReport) -> String {
    let mut out = String::new();

    for name in metrics.counter_names() {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE tzllm_{family} counter");
        for class in metrics.counter_classes(name) {
            let total: u64 = metrics
                .counter_series(name, class)
                .map(|s| s.values().sum())
                .unwrap_or(0);
            let _ = write!(out, "tzllm_{family}_total{{class=\"{class}\"}} ");
            write_f64(&mut out, total as f64);
            out.push('\n');
        }
    }

    for name in metrics.gauge_names() {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE tzllm_{family} gauge");
        for class in metrics.gauge_classes(name) {
            let last = metrics
                .gauge_series(name, class)
                .and_then(|s| s.values().next_back())
                .map(|g| g.last())
                .unwrap_or(0.0);
            let _ = write!(out, "tzllm_{family}{{class=\"{class}\"}} ");
            write_f64(&mut out, last);
            out.push('\n');
        }
    }

    for name in metrics.histogram_names() {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE tzllm_{family} histogram");
        for class in metrics.histogram_classes(name) {
            let Some(hist) = metrics.merged_histogram(name, class) else {
                continue;
            };
            for (bound_ns, cumulative) in hist.cumulative_buckets() {
                let le = bound_ns / 1e9;
                let _ = write!(
                    out,
                    "tzllm_{family}_bucket{{class=\"{class}\",le=\"{le}\"}} "
                );
                write_f64(&mut out, cumulative as f64);
                out.push('\n');
            }
            let _ = write!(
                out,
                "tzllm_{family}_bucket{{class=\"{class}\",le=\"+Inf\"}} "
            );
            write_f64(&mut out, hist.count() as f64);
            out.push('\n');
            let _ = write!(out, "tzllm_{family}_count{{class=\"{class}\"}} ");
            write_f64(&mut out, hist.count() as f64);
            out.push('\n');
            let _ = write!(out, "tzllm_{family}_sum{{class=\"{class}\"}} ");
            write_f64(&mut out, hist.sum_ns() as f64 / 1e9);
            out.push('\n');
        }
    }

    let _ = writeln!(out, "# TYPE tzllm_slo_attainment gauge");
    for t in &slo.targets {
        let metric = sanitize_metric_name(t.target.metric);
        let _ = write!(
            out,
            "tzllm_slo_attainment{{metric=\"{metric}\",class=\"{}\"}} ",
            t.target.class
        );
        write_f64(&mut out, t.attainment());
        out.push('\n');
    }
    let _ = writeln!(out, "# TYPE tzllm_slo_objective gauge");
    for t in &slo.targets {
        let metric = sanitize_metric_name(t.target.metric);
        let _ = write!(
            out,
            "tzllm_slo_objective{{metric=\"{metric}\",class=\"{}\"}} ",
            t.target.class
        );
        write_f64(&mut out, t.target.objective);
        out.push('\n');
    }
    let _ = writeln!(out, "# TYPE tzllm_slo_burn_rate_peak gauge");
    for t in &slo.targets {
        let metric = sanitize_metric_name(t.target.metric);
        let _ = write!(
            out,
            "tzllm_slo_burn_rate_peak{{metric=\"{metric}\",class=\"{}\"}} ",
            t.target.class
        );
        write_f64(&mut out, t.peak_burn_rate());
        out.push('\n');
    }
    let _ = writeln!(out, "# TYPE tzllm_slo_overload_episodes gauge");
    for t in &slo.targets {
        let metric = sanitize_metric_name(t.target.metric);
        let n = slo
            .episodes
            .iter()
            .filter(|e| e.metric == t.target.metric && e.class == t.target.class)
            .count();
        let _ = write!(
            out,
            "tzllm_slo_overload_episodes{{metric=\"{metric}\",class=\"{}\"}} ",
            t.target.class
        );
        write_f64(&mut out, n as f64);
        out.push('\n');
    }

    let _ = writeln!(out, "# EOF");
    out
}

/// Renders the windowed series (and per-window SLO evaluation) as a
/// long-format CSV time-series:
///
/// ```csv
/// window,start_s,kind,name,class,field,value
/// 0,0,counter,requests_admitted,independent,delta,18
/// 0,0,histogram,ttft_cold,independent,p95_ms,6061.2
/// 0,0,slo,ttft_cold,independent,burn_rate,0.4
/// ```
///
/// Rows are emitted in deterministic (kind, name, class, window) order.
pub fn csv_timeseries(metrics: &WindowedMetrics, slo: &SloReport) -> String {
    let mut out = String::from("window,start_s,kind,name,class,field,value\n");
    let mut row = |window: u64, kind: &str, name: &str, class: &str, field: &str, value: f64| {
        let start = metrics.window_start(window).as_secs_f64();
        let _ = write!(out, "{window},{start},{kind},{name},{class},{field},");
        write_f64(&mut out, value);
        out.push('\n');
    };

    for name in metrics.counter_names() {
        for class in metrics.counter_classes(name) {
            if let Some(series) = metrics.counter_series(name, class) {
                for (&w, &delta) in series {
                    row(w, "counter", name, class, "delta", delta as f64);
                }
            }
        }
    }
    for name in metrics.gauge_names() {
        for class in metrics.gauge_classes(name) {
            if let Some(series) = metrics.gauge_series(name, class) {
                for (&w, g) in series {
                    row(w, "gauge", name, class, "last", g.last());
                    row(w, "gauge", name, class, "mean", g.mean());
                }
            }
        }
    }
    for name in metrics.histogram_names() {
        for class in metrics.histogram_classes(name) {
            if let Some(series) = metrics.histogram_series(name, class) {
                for (&w, hist) in series {
                    row(w, "histogram", name, class, "count", hist.count() as f64);
                    for (q, field) in [(0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")] {
                        if let Some(v) = hist.quantile_ms(q) {
                            row(w, "histogram", name, class, field, v);
                        }
                    }
                }
            }
        }
    }
    for t in &slo.targets {
        for w in &t.windows {
            row(
                w.window,
                "slo",
                t.target.metric,
                t.target.class,
                "attainment",
                w.attainment(),
            );
            row(
                w.window,
                "slo",
                t.target.metric,
                t.target.class,
                "burn_rate",
                w.burn_rate(t.target.objective),
            );
        }
    }
    for (lane, series) in &slo.lane_utilisation {
        for (&w, &util) in series {
            row(w, "lane", "utilisation", lane, "busy_fraction", util);
        }
    }
    out
}

/// Strictly validates an OpenMetrics text exposition.  Checks, line by line:
///
/// * every sample line parses as `name{label="value",…} float`;
/// * every sample's metric family was declared by a prior `# TYPE` line;
/// * counter samples carry the `_total` suffix;
/// * histogram families expose only `_bucket`/`_count`/`_sum` samples,
///   every bucket has an `le` label, per-(family, class) bucket counts are
///   cumulative with strictly increasing bounds ending at `le="+Inf"`, and
///   the `+Inf` bucket equals `_count`;
/// * the exposition ends with `# EOF` and nothing follows it.
///
/// Returns the number of sample lines on success, or a message naming the
/// offending 1-based line on failure.
pub fn validate_openmetrics(text: &str) -> Result<usize, String> {
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    // (family, labels) → (last le bound, last cumulative count, saw +Inf)
    let mut buckets: BTreeMap<(String, String), (f64, f64, bool)> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut samples = 0usize;
    let mut saw_eof = false;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if saw_eof {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                saw_eof = true;
                continue;
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {lineno}: malformed TYPE declaration"));
                };
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "info") {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if families
                    .insert(name.to_string(), kind.to_string())
                    .is_some()
                {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                continue;
            }
            // other comments (HELP, UNIT) are permitted
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: malformed comment"));
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: no value"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let rest = &line[name_end..];
        let (labels, value_str) = if let Some(rest) = rest.strip_prefix('{') {
            let close = rest
                .find('}')
                .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
            let labels = &rest[..close];
            let value = rest[close + 1..]
                .strip_prefix(' ')
                .ok_or_else(|| format!("line {lineno}: missing space before value"))?;
            (labels, value)
        } else {
            ("", rest.trim_start_matches(' '))
        };
        let mut label_map: BTreeMap<&str, &str> = BTreeMap::new();
        if !labels.is_empty() {
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: malformed label {pair:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: unquoted label value {v:?}"))?;
                if label_map.insert(k, v).is_some() {
                    return Err(format!("line {lineno}: duplicate label {k:?}"));
                }
            }
        }
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            other => other
                .parse()
                .map_err(|_| format!("line {lineno}: unparseable value {other:?}"))?,
        };

        // Resolve the family this sample belongs to.
        let (family, kind) = resolve_family(&families, name)
            .ok_or_else(|| format!("line {lineno}: sample {name} has no TYPE declaration"))?;
        match kind.as_str() {
            "counter" => {
                if !name.ends_with("_total") {
                    return Err(format!(
                        "line {lineno}: counter sample {name} must end in _total"
                    ));
                }
                if value < 0.0 {
                    return Err(format!("line {lineno}: negative counter"));
                }
            }
            "histogram" => {
                let suffix = &name[family.len()..];
                let class_key: String = label_map
                    .iter()
                    .filter(|(k, _)| **k != "le")
                    .map(|(k, v)| format!("{k}={v};"))
                    .collect();
                let key = (family.clone(), class_key);
                match suffix {
                    "_bucket" => {
                        let le = label_map
                            .get("le")
                            .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
                        let bound: f64 = if *le == "+Inf" {
                            f64::INFINITY
                        } else {
                            le.parse().map_err(|_| {
                                format!("line {lineno}: unparseable le bound {le:?}")
                            })?
                        };
                        let entry = buckets
                            .entry(key)
                            .or_insert((f64::NEG_INFINITY, 0.0, false));
                        if entry.2 {
                            return Err(format!("line {lineno}: bucket after +Inf"));
                        }
                        if bound <= entry.0 {
                            return Err(format!("line {lineno}: le bounds not increasing"));
                        }
                        if value < entry.1 {
                            return Err(format!("line {lineno}: bucket counts not cumulative"));
                        }
                        entry.0 = bound;
                        entry.1 = value;
                        entry.2 = bound.is_infinite();
                    }
                    "_count" => {
                        counts.insert(key, value);
                    }
                    "_sum" => {}
                    _ => {
                        return Err(format!("line {lineno}: unexpected histogram sample {name}"));
                    }
                }
            }
            _ => {}
        }
        samples += 1;
    }

    if !saw_eof {
        return Err("exposition does not end with # EOF".to_string());
    }
    for ((family, class), (_, last_cumulative, saw_inf)) in &buckets {
        if !saw_inf {
            return Err(format!("histogram {family}{{{class}}} has no +Inf bucket"));
        }
        if let Some(count) = counts.get(&(family.clone(), class.clone())) {
            if (count - last_cumulative).abs() > 0.0 {
                return Err(format!(
                    "histogram {family}{{{class}}}: +Inf bucket {last_cumulative} != _count {count}"
                ));
            }
        } else {
            return Err(format!("histogram {family}{{{class}}} has no _count"));
        }
    }
    Ok(samples)
}

/// Finds the declared family a sample name belongs to: exact match for
/// counters/gauges (counters also match `<family>_total`), suffix match for
/// histograms.
fn resolve_family(families: &BTreeMap<String, String>, name: &str) -> Option<(String, String)> {
    if let Some(kind) = families.get(name) {
        return Some((name.to_string(), kind.clone()));
    }
    for suffix in ["_total", "_bucket", "_count", "_sum"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(kind) = families.get(base) {
                return Some((base.to_string(), kind.clone()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn hot_metrics() -> WindowedMetrics {
        // Two classes, three windows; window 1 is overloaded for the
        // "independent" class.
        let mut m = WindowedMetrics::new(SimDuration::from_secs(60));
        let w = |i: u64, off: u64| SimTime::from_nanos(i * 60_000_000_000 + off);
        // Window 0: all fast.
        for i in 0..20 {
            m.observe(
                "ttft_cold",
                "independent",
                w(0, i),
                SimDuration::from_secs(2),
            );
        }
        // Window 1: 10 fast, 10 slow — 50% attainment.
        for i in 0..10 {
            m.observe(
                "ttft_cold",
                "independent",
                w(1, i),
                SimDuration::from_secs(2),
            );
            m.observe(
                "ttft_cold",
                "independent",
                w(1, 100 + i),
                SimDuration::from_secs(40),
            );
        }
        // Window 2: recovered.
        for i in 0..20 {
            m.observe(
                "ttft_cold",
                "independent",
                w(2, i),
                SimDuration::from_secs(3),
            );
        }
        // A second class that always meets the objective.
        for wi in 0..3u64 {
            for i in 0..5 {
                m.observe(
                    "ttft_cold",
                    "conversation",
                    w(wi, i),
                    SimDuration::from_secs(1),
                );
            }
        }
        // Lane series: npu saturated in window 1, flash idle.
        m.gauge("lane_capacity", "npu", SimTime::ZERO, 1.0);
        m.gauge("lane_capacity", "flash", SimTime::ZERO, 1.0);
        m.add("lane_inuse_ns", "npu", w(0, 0), 6_000_000_000);
        m.add("lane_inuse_ns", "npu", w(1, 0), 59_000_000_000);
        m.add("lane_inuse_ns", "npu", w(2, 0), 12_000_000_000);
        m.add("lane_inuse_ns", "flash", w(1, 0), 3_000_000_000);
        m
    }

    fn hot_targets() -> Vec<SloTarget> {
        vec![
            SloTarget {
                metric: "ttft_cold",
                class: "independent",
                threshold: SimDuration::from_secs(10),
                objective: 0.9,
            },
            SloTarget {
                metric: "ttft_cold",
                class: "conversation",
                threshold: SimDuration::from_secs(10),
                objective: 0.9,
            },
        ]
    }

    #[test]
    fn burn_rate_and_episode_detection_flag_the_overloaded_window() {
        let m = hot_metrics();
        let report = evaluate(&m, &hot_targets(), &SloConfig::default());

        let t = report.target("ttft_cold", "independent").unwrap();
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.total, 60);
        assert_eq!(t.good, 50);
        let w1 = &t.windows[1];
        assert_eq!(w1.window, 1);
        assert!((w1.attainment() - 0.5).abs() < 1e-12);
        // (1 - 0.5) / (1 - 0.9) = 5.0
        assert!((w1.burn_rate(0.9) - 5.0).abs() < 1e-9);

        assert_eq!(report.episodes.len(), 1);
        let e = &report.episodes[0];
        assert_eq!((e.metric, e.class), ("ttft_cold", "independent"));
        assert_eq!((e.first_window, e.last_window), (1, 1));
        assert_eq!(e.bad_requests, 10);
        assert_eq!(e.bounding_lane, Some("npu"));
        assert!(e.bounding_lane_utilisation > 0.9);

        let conv = report.target("ttft_cold", "conversation").unwrap();
        assert!(conv.met());
        assert_eq!(conv.peak_burn_rate(), 0.0);
    }

    #[test]
    fn quiet_windows_do_not_merge_two_episodes_into_one() {
        let mut m = WindowedMetrics::new(SimDuration::from_secs(60));
        let w = |i: u64| SimTime::from_nanos(i * 60_000_000_000);
        for wi in [0u64, 2] {
            for _ in 0..10 {
                m.observe("tbt", "assistant", w(wi), SimDuration::from_secs(30));
            }
        }
        for _ in 0..10 {
            m.observe("tbt", "assistant", w(1), SimDuration::from_millis(100));
        }
        let targets = [SloTarget {
            metric: "tbt",
            class: "assistant",
            threshold: SimDuration::from_secs(1),
            objective: 0.9,
        }];
        let report = evaluate(&m, &targets, &SloConfig::default());
        assert_eq!(report.episodes.len(), 2);
        assert_eq!(report.episodes[0].first_window, 0);
        assert_eq!(report.episodes[1].first_window, 2);
    }

    #[test]
    fn exposition_is_valid_openmetrics_and_csv_has_every_kind() {
        let m = hot_metrics();
        let report = evaluate(&m, &SloTarget::defaults_for(&m), &SloConfig::default());
        let text = openmetrics(&m, &report);
        let samples = validate_openmetrics(&text).expect("exposition must validate");
        assert!(samples > 10, "expected a real exposition, got {samples}");
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("tzllm_ttft_cold_bucket{class=\"independent\",le=\"+Inf\"} 60.0"));
        assert!(text.contains("tzllm_slo_attainment{metric=\"ttft_cold\",class=\"independent\"}"));

        let csv = csv_timeseries(&m, &report);
        let mut kinds: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap())
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds, ["counter", "gauge", "histogram", "lane", "slo"]);
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        let m = hot_metrics();
        let report = evaluate(&m, &SloTarget::defaults_for(&m), &SloConfig::default());
        let good = openmetrics(&m, &report);

        // Truncate the EOF.
        let no_eof = good.trim_end_matches("# EOF\n");
        assert!(validate_openmetrics(no_eof).is_err());

        // Sample without a TYPE declaration.
        assert!(validate_openmetrics("tzllm_orphan_total 1.0\n# EOF\n").is_err());

        // Counter without _total suffix.
        assert!(validate_openmetrics("# TYPE x counter\nx{class=\"a\"} 1.0\n# EOF\n").is_err());

        // Non-cumulative buckets.
        let bad_hist = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5.0\n\
             h_bucket{le=\"2\"} 3.0\n\
             h_bucket{le=\"+Inf\"} 5.0\n\
             h_count 5.0\nh_sum 1.0\n# EOF\n";
        assert!(validate_openmetrics(bad_hist).is_err());

        // +Inf bucket disagrees with _count.
        let bad_count = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5.0\n\
             h_bucket{le=\"+Inf\"} 5.0\n\
             h_count 6.0\nh_sum 1.0\n# EOF\n";
        assert!(validate_openmetrics(bad_count).is_err());
    }

    #[test]
    fn lane_utilisation_merges_to_fleet_means() {
        // Two "shards" with one lane each: merged capacity 2, merged busy
        // integral the sum — utilisation is the fleet mean.
        let mk = |busy_ns: u64| {
            let mut m = WindowedMetrics::new(SimDuration::from_secs(60));
            m.gauge("lane_capacity", "npu", SimTime::ZERO, 1.0);
            m.add("lane_inuse_ns", "npu", SimTime::ZERO, busy_ns);
            m
        };
        let mut merged = mk(60_000_000_000); // 100% busy
        merged.merge_from(&mk(30_000_000_000)); // 50% busy
        let util = lane_utilisation(&merged);
        let npu = util.get("npu").unwrap().get(&0).unwrap();
        assert!(
            (npu - 0.75).abs() < 1e-9,
            "fleet mean should be 75%, got {npu}"
        );
    }
}
