//! # tzllm
//!
//! The paper's core contribution: protecting on-device LLM inference with Arm
//! TrustZone while keeping it fast and memory-efficient.
//!
//! * [`restore`] — restoration operators and the extended computation graph
//!   (allocation / loading / decryption inserted before each prefill
//!   operator), plus the critical-path analysis.
//! * [`pipeline`] — the pipeline scheduler: sequential, priority-based and
//!   priority+preemptive policies over {CPU cores, NPU, I/O engine}.
//! * [`cache`] — partial parameter caching (reverse-topological lazy release).
//! * [`kv`] — the secure paged KV-cache manager: per-session prefix
//!   retention, sealed spill under memory pressure, multi-turn reuse.
//! * [`codriver`] — TEE-REE NPU time-sharing built on the co-driver split,
//!   driving the real REE control-plane and TEE data-plane drivers.
//! * [`system`] — end-to-end TZ-LLM evaluation (TTFT, decode speed, breakdown).
//! * [`serving`] — the multi-session serving layer: request queueing,
//!   admission, live cache-driven dispatch, fleet statistics.
//! * [`telemetry`] — TTFT waterfalls and fleet-wide critical-path
//!   attribution over a finished serving report.
//! * [`fleet`] — the sharded parallel fleet runner: one independent serving
//!   simulation per device shard on scoped threads, splittable seeds,
//!   deterministic associative stats merging.
//! * [`slo`] — SLO attainment / error-budget burn-rate monitoring over the
//!   windowed metrics, with OpenMetrics + CSV export and overload-episode
//!   detection.
//! * [`baseline`] — the REE-LLM-Memory, REE-LLM-Flash and Strawman baselines.
//! * [`related`] — the qualitative comparison of Table 1.

pub mod baseline;
pub mod cache;
pub mod codriver;
pub mod fleet;
pub mod kv;
pub mod pipeline;
pub mod related;
pub mod restore;
pub mod serving;
pub mod slo;
pub mod system;
pub mod telemetry;

pub use baseline::{decode_uses_npu, evaluate, strawman_breakdown, SystemKind};
pub use cache::{CacheController, CachePolicy};
pub use codriver::{LlmPhase, LlmPlacement, NpuSharingSim, SharingConfig, SharingResult};
pub use kv::{ChainStoreStats, KvConfig, KvPool, KvReuse, KvStats};
pub use pipeline::{simulate, PipelineConfig, PipelineResult, Policy};
pub use restore::{CriticalPaths, OpLabel, PipeOp, PipeOpKind, RestorePlan, RestoreRates};
pub use serving::{
    FleetStats, ModelId, Request, RequestRecord, RetentionPolicy, Server, ServingConfig,
    ServingReport,
};
pub use slo::{
    csv_timeseries, openmetrics, validate_openmetrics, OverloadEpisode, SloConfig, SloReport,
    SloTarget, TargetReport, WindowAttainment,
};
pub use system::{
    cma_occupancy, evaluate_tzllm, InferenceConfig, InferenceReport, PlanCache, TtftBreakdown,
};
pub use telemetry::{critical_path_report, ttft_waterfall, CriticalPathReport, LaneAttribution};
pub use tz_quant::SpillFormat;
