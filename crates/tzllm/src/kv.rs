//! Secure paged KV-cache retention across requests and *sessions* (the
//! accounting half of the KV-cache manager).
//!
//! The paper releases the whole KV cache after every inference (§4.2), so a
//! multi-turn conversation re-prefills its entire history on every turn.
//! [`KvPool`] instead retains KV state between requests at page granularity,
//! under an explicit secure-memory budget — and, since the shared-prefix
//! refactor, it retains pages **content-addressed**: every whole page is
//! keyed by a hash chain over its token contents ([`llm::PromptContent`]),
//! so any number of sessions whose prompts open with the same tokens (a
//! product-wide system prompt, a prompt template) reference *one* secure
//! copy of the common head instead of storing and prefilling it once each.
//!
//! * A session's retained state is `[shared pages][private tail]`: whole
//!   pages live in the per-model content-addressed store with a reference
//!   count, the trailing partial page is private to the session.
//! * Reuse walks the prompt's page-hash chain through the store: the longest
//!   chain prefix present is served without prefilling — including on the
//!   **cold first turn** of a brand-new session, where every hit comes from
//!   pages other sessions produced.
//! * Copy-on-divergence is structural: the chain key of page `p` commits to
//!   all tokens of pages `0..=p`, so the first diverging token changes every
//!   subsequent key and the diverging session simply references new private
//!   pages.  One session can never observe another's private suffix — a
//!   suffix page is only reachable through a chain that reproduces its exact
//!   content.
//! * Under secure-memory pressure cold pages are *spilled*: optionally
//!   block-quantized to INT8/INT4 ([`KvConfig::spill_format`]), then sealed
//!   with AES-CTR and HMAC (see [`tee_kernel::kv_pool`] for the byte-exact
//!   path) and moved to normal-world CMA memory.  The pool accounts
//!   **resident f16 bytes** and **spilled compressed bytes** separately: a
//!   fixed [`KvConfig::spill_budget`] holds ~1.94× the pages at INT8 and
//!   ~3.77× at INT4, and restoring a quantized page pays a dequantization
//!   pass ([`KvReuse::dequant_bytes`]) on top of the MAC + decrypt — the
//!   serving layer charges both to the decrypt lane, where they hide behind
//!   the prefill's NPU window.  Sealing a shared page seals **one copy**,
//!   not one per referencing session, and unsealing it once serves them all.
//! * A page is dropped outright only when nothing references it (the last
//!   referencing session released it, or spill is disabled and the budget
//!   forces a truncation, which releases the references first).
//! * With [`KvConfig::popularity_retention`] on, spill/eviction victims are
//!   weighted by reference count before recency: a system-prompt page twenty
//!   sessions reference outlives a refs-1 private suffix under pressure,
//!   because it is worth twenty sessions' prefill per secure byte.
//!
//! With [`KvConfig::shared`] off, page keys are salted per session and the
//! pool degenerates to the previous per-session retention semantics.  With
//! [`KvConfig::spill_format`] at its [`SpillFormat::F16`] default every
//! compressed count equals its plain count and no dequant is ever charged —
//! quantization off is invisible.

use std::collections::{BTreeMap, BTreeSet};

use sim_core::SimTime;
use tz_quant::SpillFormat;

/// Serving-layer configuration of the KV-cache manager.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Master switch: `false` reproduces the paper's release-everything
    /// behaviour (no KV state survives a request).
    pub enabled: bool,
    /// Cross-session content-addressed prefix sharing.  `false` salts every
    /// page key with its session id, which reproduces the earlier
    /// per-session retention exactly (nothing is ever deduped).
    pub shared: bool,
    /// Spill/retention page size in bytes.
    pub page_bytes: u64,
    /// Fraction of the secure-memory headroom *left over by parameter
    /// retention* that KV pages may occupy.  Parameters are senior: the KV
    /// budget only ever uses memory the parameter policy did not claim, so
    /// enabling KV reuse never shrinks the parameter cache.
    pub budget_fraction: f64,
    /// Whether cold pages are sealed and spilled to normal-world CMA memory
    /// (`false` drops them immediately — spill-free ablation).
    pub spill: bool,
    /// Maximum sealed bytes resident in normal-world CMA memory, counted in
    /// *compressed* (post-quantization) bytes — what the CMA actually holds.
    pub spill_budget: u64,
    /// Maximum sessions with retained KV state; the coldest beyond this are
    /// dropped entirely.
    pub max_sessions: usize,
    /// How sealed pages are encoded in spill memory.  [`SpillFormat::F16`]
    /// reproduces the unquantized behaviour exactly; INT8/INT4 stretch the
    /// spill budget 2–4× at the cost of the format's modelled quantization
    /// noise and a dequant pass on restore.
    pub spill_format: SpillFormat,
    /// Weight spill/eviction victim selection by reference count before
    /// recency, so highly shared pages (a fleet-wide system prompt) outlive
    /// single-session state under pressure.  Off reproduces pure
    /// LRU/deepest-first victim order.
    pub popularity_retention: bool,
}

impl KvConfig {
    /// KV retention off: the paper's behaviour, and the baseline the chat
    /// benchmarks compare against.
    pub fn disabled() -> Self {
        KvConfig {
            enabled: false,
            shared: true,
            page_bytes: 2 * sim_core::MIB,
            budget_fraction: 0.5,
            spill: true,
            spill_budget: sim_core::GIB,
            max_sessions: 64,
            spill_format: SpillFormat::F16,
            popularity_retention: false,
        }
    }

    /// KV retention on with the default knobs — the chat-serving setup,
    /// cross-session prefix sharing included.
    pub fn chat_default() -> Self {
        KvConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// The chat setup with quantized sealed spill and popularity-weighted
    /// retention: the same secure budget, but the normal-world spill region
    /// holds `format.expansion()`× the pages and highly shared pages are the
    /// last to go.
    pub fn chat_quantized(format: SpillFormat) -> Self {
        KvConfig {
            spill_format: format,
            popularity_retention: true,
            ..Self::chat_default()
        }
    }

    /// Picks the densest spill format whose modelled quantization noise
    /// (fraction of block full scale, RMS) fits `noise_budget` — the quality
    /// knob: `0.0` keeps f16, `0.003` admits INT8, `0.05` admits INT4.
    pub fn with_noise_budget(mut self, noise_budget: f64) -> Self {
        self.spill_format = SpillFormat::for_noise_budget(noise_budget);
        self
    }
}

/// What a dispatch gets out of the pool for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvReuse {
    /// Prefix tokens served from retained KV state (no prefill needed).
    pub reused_tokens: usize,
    /// *Compressed* bytes of that prefix that were sealed and must be
    /// unsealed (verified + decrypted) on the CPU decrypt lane before use.
    pub unseal_bytes: u64,
    /// f16 bytes reconstructed by dequantization after the decrypt (zero
    /// under [`SpillFormat::F16`]); charged to the same decrypt lane.
    pub dequant_bytes: u64,
    /// Of the reused tokens, how many came from shared pages this session
    /// did not itself retain — cross-session hits.
    pub shared_tokens: usize,
}

/// Cumulative byte counters of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Plain (f16) bytes sealed and spilled to normal-world memory (one copy
    /// per shared page, however many sessions reference it).
    pub spilled_bytes: u64,
    /// Compressed bytes those seals actually wrote to normal-world memory
    /// (equals `spilled_bytes` under [`SpillFormat::F16`]).
    pub spilled_compressed_bytes: u64,
    /// Sealed (compressed) bytes unsealed at dispatch time (on the service's
    /// CPU lane).
    pub unsealed_bytes: u64,
    /// Sealed (compressed) bytes unsealed ahead of dispatch on idle lanes.
    pub prewarmed_bytes: u64,
    /// f16 bytes reconstructed by dequantization across dispatch-time
    /// unseals and prewarms (zero under [`SpillFormat::F16`]).
    pub dequant_bytes: u64,
    /// Retained (plain) bytes dropped (budget pressure, divergence,
    /// eviction) — the tokens they held re-prefill on their next use.
    pub dropped_bytes: u64,
    /// Prefix tokens served from pages the session did not itself retain.
    pub shared_tokens: u64,
    /// Peak of `Σ (refs − 1) × page bytes` over the run: secure bytes the
    /// content-addressed store saved versus per-session copies.
    pub peak_deduped_bytes: u64,
    /// Peak number of sealed pages/tails simultaneously held in the spill
    /// region — at equal `spill_budget`, a quantized format holds
    /// `expansion()`× more of these.
    pub peak_sealed_pages: u64,
    /// Peak compressed bytes simultaneously held in the spill region.
    pub peak_sealed_bytes: u64,
}

/// Per-model introspection of the content-addressed chain store: where the
/// sharing wins come from, exposed through `FleetStats` so benchmarks can
/// report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStoreStats {
    /// Interned model identity.
    pub model: u32,
    /// Pages in the store for this model (resident + sealed).
    pub pages: usize,
    /// Of those, resident in secure memory.
    pub resident_pages: usize,
    /// Of those, sealed out to normal-world spill.
    pub sealed_pages: usize,
    /// `(reference count, page count)` pairs, ascending by refs — the
    /// sharing histogram (refs 0 = lingering cache, refs ≥ 2 = deduped).
    pub refs_histogram: Vec<(u32, usize)>,
    /// Deepest chain position present (+1 = longest retained chain, pages).
    pub max_depth: u32,
    /// Plain bytes of the resident pages.
    pub resident_bytes: u64,
    /// Compressed bytes of the sealed pages.
    pub sealed_bytes: u64,
}

/// The identity of one whole KV page in the content-addressed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PageKey {
    /// Interned model identity: KV is only ever shared within one model.
    model: u32,
    /// `0` when sharing is on; `session + 1` when it is off, which makes
    /// every key private to its session.
    salt: u64,
    /// Chain hash over the page's tokens and its whole prefix
    /// ([`llm::PromptContent::page_keys`]).
    hash: u64,
}

#[derive(Debug, Clone)]
struct PageEntry {
    bytes: u64,
    /// Position in its chain (page 0 is the head); deeper pages are colder
    /// by construction and are spilled first on ties.
    depth: u32,
    /// Sessions currently referencing the page.  Zero-reference *shared*
    /// pages linger as reusable cache until budget pressure removes them;
    /// zero-reference salted pages are removed immediately.
    refs: u32,
    sealed: bool,
    last_use: SimTime,
}

#[derive(Debug, Clone)]
struct SessionKv {
    model: u32,
    bytes_per_token: u64,
    /// Chain hashes of the whole pages of this session's retained context,
    /// in order — each holds one reference in the store.
    page_hashes: Vec<u64>,
    /// Tokens past the last whole page (always `< tokens_per_page`),
    /// private to the session.
    tail_tokens: usize,
    tail_sealed: bool,
    last_use: SimTime,
}

/// The per-server KV retention pool: pure accounting (tokens, bytes; time is
/// charged by the serving layer), deterministic by construction.
#[derive(Debug)]
pub struct KvPool {
    page_bytes: u64,
    shared: bool,
    spill: bool,
    spill_budget: u64,
    max_sessions: usize,
    format: SpillFormat,
    popularity: bool,
    pages: BTreeMap<PageKey, PageEntry>,
    sessions: BTreeMap<u64, SessionKv>,
    resident_bytes: u64,
    /// Compressed bytes in the spill region (the CMA footprint).
    sealed_bytes: u64,
    /// Sealed pages/tails currently in the spill region.
    sealed_pages: u64,
    /// Live `Σ (refs − 1) × bytes` over all pages.
    deduped_bytes: u64,
    /// `reuse_plan` calls by whole pages matched (the hit-depth
    /// distribution).
    hit_depth: BTreeMap<u32, u64>,
    stats: KvStats,
}

/// Compressed footprint of `plain` f16 bytes under `format` — shared by the
/// free-standing accounting sites that already hold field borrows.
fn comp_len(format: SpillFormat, plain: u64) -> u64 {
    format.sealed_len(plain as usize) as u64
}

impl KvPool {
    /// An empty pool with `config`'s knobs.
    pub fn new(config: &KvConfig) -> Self {
        KvPool {
            page_bytes: config.page_bytes.max(1),
            shared: config.shared,
            spill: config.spill,
            spill_budget: config.spill_budget,
            max_sessions: config.max_sessions.max(1),
            format: config.spill_format,
            popularity: config.popularity_retention,
            pages: BTreeMap::new(),
            sessions: BTreeMap::new(),
            resident_bytes: 0,
            sealed_bytes: 0,
            sealed_pages: 0,
            deduped_bytes: 0,
            hit_depth: BTreeMap::new(),
            stats: KvStats::default(),
        }
    }

    /// Bytes of KV currently resident in the secure region (shared pages
    /// counted once).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Compressed bytes currently sealed in normal-world memory — the CMA
    /// footprint the spill budget bounds.
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed_bytes
    }

    /// Sealed pages/tails currently in the spill region.
    pub fn sealed_pages(&self) -> u64 {
        self.sealed_pages
    }

    /// The spill encoding this pool seals evicted pages with.
    pub fn spill_format(&self) -> SpillFormat {
        self.format
    }

    /// Sessions with retained state.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Whether `session` has any retained state.
    pub fn has_session(&self, session: u64) -> bool {
        self.sessions.contains_key(&session)
    }

    /// Secure bytes the store is currently saving versus per-session copies:
    /// `Σ (refs − 1) × page bytes`.
    pub fn deduped_bytes(&self) -> u64 {
        self.deduped_bytes
    }

    /// Cumulative counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Per-model snapshot of the content-addressed chain store: page counts,
    /// residency split, the refs histogram and the deepest chain — where the
    /// sharing wins come from.  Salted (sharing-off) pages report under
    /// their model too, with refs ≤ 1 by construction.
    pub fn chain_stats(&self) -> Vec<ChainStoreStats> {
        let mut out: Vec<ChainStoreStats> = Vec::new();
        for (key, entry) in &self.pages {
            let stats = match out.iter_mut().find(|s| s.model == key.model) {
                Some(s) => s,
                None => {
                    out.push(ChainStoreStats {
                        model: key.model,
                        pages: 0,
                        resident_pages: 0,
                        sealed_pages: 0,
                        refs_histogram: Vec::new(),
                        max_depth: 0,
                        resident_bytes: 0,
                        sealed_bytes: 0,
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            stats.pages += 1;
            if entry.sealed {
                stats.sealed_pages += 1;
                stats.sealed_bytes += comp_len(self.format, entry.bytes);
            } else {
                stats.resident_pages += 1;
                stats.resident_bytes += entry.bytes;
            }
            stats.max_depth = stats.max_depth.max(entry.depth + 1);
            match stats
                .refs_histogram
                .binary_search_by_key(&entry.refs, |&(r, _)| r)
            {
                Ok(i) => stats.refs_histogram[i].1 += 1,
                Err(i) => stats.refs_histogram.insert(i, (entry.refs, 1)),
            }
        }
        out
    }

    /// The hit-depth distribution: for each whole-page chain depth, how many
    /// dispatches matched exactly that many leading pages in the store
    /// (depth 0 = full miss).  Ascending by depth.
    pub fn hit_depth_histogram(&self) -> Vec<(u32, u64)> {
        self.hit_depth.iter().map(|(&d, &n)| (d, n)).collect()
    }

    /// Whole tokens per page for a model storing `bytes_per_token`.
    pub fn page_tokens(&self, bytes_per_token: u64) -> usize {
        (self.page_bytes / bytes_per_token.max(1)).max(1) as usize
    }

    fn key(&self, session: u64, model: u32, hash: u64) -> PageKey {
        PageKey {
            model,
            salt: if self.shared { 0 } else { session + 1 },
            hash,
        }
    }

    fn note_dedup(&mut self) {
        self.stats.peak_deduped_bytes = self.stats.peak_deduped_bytes.max(self.deduped_bytes);
    }

    /// Creates (resident) or references an existing store page.
    fn ref_page(&mut self, key: PageKey, bytes: u64, depth: u32, now: SimTime) {
        match self.pages.get_mut(&key) {
            Some(entry) => {
                debug_assert_eq!(entry.depth, depth, "equal chains have equal depth");
                entry.refs += 1;
                entry.last_use = now;
                // `deduped_bytes` is Σ (refs − 1) × bytes: re-referencing a
                // zero-ref lingering cache page (0 → 1) saves nothing yet.
                if entry.refs > 1 {
                    self.deduped_bytes += entry.bytes;
                }
            }
            None => {
                self.pages.insert(
                    key,
                    PageEntry {
                        bytes,
                        depth,
                        refs: 1,
                        sealed: false,
                        last_use: now,
                    },
                );
                self.resident_bytes += bytes;
            }
        }
        self.note_dedup();
    }

    /// Releases one reference.  A zero-reference salted page is removed on
    /// the spot (nothing can ever match it again); a zero-reference shared
    /// page stays as reusable cache until budget pressure removes it.
    fn deref_page(&mut self, key: PageKey) {
        let Some(entry) = self.pages.get_mut(&key) else {
            return;
        };
        debug_assert!(entry.refs > 0);
        entry.refs -= 1;
        if entry.refs > 0 {
            self.deduped_bytes -= entry.bytes;
            return;
        }
        if key.salt != 0 {
            self.remove_page(key);
        }
    }

    /// Removes a page from the store outright, whatever its state.
    fn remove_page(&mut self, key: PageKey) {
        let Some(entry) = self.pages.remove(&key) else {
            return;
        };
        debug_assert_eq!(entry.refs, 0, "only unreferenced pages are removed");
        if entry.sealed {
            self.sealed_bytes -= comp_len(self.format, entry.bytes);
            self.sealed_pages -= 1;
        } else {
            self.resident_bytes -= entry.bytes;
        }
        self.stats.dropped_bytes += entry.bytes;
    }

    /// Truncates `session`'s retained pages at chain position `pos`
    /// (dereferencing every deeper page) and drops its tail.
    fn truncate_session(&mut self, session: u64, pos: usize) {
        let Some(kv) = self.sessions.get_mut(&session) else {
            return;
        };
        let model = kv.model;
        let removed: Vec<u64> = kv.page_hashes.split_off(pos);
        let tail_bytes = kv.tail_tokens as u64 * kv.bytes_per_token;
        let tail_sealed = kv.tail_sealed;
        kv.tail_tokens = 0;
        kv.tail_sealed = false;
        let empty = kv.page_hashes.is_empty();
        if tail_bytes > 0 {
            if tail_sealed {
                self.sealed_bytes -= comp_len(self.format, tail_bytes);
                self.sealed_pages -= 1;
            } else {
                self.resident_bytes -= tail_bytes;
            }
            self.stats.dropped_bytes += tail_bytes;
        }
        for hash in removed {
            let key = self.key(session, model, hash);
            self.deref_page(key);
        }
        if empty {
            self.sessions.remove(&session);
        }
    }

    /// Drops every trace of `session` (its references and private tail).
    fn drop_session(&mut self, session: u64) {
        self.truncate_session(session, 0);
    }

    /// Claims the reusable prefix for a dispatch of `session` on `model`.
    ///
    /// `page_hashes` is the chain over the *prompt's* whole pages
    /// ([`llm::PromptContent::page_keys`] at this pool's page size for the
    /// model); the longest leading run present in the store — whoever put it
    /// there — is served from retained state, and the session's own private
    /// tail extends the run when it continues it exactly.  `shared_prefix`
    /// is the declared overlap with the session's *own* previous context
    /// (the tail carries no verifying hash, so it reuses only up to the
    /// declaration); `max_reuse` caps reuse so at least one prompt token is
    /// always prefilled.  Retained state that diverges from the prompt is
    /// dropped.  Sealed parts of the claimed prefix are unsealed — the
    /// serving layer charges the decrypt-lane time for them.
    #[allow(clippy::too_many_arguments)]
    pub fn reuse_plan(
        &mut self,
        session: u64,
        model: u32,
        page_hashes: &[u64],
        bytes_per_token: u64,
        shared_prefix: usize,
        max_reuse: usize,
        now: SimTime,
    ) -> KvReuse {
        let bytes_per_token = bytes_per_token.max(1);
        let pt = self.page_tokens(bytes_per_token);

        // Divergence / model-switch: retained state that no longer matches
        // the prompt's content chain is unusable — drop it.
        let mut own_pages = 0usize;
        if let Some(kv) = self.sessions.get(&session) {
            let matches = kv.model == model
                && kv.bytes_per_token == bytes_per_token
                && kv.page_hashes.len() <= page_hashes.len()
                && kv.page_hashes.iter().zip(page_hashes).all(|(a, b)| a == b);
            if matches {
                own_pages = kv.page_hashes.len();
            } else {
                self.drop_session(session);
            }
        }

        // The longest leading chain run present in the store.
        let max_pages = (max_reuse / pt).min(page_hashes.len());
        let mut matched = 0usize;
        while matched < max_pages {
            let key = self.key(session, model, page_hashes[matched]);
            if self.pages.contains_key(&key) {
                matched += 1;
            } else {
                break;
            }
        }

        // Unseal and touch the matched pages.  Unseal work is counted in
        // compressed bytes (MAC + decrypt over what the spill actually
        // holds); a quantized format additionally pays a dequant pass over
        // the reconstructed f16 bytes.
        let mut unseal_bytes = 0u64;
        let mut dequant_bytes = 0u64;
        let quantized = self.format.is_quantized();
        for &hash in &page_hashes[..matched] {
            let key = self.key(session, model, hash);
            let entry = self.pages.get_mut(&key).expect("matched page exists");
            if entry.sealed {
                entry.sealed = false;
                let comp = comp_len(self.format, entry.bytes);
                self.sealed_bytes -= comp;
                self.sealed_pages -= 1;
                self.resident_bytes += entry.bytes;
                unseal_bytes += comp;
                self.stats.unsealed_bytes += comp;
                if quantized {
                    dequant_bytes += entry.bytes;
                    self.stats.dequant_bytes += entry.bytes;
                }
            }
            entry.last_use = now;
        }

        // The private tail continues the run only when the store coverage
        // ends exactly where the session's own pages do.
        let mut tail_reuse = 0usize;
        if matched == own_pages {
            if let Some(kv) = self.sessions.get_mut(&session) {
                let offset = own_pages * pt;
                let valid = kv.tail_tokens.min(shared_prefix.saturating_sub(offset));
                let diverged = kv.tail_tokens - valid;
                if diverged > 0 {
                    // Tail tokens past the declared overlap are stale.
                    let db = diverged as u64 * kv.bytes_per_token;
                    if kv.tail_sealed {
                        let old_tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                        let new_tb = valid as u64 * kv.bytes_per_token;
                        self.sealed_bytes -=
                            comp_len(self.format, old_tb) - comp_len(self.format, new_tb);
                        if valid == 0 {
                            kv.tail_sealed = false;
                            self.sealed_pages -= 1;
                        }
                    } else {
                        self.resident_bytes -= db;
                    }
                    self.stats.dropped_bytes += db;
                    kv.tail_tokens = valid;
                }
                tail_reuse = valid.min(max_reuse.saturating_sub(offset));
                if tail_reuse > 0 && kv.tail_sealed {
                    let tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                    let comp = comp_len(self.format, tb);
                    kv.tail_sealed = false;
                    self.sealed_bytes -= comp;
                    self.sealed_pages -= 1;
                    self.resident_bytes += tb;
                    unseal_bytes += comp;
                    self.stats.unsealed_bytes += comp;
                    if quantized {
                        dequant_bytes += tb;
                        self.stats.dequant_bytes += tb;
                    }
                }
            }
        }

        // The hit-depth distribution records every dispatch, misses included.
        *self.hit_depth.entry(matched as u32).or_insert(0) += 1;

        if matched == 0 && tail_reuse == 0 {
            if let Some(kv) = self.sessions.get_mut(&session) {
                kv.last_use = now;
            }
            return KvReuse::default();
        }

        // Reference newly claimed shared pages and update the session state.
        let shared_tokens = matched.saturating_sub(own_pages) * pt;
        for (i, &hash) in page_hashes.iter().enumerate().take(matched).skip(own_pages) {
            let key = self.key(session, model, hash);
            self.ref_page(key, pt as u64 * bytes_per_token, i as u32, now);
        }
        if matched > own_pages {
            match self.sessions.get_mut(&session) {
                Some(kv) => {
                    // The old tail (if any) is subsumed by the claimed pages.
                    let tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                    if tb > 0 {
                        if kv.tail_sealed {
                            self.sealed_bytes -= comp_len(self.format, tb);
                            self.sealed_pages -= 1;
                        } else {
                            self.resident_bytes -= tb;
                        }
                        self.stats.dropped_bytes += tb;
                    }
                    kv.page_hashes = page_hashes[..matched].to_vec();
                    kv.tail_tokens = 0;
                    kv.tail_sealed = false;
                }
                None => {
                    self.sessions.insert(
                        session,
                        SessionKv {
                            model,
                            bytes_per_token,
                            page_hashes: page_hashes[..matched].to_vec(),
                            tail_tokens: 0,
                            tail_sealed: false,
                            last_use: now,
                        },
                    );
                }
            }
        }
        if let Some(kv) = self.sessions.get_mut(&session) {
            kv.last_use = now;
        }
        self.stats.shared_tokens += shared_tokens as u64;

        KvReuse {
            reused_tokens: matched * pt + tail_reuse,
            unseal_bytes,
            dequant_bytes,
            shared_tokens,
        }
    }

    /// Records the completed request's KV state: the session now retains the
    /// full context (`total_tokens` = prompt + generated), whose whole pages
    /// hash to `page_hashes`.  Whole pages land in the content-addressed
    /// store (referencing an existing copy when another session already
    /// produced the same content); the partial last page stays private.
    pub fn on_complete(
        &mut self,
        session: u64,
        model: u32,
        page_hashes: &[u64],
        total_tokens: usize,
        bytes_per_token: u64,
        now: SimTime,
    ) {
        let bytes_per_token = bytes_per_token.max(1);
        let pt = self.page_tokens(bytes_per_token);
        let full_pages = (total_tokens / pt).min(page_hashes.len());
        let tail_tokens = total_tokens.saturating_sub(full_pages * pt);

        // Replace (not "drop") any previous accounting: the old prefix is
        // subsumed by the completed request's full KV, not lost.
        let old = self.sessions.remove(&session);
        let mut common = 0usize;
        if let Some(old) = &old {
            if old.model == model && old.bytes_per_token == bytes_per_token {
                common = old
                    .page_hashes
                    .iter()
                    .zip(page_hashes)
                    .take_while(|(a, b)| a == b)
                    .count()
                    .min(full_pages);
            }
            let tb = old.tail_tokens as u64 * old.bytes_per_token;
            if old.tail_sealed {
                self.sealed_bytes -= comp_len(self.format, tb);
                if tb > 0 {
                    self.sealed_pages -= 1;
                }
            } else {
                self.resident_bytes -= tb;
            }
        }
        // Reference the new pages first, then release the old ones, so a
        // page in both sets never transits through zero references.
        for (i, &hash) in page_hashes.iter().enumerate().take(full_pages).skip(common) {
            let key = self.key(session, model, hash);
            self.ref_page(key, pt as u64 * bytes_per_token, i as u32, now);
        }
        for &hash in page_hashes.iter().take(common) {
            let key = self.key(session, model, hash);
            if let Some(entry) = self.pages.get_mut(&key) {
                entry.last_use = now;
            }
        }
        if let Some(old) = &old {
            for &hash in &old.page_hashes[common..] {
                let key = self.key(session, old.model, hash);
                self.deref_page(key);
            }
        }
        self.resident_bytes += tail_tokens as u64 * bytes_per_token;
        self.sessions.insert(
            session,
            SessionKv {
                model,
                bytes_per_token,
                page_hashes: page_hashes[..full_pages].to_vec(),
                tail_tokens,
                tail_sealed: false,
                last_use: now,
            },
        );
        self.note_dedup();
    }

    /// Sealed *compressed* bytes a dispatch of this prompt would have to
    /// unseal — what restore-ahead could unseal on idle lanes before the
    /// queued request dispatches.
    pub fn sealed_bytes_for(
        &self,
        session: u64,
        model: u32,
        page_hashes: &[u64],
        bytes_per_token: u64,
    ) -> u64 {
        let mut total = 0u64;
        let mut matched = 0usize;
        while matched < page_hashes.len() {
            let key = self.key(session, model, page_hashes[matched]);
            match self.pages.get(&key) {
                Some(entry) => {
                    if entry.sealed {
                        total += comp_len(self.format, entry.bytes);
                    }
                    matched += 1;
                }
                None => break,
            }
        }
        if let Some(kv) = self.sessions.get(&session) {
            if kv.model == model
                && kv.bytes_per_token == bytes_per_token.max(1)
                && kv.tail_sealed
                && kv.page_hashes.len() <= matched
                && kv.page_hashes.iter().zip(page_hashes).all(|(a, b)| a == b)
            {
                total += comp_len(self.format, kv.tail_tokens as u64 * kv.bytes_per_token);
            }
        }
        total
    }

    /// Unseals up to `budget_bytes` *compressed* bytes of the sealed state a
    /// dispatch of this prompt would claim (restore-ahead on idle lanes),
    /// leading pages first, returning the compressed bytes actually
    /// credited.  The budget is in compressed bytes because that is what the
    /// decrypt lane streams; the serving layer derates its crediting rate by
    /// the dequant cost per compressed byte.
    pub fn prewarm(
        &mut self,
        session: u64,
        model: u32,
        page_hashes: &[u64],
        bytes_per_token: u64,
        budget_bytes: u64,
        now: SimTime,
    ) -> u64 {
        let quantized = self.format.is_quantized();
        let mut credited = 0u64;
        let mut matched = 0usize;
        while matched < page_hashes.len() {
            let key = self.key(session, model, page_hashes[matched]);
            let Some(entry) = self.pages.get_mut(&key) else {
                break;
            };
            if entry.sealed {
                let comp = comp_len(self.format, entry.bytes);
                if credited + comp > budget_bytes {
                    break;
                }
                entry.sealed = false;
                entry.last_use = now;
                self.sealed_bytes -= comp;
                self.sealed_pages -= 1;
                self.resident_bytes += entry.bytes;
                self.stats.prewarmed_bytes += comp;
                if quantized {
                    self.stats.dequant_bytes += entry.bytes;
                }
                credited += comp;
            }
            matched += 1;
        }
        if matched == page_hashes.len() || credited > 0 || matched > 0 {
            if let Some(kv) = self.sessions.get_mut(&session) {
                let continues = kv.model == model
                    && kv.bytes_per_token == bytes_per_token.max(1)
                    && kv.tail_sealed
                    && kv.page_hashes.len() <= matched
                    && kv.page_hashes.iter().zip(page_hashes).all(|(a, b)| a == b);
                if continues {
                    let tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                    let comp = comp_len(self.format, tb);
                    if credited + comp <= budget_bytes {
                        kv.tail_sealed = false;
                        self.sealed_bytes -= comp;
                        self.sealed_pages -= 1;
                        self.resident_bytes += tb;
                        self.stats.prewarmed_bytes += comp;
                        if quantized {
                            self.stats.dequant_bytes += tb;
                        }
                        credited += comp;
                    }
                }
            }
        }
        credited
    }

    /// The set of store pages pinned by in-flight sessions.
    fn pinned_pages(&self, active: &BTreeSet<u64>) -> BTreeSet<PageKey> {
        let mut pinned = BTreeSet::new();
        for &session in active {
            if let Some(kv) = self.sessions.get(&session) {
                for &hash in &kv.page_hashes {
                    pinned.insert(self.key(session, kv.model, hash));
                }
            }
        }
        pinned
    }

    /// Enforces the secure and spill budgets: seals (or drops) the coldest
    /// unpinned pages and tails until resident KV fits under
    /// `secure_budget`, trims the sealed area to its budget, then evicts
    /// sessions beyond the cap.  Sessions in `active` (requests in flight)
    /// and their pages are never victims.  Victim order is LRU, deepest
    /// chain position first on ties, so retained prefixes shrink from the
    /// tail and never get holes.
    pub fn enforce(&mut self, secure_budget: u64, active: &BTreeSet<u64>, now: SimTime) {
        let _ = now;
        let pinned = self.pinned_pages(active);

        // Resident pressure: seal (spill on) or drop (spill off) the worst
        // victim.  With popularity retention on, reference count leads the
        // rank: a page twenty sessions share is the last to leave secure
        // memory, because each secure byte it occupies saves twenty
        // sessions' prefill.  A private tail counts as one reference.
        while self.resident_bytes > secure_budget {
            #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
            enum Victim {
                Page(PageKey),
                Tail(u64),
            }
            let popularity = self.popularity;
            let weight = |refs: u32| if popularity { refs } else { 0 };
            let mut best: Option<((u32, SimTime, u32), Victim)> = None;
            for (&key, entry) in &self.pages {
                if entry.sealed || pinned.contains(&key) {
                    continue;
                }
                let rank = (weight(entry.refs), entry.last_use, u32::MAX - entry.depth);
                if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                    best = Some((rank, Victim::Page(key)));
                }
            }
            for (&session, kv) in &self.sessions {
                if active.contains(&session) || kv.tail_tokens == 0 || kv.tail_sealed {
                    continue;
                }
                let rank = (
                    weight(1),
                    kv.last_use,
                    u32::MAX - kv.page_hashes.len() as u32,
                );
                if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                    best = Some((rank, Victim::Tail(session)));
                }
            }
            match best {
                Some((_, Victim::Page(key))) => {
                    if self.spill {
                        let entry = self.pages.get_mut(&key).expect("victim exists");
                        entry.sealed = true;
                        let plain = entry.bytes;
                        let comp = comp_len(self.format, plain);
                        self.resident_bytes -= plain;
                        self.sealed_bytes += comp;
                        self.sealed_pages += 1;
                        self.stats.spilled_bytes += plain;
                        self.stats.spilled_compressed_bytes += comp;
                    } else {
                        self.evict_page(key);
                    }
                }
                Some((_, Victim::Tail(session))) => {
                    let kv = self.sessions.get_mut(&session).expect("victim exists");
                    let tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                    self.resident_bytes -= tb;
                    if self.spill {
                        kv.tail_sealed = true;
                        let comp = comp_len(self.format, tb);
                        self.sealed_bytes += comp;
                        self.sealed_pages += 1;
                        self.stats.spilled_bytes += tb;
                        self.stats.spilled_compressed_bytes += comp;
                    } else {
                        kv.tail_tokens = 0;
                        self.stats.dropped_bytes += tb;
                        if kv.page_hashes.is_empty() {
                            self.sessions.remove(&session);
                        }
                    }
                }
                None => break, // everything resident is pinned
            }
        }

        // Spill pressure: drop unreferenced sealed cache first, then sealed
        // tails, then (last resort) truncate sessions off a sealed page.
        while self.sealed_bytes > self.spill_budget {
            let unreferenced = self
                .pages
                .iter()
                .filter(|(_, e)| e.sealed && e.refs == 0)
                .min_by_key(|(&k, e)| ((e.last_use, u32::MAX - e.depth), k))
                .map(|(&k, _)| k);
            if let Some(key) = unreferenced {
                self.remove_page(key);
                continue;
            }
            let tail = self
                .sessions
                .iter()
                .filter(|(s, kv)| !active.contains(s) && kv.tail_sealed && kv.tail_tokens > 0)
                .min_by_key(|(&s, kv)| (kv.last_use, s))
                .map(|(&s, _)| s);
            if let Some(session) = tail {
                let kv = self.sessions.get_mut(&session).expect("victim exists");
                let tb = kv.tail_tokens as u64 * kv.bytes_per_token;
                kv.tail_tokens = 0;
                kv.tail_sealed = false;
                self.sealed_bytes -= comp_len(self.format, tb);
                self.sealed_pages -= 1;
                self.stats.dropped_bytes += tb;
                if kv.page_hashes.is_empty() {
                    self.sessions.remove(&session);
                }
                continue;
            }
            let popularity = self.popularity;
            let referenced = self
                .pages
                .iter()
                .filter(|(k, e)| e.sealed && !pinned.contains(k))
                .min_by_key(|(&k, e)| {
                    let refs = if popularity { e.refs } else { 0 };
                    ((refs, e.last_use, u32::MAX - e.depth), k)
                })
                .map(|(&k, _)| k);
            match referenced {
                Some(key) => self.evict_page(key),
                None => break, // everything sealed is pinned
            }
        }

        while self.sessions.len() > self.max_sessions {
            let victim = self
                .sessions
                .iter()
                .filter(|(s, _)| !active.contains(s))
                .min_by_key(|(&s, kv)| (kv.last_use, s))
                .map(|(&s, _)| s);
            match victim {
                Some(session) => self.drop_session(session),
                None => break,
            }
        }

        // Steady-state spill occupancy, sampled after trimming: at equal
        // budget a quantized format peaks `expansion()`× higher page counts.
        self.stats.peak_sealed_pages = self.stats.peak_sealed_pages.max(self.sealed_pages);
        self.stats.peak_sealed_bytes = self.stats.peak_sealed_bytes.max(self.sealed_bytes);
    }

    /// Drops a store page outright: releases it from every referencing
    /// session first (truncating their retained prefix at that chain
    /// position — a page is only droppable once its last reference is
    /// gone), then removes it.
    fn evict_page(&mut self, key: PageKey) {
        let holders: Vec<(u64, usize)> = self
            .sessions
            .iter()
            .filter(|(&s, kv)| kv.model == key.model && self.key(s, kv.model, 0).salt == key.salt)
            .filter_map(|(&s, kv)| {
                kv.page_hashes
                    .iter()
                    .position(|&h| h == key.hash)
                    .map(|pos| (s, pos))
            })
            .collect();
        for (session, pos) in holders {
            self.truncate_session(session, pos);
        }
        // Truncation released the references (a salted page is removed by
        // the last deref); a shared page may remain at zero references.
        if self.pages.contains_key(&key) {
            self.remove_page(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::PromptContent;

    const BPT: u64 = 1024; // bytes per token, for round numbers
    const PT: usize = 16; // tokens per page under the test configs

    fn config(spill: bool, shared: bool) -> KvConfig {
        KvConfig {
            enabled: true,
            shared,
            page_bytes: PT as u64 * BPT,
            budget_fraction: 1.0,
            spill,
            spill_budget: 1 << 40,
            max_sessions: 8,
            spill_format: SpillFormat::F16,
            popularity_retention: false,
        }
    }

    fn pool(spill: bool) -> KvPool {
        KvPool::new(&config(spill, true))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// The page-hash chain of a single-seed stream of `tokens` tokens.
    fn hashes(seed: u64, tokens: usize) -> Vec<u64> {
        PromptContent::from_seed(seed, tokens).page_keys(PT)
    }

    #[test]
    fn retain_and_reuse_full_prefix() {
        let mut p = pool(true);
        let h = hashes(1, 100);
        p.on_complete(1, 0, &h, 100, BPT, t(0));
        assert_eq!(p.resident_bytes(), 100 * BPT);
        let reuse = p.reuse_plan(1, 0, &h, BPT, 100, 139, t(1));
        assert_eq!(reuse.reused_tokens, 100);
        assert_eq!(reuse.unseal_bytes, 0);
        assert_eq!(reuse.shared_tokens, 0, "own state is not a shared hit");
    }

    #[test]
    fn reuse_is_capped_and_model_checked() {
        let mut p = pool(true);
        let h = hashes(1, 100);
        p.on_complete(1, 0, &h, 100, BPT, t(0));
        // max_reuse caps (at least one token must prefill): 6 whole pages
        // (96 tokens) plus 3 of the 4 tail tokens.
        let reuse = p.reuse_plan(1, 0, &h, BPT, 100, 99, t(1));
        assert_eq!(reuse.reused_tokens, 99);

        let h2 = hashes(2, 50);
        p.on_complete(2, 0, &h2, 50, BPT, t(0));
        // Different model: state dropped, nothing reused.
        let reuse = p.reuse_plan(2, 1, &h2, BPT, 50, 49, t(1));
        assert_eq!(reuse.reused_tokens, 0);
        assert!(!p.has_session(2));
    }

    #[test]
    fn conversation_reset_drops_state() {
        let mut p = pool(true);
        p.on_complete(1, 0, &hashes(7, 80), 80, BPT, t(0));
        // A reset conversation has entirely new content: the chain diverges
        // at page zero, nothing is reused, and the session's references are
        // released.  The now-unreferenced shared pages linger as reusable
        // cache until budget pressure removes them.
        let fresh = hashes(8, 80);
        let reuse = p.reuse_plan(1, 0, &fresh, BPT, 0, 200, t(1));
        assert_eq!(reuse, KvReuse::default());
        assert!(!p.has_session(1));
        assert_eq!(p.resident_bytes(), 80 * BPT, "pages linger as cache");
        // Pressure with spill off removes the unreferenced cache outright.
        let mut np = KvPool::new(&config(false, true));
        np.on_complete(1, 0, &hashes(7, 80), 80, BPT, t(0));
        np.reuse_plan(1, 0, &fresh, BPT, 0, 200, t(1));
        np.enforce(0, &BTreeSet::new(), t(2));
        assert_eq!(np.resident_bytes(), 0);
        assert_eq!(np.stats().dropped_bytes, 80 * BPT);
    }

    #[test]
    fn budget_pressure_spills_coldest_tail_pages() {
        let mut p = pool(true);
        let h1 = hashes(1, 64);
        let h2 = hashes(2, 64);
        p.on_complete(1, 0, &h1, 64, BPT, t(0)); // cold
        p.on_complete(2, 0, &h2, 64, BPT, t(10)); // warm
        let active = BTreeSet::new();
        p.enforce(96 * BPT, &active, t(11));
        assert_eq!(p.resident_bytes(), 96 * BPT);
        assert_eq!(p.sealed_bytes(), 32 * BPT);
        // Session 1 (colder) lost its two deepest 16-token pages.
        assert_eq!(p.sealed_bytes_for(1, 0, &h1, BPT), 32 * BPT);
        assert_eq!(p.sealed_bytes_for(2, 0, &h2, BPT), 0);
        assert_eq!(p.stats().spilled_bytes, 32 * BPT);

        // Reusing the full prefix pays unseal only for the sealed part.
        let reuse = p.reuse_plan(1, 0, &h1, BPT, 64, 1000, t(12));
        assert_eq!(reuse.reused_tokens, 64);
        assert_eq!(reuse.unseal_bytes, 32 * BPT);
    }

    #[test]
    fn no_spill_mode_drops_instead() {
        let mut p = pool(false);
        let h = hashes(3, 64);
        p.on_complete(1, 0, &h, 64, BPT, t(0));
        p.enforce(32 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.resident_bytes(), 32 * BPT);
        assert_eq!(p.sealed_bytes(), 0);
        assert_eq!(p.stats().dropped_bytes, 32 * BPT);
        // The surviving resident prefix still reuses.
        let reuse = p.reuse_plan(1, 0, &h, BPT, 64, 1000, t(2));
        assert_eq!(reuse.reused_tokens, 32);
    }

    #[test]
    fn active_sessions_are_never_victims() {
        let mut p = pool(true);
        let h1 = hashes(1, 64);
        let h2 = hashes(2, 64);
        p.on_complete(1, 0, &h1, 64, BPT, t(0));
        p.on_complete(2, 0, &h2, 64, BPT, t(10));
        let active: BTreeSet<u64> = [1u64].into_iter().collect();
        p.enforce(0, &active, t(11));
        // Session 2 spilled fully; session 1 (active) untouched.
        assert_eq!(p.resident_bytes(), 64 * BPT);
        assert_eq!(p.sealed_bytes_for(2, 0, &h2, BPT), 64 * BPT);
        assert_eq!(p.sealed_bytes_for(1, 0, &h1, BPT), 0);
    }

    #[test]
    fn spill_budget_drops_sealed_tails() {
        let mut p = KvPool::new(&KvConfig {
            spill_budget: 16 * BPT,
            ..config(true, true)
        });
        let h = hashes(5, 64);
        p.on_complete(1, 0, &h, 64, BPT, t(0));
        p.enforce(16 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.resident_bytes(), 16 * BPT);
        assert_eq!(p.sealed_bytes(), 16 * BPT, "spill area capped");
        assert_eq!(p.stats().dropped_bytes, 32 * BPT);
    }

    #[test]
    fn prewarm_moves_sealed_to_resident() {
        let mut p = pool(true);
        let h = hashes(6, 64);
        p.on_complete(1, 0, &h, 64, BPT, t(0));
        p.enforce(16 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.sealed_bytes_for(1, 0, &h, BPT), 48 * BPT);
        // A 20-token budget unseals one whole 16-token page (pages unseal
        // whole or not at all).
        let credited = p.prewarm(1, 0, &h, BPT, 20 * BPT, t(2));
        assert_eq!(credited, 16 * BPT);
        assert_eq!(p.sealed_bytes_for(1, 0, &h, BPT), 32 * BPT);
        assert_eq!(p.stats().prewarmed_bytes, 16 * BPT);
        // Prewarming more than remains credits only what exists.
        assert_eq!(p.prewarm(1, 0, &h, BPT, 1 << 40, t(3)), 32 * BPT);
        assert_eq!(p.sealed_bytes_for(1, 0, &h, BPT), 0);
    }

    #[test]
    fn session_cap_evicts_coldest() {
        let mut p = KvPool::new(&KvConfig {
            max_sessions: 2,
            ..config(true, true)
        });
        let streams: Vec<Vec<u64>> = (0..3).map(|s| hashes(100 + s, 10)).collect();
        for (s, h) in streams.iter().enumerate() {
            p.on_complete(s as u64, 0, h, 10, BPT, t(s as u64));
        }
        p.enforce(1 << 40, &BTreeSet::new(), t(10));
        assert_eq!(p.sessions(), 2);
        assert_eq!(
            p.reuse_plan(0, 0, &streams[0], BPT, 10, 9, t(11))
                .reused_tokens,
            0
        );
        assert_eq!(
            p.reuse_plan(2, 0, &streams[2], BPT, 10, 9, t(11))
                .reused_tokens,
            9
        );
    }

    // ---- content-addressed sharing ----

    #[test]
    fn shared_head_is_stored_once_and_hits_cold_sessions() {
        let mut p = pool(true);
        let head = PromptContent::from_seed(42, 64); // 4 whole pages
        let a = head.extended(1, 40);
        let b = head.extended(2, 40);
        p.on_complete(1, 0, &a.page_keys(PT), 104, BPT, t(0));
        // Session 1 alone: 104 tokens resident, nothing deduped.
        assert_eq!(p.resident_bytes(), 104 * BPT);
        assert_eq!(p.deduped_bytes(), 0);

        // A brand-new session whose prompt opens with the same head reuses
        // it without ever having completed a request — a cold-turn hit.
        let reuse = p.reuse_plan(2, 0, &b.page_keys(PT), BPT, 0, 103, t(1));
        assert_eq!(reuse.reused_tokens, 64);
        assert_eq!(reuse.shared_tokens, 64);
        assert_eq!(reuse.unseal_bytes, 0);
        // The head is still stored once; session 2 merely references it.
        assert_eq!(p.resident_bytes(), 104 * BPT);
        assert_eq!(p.deduped_bytes(), 64 * BPT);

        p.on_complete(2, 0, &b.page_keys(PT), 104, BPT, t(2));
        // Both sessions retain 104 tokens; the 64-token head is deduped.
        assert_eq!(p.resident_bytes(), (104 + 40) * BPT);
        assert_eq!(p.deduped_bytes(), 64 * BPT);
        assert_eq!(p.stats().peak_deduped_bytes, 64 * BPT);
    }

    #[test]
    fn divergent_suffixes_stay_private() {
        let mut p = pool(true);
        let head = PromptContent::from_seed(9, 32);
        let a = head.extended(1, 64);
        let b = head.extended(2, 16); // diverges after the head
        p.on_complete(1, 0, &a.page_keys(PT), 96, BPT, t(0));
        // B matches only the head — A's private suffix is unreachable even
        // though it is resident, because B's chain cannot name it.
        let reuse = p.reuse_plan(2, 0, &b.page_keys(PT), BPT, 0, 47, t(1));
        assert_eq!(reuse.reused_tokens, 32, "only the common head is shared");
        assert_eq!(reuse.shared_tokens, 32);
    }

    #[test]
    fn sealing_a_shared_page_seals_one_copy() {
        let mut p = pool(true);
        let head = PromptContent::from_seed(4, 64);
        let a = head.extended(1, 8);
        let b = head.extended(2, 8);
        p.on_complete(1, 0, &a.page_keys(PT), 72, BPT, t(0));
        p.on_complete(2, 0, &b.page_keys(PT), 72, BPT, t(1));
        assert_eq!(p.resident_bytes(), (72 + 8) * BPT);
        // Squeeze everything out: the shared head spills once (64 tokens),
        // the two private tails spill separately.
        p.enforce(0, &BTreeSet::new(), t(2));
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.sealed_bytes(), 80 * BPT);
        assert_eq!(
            p.stats().spilled_bytes,
            80 * BPT,
            "the shared head sealed one copy, not one per session"
        );
        // One session unseals the head; the other then finds it resident.
        let ra = p.reuse_plan(1, 0, &a.page_keys(PT), BPT, 72, 71, t(3));
        assert_eq!(ra.unseal_bytes, 72 * BPT);
        let rb = p.reuse_plan(2, 0, &b.page_keys(PT), BPT, 72, 71, t(4));
        assert_eq!(rb.reused_tokens, 71);
        assert_eq!(rb.unseal_bytes, 8 * BPT, "the shared head is already back");
    }

    #[test]
    fn unreferenced_shared_pages_linger_until_pressure() {
        let mut p = KvPool::new(&KvConfig {
            max_sessions: 1,
            ..config(true, true)
        });
        let a = PromptContent::from_seed(1, 64);
        p.on_complete(1, 0, &a.page_keys(PT), 64, BPT, t(0));
        let b = hashes(2, 16);
        p.on_complete(2, 0, &b, 16, BPT, t(1));
        p.enforce(1 << 40, &BTreeSet::new(), t(2));
        assert_eq!(p.sessions(), 1, "session cap evicted the coldest");
        // Session 1 is gone but its shared pages linger as cache: a new
        // session with the same content still hits them.
        let reuse = p.reuse_plan(3, 0, &a.page_keys(PT), BPT, 0, 63, t(3));
        assert_eq!(reuse.reused_tokens, 48);
        assert_eq!(reuse.shared_tokens, 48);
        // Re-referencing a zero-ref cache page (0 -> 1) dedups nothing:
        // only one session references the pages again.
        assert_eq!(p.deduped_bytes(), 0);
        // Pressure removes unreferenced cache before touching live state.
        p.enforce(0, &BTreeSet::new(), t(4));
        assert!(p.resident_bytes() <= 64 * BPT);
    }

    #[test]
    fn sharing_disabled_salts_pages_per_session() {
        let mut p = KvPool::new(&config(true, false));
        let head = PromptContent::from_seed(11, 64);
        let a = head.extended(1, 8);
        let b = head.extended(2, 8);
        p.on_complete(1, 0, &a.page_keys(PT), 72, BPT, t(0));
        // Identical head content, but sharing is off: nothing crosses.
        let reuse = p.reuse_plan(2, 0, &b.page_keys(PT), BPT, 0, 71, t(1));
        assert_eq!(reuse, KvReuse::default());
        p.on_complete(2, 0, &b.page_keys(PT), 72, BPT, t(2));
        assert_eq!(p.resident_bytes(), 144 * BPT, "two full copies");
        assert_eq!(p.deduped_bytes(), 0);
        // The session still reuses its own state as before.
        let own = p.reuse_plan(1, 0, &a.page_keys(PT), BPT, 72, 71, t(3));
        assert_eq!(own.reused_tokens, 71);
        assert_eq!(own.shared_tokens, 0);
    }

    // ---- quantized sealed spill ----

    /// Compressed bytes of one whole test page under `format`.
    fn comp_page(format: SpillFormat) -> u64 {
        format.sealed_len((PT as u64 * BPT) as usize) as u64
    }

    fn quant_config(format: SpillFormat) -> KvConfig {
        KvConfig {
            spill_format: format,
            ..config(true, true)
        }
    }

    #[test]
    fn int8_spill_accounts_compressed_bytes_and_charges_dequant() {
        let mut p = KvPool::new(&quant_config(SpillFormat::Int8));
        let h = hashes(1, 64); // 4 whole pages, no tail
        p.on_complete(1, 0, &h, 64, BPT, t(0));
        p.enforce(0, &BTreeSet::new(), t(1));
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.sealed_pages(), 4);
        let comp = comp_page(SpillFormat::Int8);
        assert_eq!(p.sealed_bytes(), 4 * comp, "spill holds compressed bytes");
        assert!(
            p.sealed_bytes() < 64 * BPT / 18 * 10,
            "well under 0.56x f16"
        );
        assert_eq!(
            p.stats().spilled_bytes,
            64 * BPT,
            "plain bytes, for drop accounting"
        );
        assert_eq!(p.stats().spilled_compressed_bytes, 4 * comp);

        // Restore pays MAC+decrypt over compressed bytes plus a dequant pass
        // over the full f16 bytes.
        let reuse = p.reuse_plan(1, 0, &h, BPT, 64, 1000, t(2));
        assert_eq!(reuse.reused_tokens, 64);
        assert_eq!(reuse.unseal_bytes, 4 * comp);
        assert_eq!(reuse.dequant_bytes, 64 * BPT);
        assert_eq!(p.sealed_bytes(), 0);
        assert_eq!(p.sealed_pages(), 0);
        assert_eq!(p.resident_bytes(), 64 * BPT, "resident state is full f16");
        assert_eq!(p.stats().dequant_bytes, 64 * BPT);
    }

    #[test]
    fn f16_format_never_reports_compression_or_dequant() {
        let mut p = pool(true);
        let h = hashes(2, 64);
        p.on_complete(1, 0, &h, 64, BPT, t(0));
        p.enforce(0, &BTreeSet::new(), t(1));
        let s = p.stats();
        assert_eq!(s.spilled_compressed_bytes, s.spilled_bytes);
        assert_eq!(p.sealed_bytes(), 64 * BPT);
        let reuse = p.reuse_plan(1, 0, &h, BPT, 64, 63, t(2));
        assert_eq!(reuse.dequant_bytes, 0);
        assert_eq!(p.stats().dequant_bytes, 0);
    }

    #[test]
    fn equal_spill_budget_holds_about_double_the_pages_at_int8() {
        // 64 pages of content squeezed through a spill budget of 16 f16
        // pages: F16 keeps 16 sealed pages, INT8 keeps ~31 — ≥ 1.9x.
        let budget = 16 * PT as u64 * BPT;
        let run = |format: SpillFormat| {
            let mut p = KvPool::new(&KvConfig {
                spill_budget: budget,
                ..quant_config(format)
            });
            let h = hashes(9, 64 * PT);
            p.on_complete(1, 0, &h, 64 * PT, BPT, t(0));
            p.enforce(0, &BTreeSet::new(), t(1));
            assert!(p.sealed_bytes() <= budget);
            p.sealed_pages()
        };
        let (f16_pages, int8_pages, int4_pages) = (
            run(SpillFormat::F16),
            run(SpillFormat::Int8),
            run(SpillFormat::Int4),
        );
        assert_eq!(f16_pages, 16);
        assert!(
            int8_pages as f64 >= 1.9 * f16_pages as f64,
            "int8 holds {int8_pages} vs f16 {f16_pages}"
        );
        assert!(
            int4_pages as f64 >= 3.7 * f16_pages as f64,
            "int4 holds {int4_pages} vs f16 {f16_pages}"
        );
    }

    #[test]
    fn popularity_retention_keeps_the_shared_head_resident() {
        // A 2-page head shared by two (cold) sessions, plus a warmer
        // single-session page.  Pure LRU seals the cold shared head; with
        // popularity retention the refs-1 page goes first even though it is
        // the most recently used.
        let head = PromptContent::from_seed(77, 32);
        let solo = hashes(78, 32);
        let run = |popularity: bool| {
            let mut p = KvPool::new(&KvConfig {
                popularity_retention: popularity,
                ..config(true, true)
            });
            p.on_complete(1, 0, &head.page_keys(PT), 32, BPT, t(0));
            p.on_complete(2, 0, &head.page_keys(PT), 32, BPT, t(1));
            p.on_complete(3, 0, &solo, 32, BPT, t(10));
            // 4 resident pages (head deduped); room for only 2.
            p.enforce(32 * BPT, &BTreeSet::new(), t(11));
            (
                p.sealed_bytes_for(1, 0, &head.page_keys(PT), BPT),
                p.sealed_bytes_for(3, 0, &solo, BPT),
            )
        };
        let (head_sealed_lru, solo_sealed_lru) = run(false);
        assert!(head_sealed_lru > 0, "LRU seals the cold shared head");
        assert_eq!(solo_sealed_lru, 0);
        let (head_sealed_pop, solo_sealed_pop) = run(true);
        assert_eq!(head_sealed_pop, 0, "popularity keeps the refs-2 head");
        assert!(solo_sealed_pop > 0, "the refs-1 page is the victim");
    }

    #[test]
    fn chain_stats_and_hit_depth_expose_where_sharing_wins() {
        let mut p = pool(true);
        let head = PromptContent::from_seed(5, 32); // 2 shared pages
        let a = head.extended(1, 32);
        let b = head.extended(2, 32);
        p.on_complete(1, 0, &a.page_keys(PT), 64, BPT, t(0));
        p.on_complete(2, 0, &b.page_keys(PT), 64, BPT, t(1));
        p.reuse_plan(1, 0, &a.page_keys(PT), BPT, 64, 1000, t(2)); // depth-4 hit
        let fresh = hashes(99, 32);
        p.reuse_plan(3, 0, &fresh, BPT, 0, 31, t(3)); // miss

        let stats = p.chain_stats();
        assert_eq!(stats.len(), 1, "one model in play");
        let s = &stats[0];
        assert_eq!(s.model, 0);
        assert_eq!(s.pages, 6, "2 shared head + 2 private tails each");
        assert_eq!(s.resident_pages, 6);
        assert_eq!(s.max_depth, 4);
        // Refs histogram: 4 private pages at refs 1, 2 head pages at refs 2.
        assert_eq!(s.refs_histogram, vec![(1, 4), (2, 2)]);
        assert_eq!(s.resident_bytes, 6 * 16 * BPT);

        let depths = p.hit_depth_histogram();
        assert_eq!(depths, vec![(0, 1), (4, 1)]);

        // A second model shows up as its own entry.
        p.on_complete(4, 1, &fresh, 32, BPT, t(4));
        assert_eq!(p.chain_stats().len(), 2);
    }

    #[test]
    fn quality_knob_maps_noise_budgets_to_formats() {
        assert_eq!(
            KvConfig::chat_default().with_noise_budget(0.0).spill_format,
            SpillFormat::F16
        );
        assert_eq!(
            KvConfig::chat_default()
                .with_noise_budget(0.003)
                .spill_format,
            SpillFormat::Int8
        );
        assert_eq!(
            KvConfig::chat_default()
                .with_noise_budget(0.05)
                .spill_format,
            SpillFormat::Int4
        );
        let q = KvConfig::chat_quantized(SpillFormat::Int8);
        assert!(q.popularity_retention && q.enabled);
    }

    #[test]
    fn models_never_share_pages() {
        let mut p = pool(true);
        let c = PromptContent::from_seed(5, 64);
        p.on_complete(1, 0, &c.page_keys(PT), 64, BPT, t(0));
        // Same content, different model: no hit.
        let reuse = p.reuse_plan(2, 1, &c.page_keys(PT), BPT, 0, 63, t(1));
        assert_eq!(reuse, KvReuse::default());
        p.on_complete(2, 1, &c.page_keys(PT), 64, BPT, t(2));
        assert_eq!(p.deduped_bytes(), 0, "each model holds its own copy");
        assert_eq!(p.resident_bytes(), 128 * BPT);
    }
}
