//! Secure paged KV-cache retention across requests (the accounting half of
//! the KV-cache manager).
//!
//! The paper releases the whole KV cache after every inference (§4.2), so a
//! multi-turn conversation re-prefills its entire history on every turn.
//! [`KvPool`] instead retains each session's KV state between requests, at
//! page granularity, under an explicit secure-memory budget:
//!
//! * after a request completes, the session's KV pages (prompt + generated
//!   tokens) stay resident in the secure working region;
//! * when resident KV exceeds the budget, cold sessions' pages are *spilled*
//!   from the tail: sealed (AES-CTR + HMAC, see [`tee_kernel::kv_pool`] for
//!   the byte-exact path) and moved to normal-world CMA memory;
//! * when the sealed spill area exceeds its own budget, the coldest sealed
//!   tails are dropped outright (those tokens re-prefill on reuse);
//! * on a follow-up turn, the request's shared conversation prefix is served
//!   from the retained pages: resident tokens are free, sealed tokens pay
//!   the unseal (decrypt-lane) time, and only the genuinely new tokens are
//!   prefilled.
//!
//! The retained prefix of a session is always contiguous from token zero —
//! `[resident][sealed]` in that order — mirroring the parameter cache's
//! contiguous-prefix invariant, so reuse never has holes.

use std::collections::{BTreeMap, BTreeSet};

use sim_core::SimTime;

/// Serving-layer configuration of the KV-cache manager.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Master switch: `false` reproduces the paper's release-everything
    /// behaviour (no KV state survives a request).
    pub enabled: bool,
    /// Spill/retention page size in bytes.
    pub page_bytes: u64,
    /// Fraction of the secure-memory headroom *left over by parameter
    /// retention* that KV pages may occupy.  Parameters are senior: the KV
    /// budget only ever uses memory the parameter policy did not claim, so
    /// enabling KV reuse never shrinks the parameter cache.
    pub budget_fraction: f64,
    /// Whether cold pages are sealed and spilled to normal-world CMA memory
    /// (`false` drops them immediately — spill-free ablation).
    pub spill: bool,
    /// Maximum sealed bytes resident in normal-world CMA memory.
    pub spill_budget: u64,
    /// Maximum sessions with retained KV state; the coldest beyond this are
    /// dropped entirely.
    pub max_sessions: usize,
}

impl KvConfig {
    /// KV retention off: the paper's behaviour, and the baseline the chat
    /// benchmarks compare against.
    pub fn disabled() -> Self {
        KvConfig {
            enabled: false,
            page_bytes: 2 * sim_core::MIB,
            budget_fraction: 0.5,
            spill: true,
            spill_budget: sim_core::GIB,
            max_sessions: 64,
        }
    }

    /// KV retention on with the default knobs — the chat-serving setup.
    pub fn chat_default() -> Self {
        KvConfig {
            enabled: true,
            ..Self::disabled()
        }
    }
}

/// What a dispatch gets out of the pool for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvReuse {
    /// Prefix tokens served from retained KV state (no prefill needed).
    pub reused_tokens: usize,
    /// Bytes of that prefix that were sealed and must be unsealed (verified
    /// + decrypted) on the CPU decrypt lane before use.
    pub unseal_bytes: u64,
}

/// Cumulative byte counters of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Bytes sealed and spilled to normal-world memory.
    pub spilled_bytes: u64,
    /// Sealed bytes unsealed at dispatch time (on the service's CPU lane).
    pub unsealed_bytes: u64,
    /// Sealed bytes unsealed ahead of dispatch on idle lanes.
    pub prewarmed_bytes: u64,
    /// Retained bytes dropped (budget pressure, divergence, eviction) — the
    /// tokens they held re-prefill on their next use.
    pub dropped_bytes: u64,
}

#[derive(Debug, Clone)]
struct SessionKv {
    /// Interned model identity the KV belongs to (a prefix is only reusable
    /// by the same model).
    model: u32,
    bytes_per_token: u64,
    /// Contiguous prefix resident in secure pages, in tokens.
    resident_tokens: usize,
    /// Tokens sealed in normal-world memory, contiguous after the resident
    /// prefix.
    sealed_tokens: usize,
    last_use: SimTime,
}

impl SessionKv {
    fn resident_bytes(&self) -> u64 {
        self.resident_tokens as u64 * self.bytes_per_token
    }

    fn sealed_bytes(&self) -> u64 {
        self.sealed_tokens as u64 * self.bytes_per_token
    }
}

/// The per-server KV retention pool: pure accounting (tokens, bytes, time is
/// charged by the serving layer), deterministic by construction.
#[derive(Debug)]
pub struct KvPool {
    page_bytes: u64,
    spill: bool,
    spill_budget: u64,
    max_sessions: usize,
    sessions: BTreeMap<u64, SessionKv>,
    resident_bytes: u64,
    sealed_bytes: u64,
    stats: KvStats,
}

impl KvPool {
    /// An empty pool with `config`'s knobs.
    pub fn new(config: &KvConfig) -> Self {
        KvPool {
            page_bytes: config.page_bytes.max(1),
            spill: config.spill,
            spill_budget: config.spill_budget,
            max_sessions: config.max_sessions.max(1),
            sessions: BTreeMap::new(),
            resident_bytes: 0,
            sealed_bytes: 0,
            stats: KvStats::default(),
        }
    }

    /// Bytes of KV currently resident in the secure region.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Bytes currently sealed in normal-world memory.
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed_bytes
    }

    /// Sessions with retained state.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Sealed bytes retained for `session` (what restore-ahead could unseal
    /// on idle lanes before the session's queued request dispatches).
    pub fn sealed_bytes_of(&self, session: u64) -> u64 {
        self.sessions
            .get(&session)
            .map_or(0, SessionKv::sealed_bytes)
    }

    fn tokens_per_page(&self, bytes_per_token: u64) -> usize {
        (self.page_bytes / bytes_per_token.max(1)).max(1) as usize
    }

    fn drop_session(&mut self, session: u64) {
        if let Some(kv) = self.sessions.remove(&session) {
            self.resident_bytes -= kv.resident_bytes();
            self.sealed_bytes -= kv.sealed_bytes();
            self.stats.dropped_bytes += kv.resident_bytes() + kv.sealed_bytes();
        }
    }

    /// Claims the reusable prefix for a dispatch of `session` on `model`.
    ///
    /// `shared_prefix` is the number of leading prompt tokens the workload
    /// declares identical to the session's previous context; `max_reuse`
    /// caps reuse so at least one prompt token is always prefilled.  Tokens
    /// retained beyond the reusable prefix (conversation reset, divergence,
    /// model switch) are dropped.  The sealed part of the claimed prefix is
    /// moved to resident — the serving layer charges its unseal time.
    pub fn reuse_plan(
        &mut self,
        session: u64,
        model: u32,
        shared_prefix: usize,
        max_reuse: usize,
        now: SimTime,
    ) -> KvReuse {
        let Some(kv) = self.sessions.get_mut(&session) else {
            return KvReuse::default();
        };
        if shared_prefix == 0 || kv.model != model {
            // The conversation restarted (or switched models): nothing of the
            // retained state matches the new prompt.
            self.drop_session(session);
            return KvReuse::default();
        }
        let available = kv.resident_tokens + kv.sealed_tokens;
        let reused = available.min(shared_prefix).min(max_reuse);
        let resident_part = reused.min(kv.resident_tokens);
        let sealed_part = reused - resident_part;
        let unseal_bytes = sealed_part as u64 * kv.bytes_per_token;
        let dropped = (available - reused) as u64 * kv.bytes_per_token;

        self.resident_bytes -= kv.resident_bytes();
        self.sealed_bytes -= kv.sealed_bytes();
        kv.resident_tokens = reused;
        kv.sealed_tokens = 0;
        kv.last_use = now;
        self.resident_bytes += kv.resident_bytes();
        self.stats.unsealed_bytes += unseal_bytes;
        self.stats.dropped_bytes += dropped;
        KvReuse {
            reused_tokens: reused,
            unseal_bytes,
        }
    }

    /// Records the completed request's KV state: the session now retains
    /// `total_tokens` (prompt + generated) resident tokens.
    pub fn on_complete(
        &mut self,
        session: u64,
        model: u32,
        total_tokens: usize,
        bytes_per_token: u64,
        now: SimTime,
    ) {
        // Replace (not "drop") any previous accounting: the old prefix is
        // subsumed by the completed request's full KV, not lost.
        if let Some(old) = self.sessions.remove(&session) {
            self.resident_bytes -= old.resident_bytes();
            self.sealed_bytes -= old.sealed_bytes();
        }
        let kv = SessionKv {
            model,
            bytes_per_token: bytes_per_token.max(1),
            resident_tokens: total_tokens,
            sealed_tokens: 0,
            last_use: now,
        };
        self.resident_bytes += kv.resident_bytes();
        self.sessions.insert(session, kv);
    }

    /// Unseals up to `bytes` of `session`'s sealed prefix ahead of dispatch
    /// (restore-ahead on idle lanes), returning the bytes actually credited.
    pub fn prewarm(&mut self, session: u64, bytes: u64) -> u64 {
        let Some(kv) = self.sessions.get_mut(&session) else {
            return 0;
        };
        let tokens = ((bytes / kv.bytes_per_token.max(1)) as usize).min(kv.sealed_tokens);
        if tokens == 0 {
            return 0;
        }
        let credited = tokens as u64 * kv.bytes_per_token;
        kv.sealed_tokens -= tokens;
        kv.resident_tokens += tokens;
        self.sealed_bytes -= credited;
        self.resident_bytes += credited;
        self.stats.prewarmed_bytes += credited;
        credited
    }

    /// Coldest session satisfying `filter`, by `(last_use, id)` — the spill
    /// and drop victim order.
    fn coldest(&self, active: &BTreeSet<u64>, filter: impl Fn(&SessionKv) -> bool) -> Option<u64> {
        self.sessions
            .iter()
            .filter(|(id, kv)| !active.contains(id) && filter(kv))
            .min_by_key(|(id, kv)| (kv.last_use, **id))
            .map(|(id, _)| *id)
    }

    /// Enforces the secure and spill budgets: spills (or drops) whole pages
    /// from the coldest inactive sessions' tails until resident KV fits
    /// under `secure_budget`, then drops the coldest sealed tails until the
    /// spill area fits its budget, then evicts sessions beyond the cap.
    /// Sessions in `active` (requests in flight) are never victims.
    pub fn enforce(&mut self, secure_budget: u64, active: &BTreeSet<u64>, _now: SimTime) {
        while self.resident_bytes > secure_budget {
            let Some(victim) = self.coldest(active, |kv| kv.resident_tokens > 0) else {
                break; // everything resident belongs to in-flight requests
            };
            let page_tokens = self.tokens_per_page(self.sessions[&victim].bytes_per_token);
            let kv = self.sessions.get_mut(&victim).expect("victim exists");
            let take = kv.resident_tokens.min(page_tokens);
            let bytes = take as u64 * kv.bytes_per_token;
            kv.resident_tokens -= take;
            self.resident_bytes -= bytes;
            if self.spill {
                // The spilled page sits directly after the (shrunk) resident
                // prefix, so `[resident][sealed]` stays contiguous.
                kv.sealed_tokens += take;
                self.sealed_bytes += bytes;
                self.stats.spilled_bytes += bytes;
            } else {
                // Without spill the tail is dropped outright; the sealed
                // region is always empty in this mode, so no hole can form.
                self.stats.dropped_bytes += bytes;
            }
            let empty = kv.resident_tokens == 0 && kv.sealed_tokens == 0;
            if empty {
                self.sessions.remove(&victim);
            }
        }
        while self.sealed_bytes > self.spill_budget {
            let Some(victim) = self.coldest(active, |kv| kv.sealed_tokens > 0) else {
                break;
            };
            let page_tokens = self.tokens_per_page(self.sessions[&victim].bytes_per_token);
            let kv = self.sessions.get_mut(&victim).expect("victim exists");
            let take = kv.sealed_tokens.min(page_tokens);
            let bytes = take as u64 * kv.bytes_per_token;
            kv.sealed_tokens -= take;
            self.sealed_bytes -= bytes;
            self.stats.dropped_bytes += bytes;
            if kv.resident_tokens == 0 && kv.sealed_tokens == 0 {
                self.sessions.remove(&victim);
            }
        }
        while self.sessions.len() > self.max_sessions {
            let Some(victim) = self.coldest(active, |_| true) else {
                break;
            };
            self.drop_session(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BPT: u64 = 1024; // bytes per token, for round numbers

    fn pool(page_tokens: u64, spill: bool) -> KvPool {
        KvPool::new(&KvConfig {
            enabled: true,
            page_bytes: page_tokens * BPT,
            budget_fraction: 1.0,
            spill,
            spill_budget: 1 << 40,
            max_sessions: 8,
        })
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn retain_and_reuse_full_prefix() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 100, BPT, t(0));
        assert_eq!(p.resident_bytes(), 100 * BPT);
        let reuse = p.reuse_plan(1, 0, 100, 139, t(1));
        assert_eq!(reuse.reused_tokens, 100);
        assert_eq!(reuse.unseal_bytes, 0);
    }

    #[test]
    fn reuse_is_capped_and_model_checked() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 100, BPT, t(0));
        // max_reuse caps (at least one token must prefill).
        let reuse = p.reuse_plan(1, 0, 100, 99, t(1));
        assert_eq!(reuse.reused_tokens, 99);

        p.on_complete(2, 0, 50, BPT, t(0));
        // Different model: state dropped, nothing reused.
        let reuse = p.reuse_plan(2, 1, 50, 49, t(1));
        assert_eq!(reuse.reused_tokens, 0);
        assert_eq!(p.sealed_bytes_of(2), 0);
        assert_eq!(p.sessions(), 1);
    }

    #[test]
    fn conversation_reset_drops_state() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 80, BPT, t(0));
        let reuse = p.reuse_plan(1, 0, 0, 200, t(1));
        assert_eq!(reuse, KvReuse::default());
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.stats().dropped_bytes, 80 * BPT);
    }

    #[test]
    fn budget_pressure_spills_coldest_tail_pages() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 64, BPT, t(0)); // cold
        p.on_complete(2, 0, 64, BPT, t(10)); // warm
        let active = BTreeSet::new();
        p.enforce(96 * BPT, &active, t(11));
        assert_eq!(p.resident_bytes(), 96 * BPT);
        assert_eq!(p.sealed_bytes(), 32 * BPT);
        // Session 1 (colder) lost two 16-token pages from its tail.
        assert_eq!(p.sealed_bytes_of(1), 32 * BPT);
        assert_eq!(p.sealed_bytes_of(2), 0);
        assert_eq!(p.stats().spilled_bytes, 32 * BPT);

        // Reusing the full prefix pays unseal only for the sealed tail.
        let reuse = p.reuse_plan(1, 0, 64, 1000, t(12));
        assert_eq!(reuse.reused_tokens, 64);
        assert_eq!(reuse.unseal_bytes, 32 * BPT);
    }

    #[test]
    fn no_spill_mode_drops_instead() {
        let mut p = pool(16, false);
        p.on_complete(1, 0, 64, BPT, t(0));
        p.enforce(32 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.resident_bytes(), 32 * BPT);
        assert_eq!(p.sealed_bytes(), 0);
        assert_eq!(p.stats().dropped_bytes, 32 * BPT);
        // The surviving resident prefix still reuses.
        let reuse = p.reuse_plan(1, 0, 64, 1000, t(2));
        assert_eq!(reuse.reused_tokens, 32);
    }

    #[test]
    fn active_sessions_are_never_victims() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 64, BPT, t(0));
        p.on_complete(2, 0, 64, BPT, t(10));
        let active: BTreeSet<u64> = [1u64].into_iter().collect();
        p.enforce(0, &active, t(11));
        // Session 2 spilled fully; session 1 (active) untouched.
        assert_eq!(p.resident_bytes(), 64 * BPT);
        assert_eq!(p.sealed_bytes_of(2), 64 * BPT);
        assert_eq!(p.sealed_bytes_of(1), 0);
    }

    #[test]
    fn spill_budget_drops_sealed_tails() {
        let mut p = KvPool::new(&KvConfig {
            enabled: true,
            page_bytes: 16 * BPT,
            budget_fraction: 1.0,
            spill: true,
            spill_budget: 16 * BPT,
            max_sessions: 8,
        });
        p.on_complete(1, 0, 64, BPT, t(0));
        p.enforce(16 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.resident_bytes(), 16 * BPT);
        assert_eq!(p.sealed_bytes(), 16 * BPT, "spill area capped");
        assert_eq!(p.stats().dropped_bytes, 32 * BPT);
    }

    #[test]
    fn prewarm_moves_sealed_to_resident() {
        let mut p = pool(16, true);
        p.on_complete(1, 0, 64, BPT, t(0));
        p.enforce(16 * BPT, &BTreeSet::new(), t(1));
        assert_eq!(p.sealed_bytes_of(1), 48 * BPT);
        let credited = p.prewarm(1, 20 * BPT);
        assert_eq!(credited, 20 * BPT);
        assert_eq!(p.sealed_bytes_of(1), 28 * BPT);
        assert_eq!(p.stats().prewarmed_bytes, 20 * BPT);
        // Prewarming more than remains credits only what exists.
        assert_eq!(p.prewarm(1, 1 << 40), 28 * BPT);
        assert_eq!(p.sealed_bytes_of(1), 0);
    }

    #[test]
    fn session_cap_evicts_coldest() {
        let mut p = KvPool::new(&KvConfig {
            enabled: true,
            page_bytes: 16 * BPT,
            budget_fraction: 1.0,
            spill: true,
            spill_budget: 1 << 40,
            max_sessions: 2,
        });
        for s in 0..3u64 {
            p.on_complete(s, 0, 10, BPT, t(s));
        }
        p.enforce(1 << 40, &BTreeSet::new(), t(10));
        assert_eq!(p.sessions(), 2);
        assert_eq!(p.reuse_plan(0, 0, 10, 9, t(11)).reused_tokens, 0);
        assert_eq!(p.reuse_plan(2, 0, 10, 9, t(11)).reused_tokens, 9);
    }
}
