//! Restoration operators and the extended computation graph (§4.1).
//!
//! Pipelined restoration extends the LLM computation graph by inserting three
//! restoration operators in front of every prefill computation operator that
//! needs parameters which are not yet resident:
//!
//! * **Allocation** — extend the contiguous secure memory (CMA migration +
//!   `extend_allocated`/`extend_protected`), runs on a CPU core;
//! * **Loading** — read the encrypted parameter bytes from flash into the
//!   allocated-but-unprotected window, runs on the I/O engine;
//! * **Decryption** — AES-CTR decrypt in place after protection, runs on a
//!   CPU core.
//!
//! The restoration order follows the topological order of the computation
//! graph, so the secure region grows exactly in blob-offset order and stays
//! contiguous.  Parameters inside the partially-cached prefix (§4.1, partial
//! parameter caching) need no restoration at all.

use llm::{ComputationGraph, Device};
use sim_core::{Bandwidth, SimDuration};

/// Timing inputs for building a restoration plan.
#[derive(Debug, Clone)]
pub struct RestoreRates {
    /// Flash sequential-read bandwidth.
    pub flash: Bandwidth,
    /// CMA allocation: CPU time per byte allocated (migration share included).
    pub alloc_secs_per_byte: f64,
    /// Fixed per-allocation-call overhead (SMC + TZASC reconfiguration).
    pub alloc_fixed: SimDuration,
    /// Decryption bandwidth.
    pub decrypt: Bandwidth,
}

impl RestoreRates {
    /// Builds rates from the platform profile and the current CMA occupancy
    /// (fraction of the to-be-allocated range that must be migrated).
    pub fn from_profile(
        profile: &tz_hal::PlatformProfile,
        cma_occupancy: f64,
        migration_threads: usize,
    ) -> Self {
        let migration_bw = profile
            .cma_bandwidth_threads(migration_threads)
            .bytes_per_sec();
        let per_byte_migration = cma_occupancy.clamp(0.0, 1.0) / migration_bw;
        let per_byte_bookkeeping = profile.page_alloc_ns as f64 * 1e-9 / tz_hal::PAGE_SIZE as f64;
        RestoreRates {
            flash: profile.flash_bandwidth(),
            alloc_secs_per_byte: per_byte_migration + per_byte_bookkeeping,
            alloc_fixed: profile.smc_switch * 2 + profile.tzasc_config,
            decrypt: profile.decrypt_bandwidth(),
        }
    }
}

/// What kind of work a pipeline operator performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeOpKind {
    /// Contiguous secure-memory allocation (CPU).
    Alloc,
    /// Flash read of encrypted parameters (I/O engine).
    Load,
    /// In-place decryption (CPU).
    Decrypt,
    /// LLM computation on a CPU core.
    CpuCompute,
    /// LLM computation on the NPU.
    NpuCompute,
}

impl PipeOpKind {
    /// Whether this operator is a restoration operator.
    pub fn is_restoration(self) -> bool {
        matches!(
            self,
            PipeOpKind::Alloc | PipeOpKind::Load | PipeOpKind::Decrypt
        )
    }

    /// Whether the operator runs on a CPU core.
    pub fn runs_on_cpu(self) -> bool {
        matches!(
            self,
            PipeOpKind::Alloc | PipeOpKind::Decrypt | PipeOpKind::CpuCompute
        )
    }
}

/// A lazily-rendered operator label.
///
/// Plans for real models carry hundreds of operators and the serving layer
/// builds (or replays) plans on every dispatch, so labels must cost nothing
/// until somebody actually reads them: the label is a `Copy` bundle of static
/// strings and indices, and the full `"alloc[3] qkv#2"` form is only
/// materialised by its [`std::fmt::Display`] impl (trace recording, test
/// failure messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLabel {
    stage: &'static str,
    op: &'static str,
    compute_index: u32,
    /// Micro-operator ordinal within a split preemptible operator;
    /// `u32::MAX` means the operator was not split.
    micro: u32,
}

impl OpLabel {
    /// A label for stage `stage` (e.g. `"alloc"`) serving computation
    /// operator `compute_index` of kind `op` (e.g. `"qkv"`).
    pub fn new(stage: &'static str, op: &'static str, compute_index: usize) -> Self {
        OpLabel {
            stage,
            op,
            compute_index: compute_index as u32,
            micro: u32::MAX,
        }
    }

    /// The same label tagged as the `i`-th micro-operator of its chain.
    pub fn with_micro(self, i: usize) -> Self {
        OpLabel {
            micro: i as u32,
            ..self
        }
    }
}

impl std::fmt::Display for OpLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}] {}", self.stage, self.compute_index, self.op)?;
        if self.micro != u32::MAX {
            write!(f, "#{}", self.micro)?;
        }
        Ok(())
    }
}

/// One operator of the extended (restoration + computation) graph.
#[derive(Debug, Clone)]
pub struct PipeOp {
    /// Index in the extended graph.
    pub id: usize,
    /// Work kind.
    pub kind: PipeOpKind,
    /// Index of the *computation* operator this operator belongs to / serves.
    /// Restoration operators inherit the index of the computation operator
    /// whose parameters they restore; this is the priority key (§4.1).
    pub compute_index: usize,
    /// Execution time on its resource.
    pub duration: SimDuration,
    /// Bytes processed (parameters restored / loaded / decrypted); zero for
    /// computation operators.
    pub bytes: u64,
    /// Operators that must complete before this one starts.
    pub deps: Vec<usize>,
    /// Whether the operator may be split into micro-operators and preempted
    /// (allocation and decryption, §4.1 "Preemptive pipeline scheduling").
    pub preemptible: bool,
    /// Human-readable label, rendered lazily.
    pub label: OpLabel,
}

/// The extended graph handed to the pipeline scheduler.
#[derive(Debug, Clone)]
pub struct RestorePlan {
    /// All operators, ids dense from zero, dependencies acyclic.
    pub ops: Vec<PipeOp>,
    /// Bytes that were already cached and needed no restoration.
    pub cached_bytes: u64,
    /// Bytes that have to be restored by this plan.
    pub restored_bytes: u64,
}

impl RestorePlan {
    /// Builds the extended graph for `graph`, given per-operator compute
    /// durations, restoration rates and a cached prefix of `cached_bytes`
    /// (parameters with blob offsets below this are already resident).
    ///
    /// `compute_time` maps a computation-op index to its duration.
    pub fn build(
        graph: &ComputationGraph,
        compute_time: impl Fn(usize) -> SimDuration,
        rates: &RestoreRates,
        cached_bytes: u64,
    ) -> Self {
        let mut ops: Vec<PipeOp> = Vec::new();
        let mut restored_bytes = 0u64;
        let mut cached_used = 0u64;

        // Chain heads for the three restoration resources: allocations must
        // happen in order (contiguity), loads are sequential on the flash
        // queue, decrypts must follow the corresponding protection.
        let mut last_alloc: Option<usize> = None;
        let mut last_load: Option<usize> = None;
        let mut last_compute: Option<usize> = None;

        for (ci, cop) in graph.ops.iter().enumerate() {
            // Bytes of this op's parameters that still need restoration.
            let mut op_restore_bytes = 0u64;
            for p in &cop.params {
                if p.end() <= cached_bytes {
                    cached_used += p.bytes;
                } else if p.offset >= cached_bytes {
                    op_restore_bytes += p.bytes;
                } else {
                    // Straddles the cache boundary.
                    cached_used += cached_bytes - p.offset;
                    op_restore_bytes += p.end() - cached_bytes;
                }
            }

            let mut decrypt_id: Option<usize> = None;
            if op_restore_bytes > 0 {
                restored_bytes += op_restore_bytes;
                // Allocation.
                let alloc_id = ops.len();
                ops.push(PipeOp {
                    id: alloc_id,
                    kind: PipeOpKind::Alloc,
                    compute_index: ci,
                    duration: rates.alloc_fixed
                        + SimDuration::from_secs_f64(
                            op_restore_bytes as f64 * rates.alloc_secs_per_byte,
                        ),
                    bytes: op_restore_bytes,
                    deps: last_alloc.into_iter().collect(),
                    preemptible: true,
                    label: OpLabel::new("alloc", cop.kind_label(), ci),
                });
                last_alloc = Some(alloc_id);

                // Loading (depends on its allocation and on the previous load).
                let load_id = ops.len();
                let mut load_deps = vec![alloc_id];
                if let Some(l) = last_load {
                    load_deps.push(l);
                }
                ops.push(PipeOp {
                    id: load_id,
                    kind: PipeOpKind::Load,
                    compute_index: ci,
                    duration: rates.flash.time_for_bytes(op_restore_bytes),
                    bytes: op_restore_bytes,
                    deps: load_deps,
                    preemptible: false,
                    label: OpLabel::new("load", cop.kind_label(), ci),
                });
                last_load = Some(load_id);

                // Decryption (depends on the load).
                let dec_id = ops.len();
                ops.push(PipeOp {
                    id: dec_id,
                    kind: PipeOpKind::Decrypt,
                    compute_index: ci,
                    duration: rates.decrypt.time_for_bytes(op_restore_bytes),
                    bytes: op_restore_bytes,
                    deps: vec![load_id],
                    preemptible: true,
                    label: OpLabel::new("decrypt", cop.kind_label(), ci),
                });
                decrypt_id = Some(dec_id);
            }

            // The computation operator itself.
            let comp_id = ops.len();
            let mut deps: Vec<usize> = decrypt_id.into_iter().collect();
            if let Some(prev) = last_compute {
                deps.push(prev);
            }
            ops.push(PipeOp {
                id: comp_id,
                kind: if cop.device == Device::Npu {
                    PipeOpKind::NpuCompute
                } else {
                    PipeOpKind::CpuCompute
                },
                compute_index: ci,
                duration: compute_time(ci),
                bytes: 0,
                deps,
                preemptible: false,
                label: OpLabel::new("compute", cop.kind_label(), ci),
            });
            last_compute = Some(comp_id);
        }

        RestorePlan {
            ops,
            cached_bytes: cached_used,
            restored_bytes,
        }
    }

    /// Total duration of all operators of a given kind (sequential sum — the
    /// critical-path inputs of Figure 12).
    pub fn total_of(&self, kind: PipeOpKind) -> SimDuration {
        self.ops
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.duration)
            .sum()
    }

    /// The three candidate critical paths of §4.1: total loading time, total
    /// CPU time (allocation + decryption + CPU compute), and total
    /// computation time (CPU + NPU compute).
    pub fn critical_paths(&self) -> CriticalPaths {
        CriticalPaths {
            io: self.total_of(PipeOpKind::Load),
            cpu: self.total_of(PipeOpKind::Alloc)
                + self.total_of(PipeOpKind::Decrypt)
                + self.total_of(PipeOpKind::CpuCompute),
            compute: self.total_of(PipeOpKind::CpuCompute) + self.total_of(PipeOpKind::NpuCompute),
        }
    }

    /// Verifies structural invariants (dense ids, acyclic backward deps).
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.id != i {
                return Err(format!("op {i} has id {}", op.id));
            }
            if op.deps.iter().any(|&d| d >= i) {
                return Err(format!("op {i} has a forward dependency"));
            }
        }
        Ok(())
    }
}

/// The three candidate pipeline critical paths (§4.1 / Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPaths {
    /// Total latency of all loading (I/O) operators.
    pub io: SimDuration,
    /// Total latency of all CPU operators (allocation, decryption, CPU compute).
    pub cpu: SimDuration,
    /// Total latency of all computation operators (CPU + NPU).
    pub compute: SimDuration,
}

impl CriticalPaths {
    /// The theoretical lower bound on TTFT for any scheduling policy: the
    /// longest of the three paths.
    pub fn lower_bound(&self) -> SimDuration {
        self.io.max(self.cpu).max(self.compute)
    }
}

/// Helper: a short label for a computation operator kind.
trait KindLabel {
    fn kind_label(&self) -> &'static str;
}

impl KindLabel for llm::ComputeOp {
    fn kind_label(&self) -> &'static str {
        match self.kind {
            llm::OpKind::Embed => "embed",
            llm::OpKind::RmsNorm => "norm",
            llm::OpKind::QkvProj => "qkv",
            llm::OpKind::Attention => "attn",
            llm::OpKind::OutProj => "wo",
            llm::OpKind::FfnUpGate => "ffn_up_gate",
            llm::OpKind::FfnDown => "ffn_down",
            llm::OpKind::FinalNorm => "final_norm",
            llm::OpKind::LmHead => "lm_head",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{CostModel, ModelSpec};

    fn plan_for(model: &ModelSpec, prompt: usize, cached: u64) -> (ComputationGraph, RestorePlan) {
        let graph = ComputationGraph::prefill(model, prompt);
        let cost = CostModel::rk3588();
        let profile = tz_hal::PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, 0.8, 4);
        let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
        let plan = RestorePlan::build(&graph, |i| times[i], &rates, cached);
        (graph, plan)
    }

    #[test]
    fn plan_is_valid_and_covers_all_bytes() {
        let model = ModelSpec::qwen2_5_3b();
        let (graph, plan) = plan_for(&model, 128, 0);
        plan.validate().unwrap();
        assert_eq!(plan.restored_bytes, graph.total_param_bytes());
        assert_eq!(plan.cached_bytes, 0);
        // Every computation op appears exactly once.
        let comps = plan.ops.iter().filter(|o| !o.kind.is_restoration()).count();
        assert_eq!(comps, graph.ops.len());
    }

    #[test]
    fn cached_prefix_removes_restoration_ops() {
        let model = ModelSpec::qwen2_5_3b();
        let (graph, plan_cold) = plan_for(&model, 128, 0);
        let total = graph.total_param_bytes();
        let (_, plan_half) = plan_for(&model, 128, total / 2);
        let (_, plan_full) = plan_for(&model, 128, total);
        assert!(plan_half.restored_bytes < plan_cold.restored_bytes);
        assert!(plan_half.cached_bytes + plan_half.restored_bytes == total);
        assert_eq!(plan_full.restored_bytes, 0);
        assert!(plan_full.ops.iter().all(|o| !o.kind.is_restoration()));
    }

    #[test]
    fn restoration_ops_precede_their_computation() {
        let model = ModelSpec::tinyllama_1_1b();
        let (_, plan) = plan_for(&model, 32, 0);
        for op in &plan.ops {
            if op.kind == PipeOpKind::CpuCompute || op.kind == PipeOpKind::NpuCompute {
                for &d in &op.deps {
                    assert!(plan.ops[d].compute_index <= op.compute_index);
                }
            }
        }
    }

    #[test]
    fn critical_paths_match_paper_regimes() {
        let model = ModelSpec::llama3_8b();
        // Short prompt: I/O dominates.
        let (_, short) = plan_for(&model, 32, 0);
        let cp_short = short.critical_paths();
        assert!(cp_short.io > cp_short.compute);
        // Long prompt: computation dominates.
        let (_, long) = plan_for(&model, 512, 0);
        let cp_long = long.critical_paths();
        assert!(cp_long.compute > cp_long.io);
        assert_eq!(
            cp_long.lower_bound(),
            cp_long.io.max(cp_long.cpu).max(cp_long.compute)
        );
    }

    #[test]
    fn alloc_and_decrypt_are_preemptible_loads_are_not() {
        let (_, plan) = plan_for(&ModelSpec::nano(), 8, 0);
        for op in &plan.ops {
            match op.kind {
                PipeOpKind::Alloc | PipeOpKind::Decrypt => assert!(op.preemptible),
                _ => assert!(!op.preemptible),
            }
        }
    }
}
