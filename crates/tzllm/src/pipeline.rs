//! The pipeline scheduler (§4.1).
//!
//! Simulates the execution of a [`RestorePlan`] on the platform's three
//! resource classes — a pool of CPU cores, the NPU, and the flash I/O engine —
//! under one of three scheduling policies:
//!
//! * [`Policy::Sequential`] — no pipelining: all restoration completes before
//!   any computation starts (the strawman behaviour and the
//!   "TZ-LLM (-pipeline)" ablation of Figure 13).
//! * [`Policy::Priority`] — the greedy priority rule of §4.1 without
//!   preemption: a ready CPU computation operator always wins; otherwise the
//!   restoration operator serving the earliest computation operator runs.
//! * [`Policy::PriorityPreemptive`] — the full TZ-LLM policy: allocation and
//!   decryption operators are split into micro-operators so a computation
//!   operator that becomes ready only waits until the next preemption point.
//!
//! The simulator is event-driven and fully deterministic; it produces the
//! makespan (the prefill-pipeline part of the TTFT), a span trace, and busy
//! time per operator class.

use std::collections::BTreeSet;

use sim_core::{SimDuration, SimTime, SpanKind, Trace};

use crate::restore::{PipeOp, PipeOpKind, RestorePlan};

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Restore everything, then compute (no overlap).
    Sequential,
    /// Priority-based scheduling without preemption.
    Priority,
    /// Priority-based scheduling with preemptive micro-operators (TZ-LLM).
    PriorityPreemptive,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of CPU cores available to the TA.
    pub cpu_cores: usize,
    /// Preemption quantum for allocation/decryption micro-operators.
    pub preempt_quantum: SimDuration,
    /// Scheduling policy.
    pub policy: Policy,
    /// Whether to record a per-operator span trace.  Figure generation and
    /// the ordering tests want the trace; the serving layer simulates plans
    /// on every dispatch and turns it off — span recording (and label
    /// rendering) is pure overhead on that path.
    pub record_trace: bool,
}

impl PipelineConfig {
    /// The TZ-LLM default on the RK3588 testbed: four big cores, 2 ms
    /// quantum, trace recording on.
    pub fn tzllm_default(cpu_cores: usize) -> Self {
        PipelineConfig {
            cpu_cores,
            preempt_quantum: SimDuration::from_millis(2),
            policy: Policy::PriorityPreemptive,
            record_trace: true,
        }
    }
}

/// Result of simulating one pipeline execution.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Completion time of the last operator (the pipeline's contribution to
    /// the TTFT).
    pub makespan: SimDuration,
    /// Busy time per operator kind.
    pub busy_alloc: SimDuration,
    /// Total loading (I/O) busy time.
    pub busy_load: SimDuration,
    /// Total decryption busy time.
    pub busy_decrypt: SimDuration,
    /// Total CPU computation busy time.
    pub busy_cpu_compute: SimDuration,
    /// Total NPU computation busy time.
    pub busy_npu_compute: SimDuration,
    /// Execution trace (one span per operator or micro-operator).
    pub trace: Trace,
}

impl PipelineResult {
    /// Total CPU time consumed by restoration work (allocation + decryption) —
    /// the REE interference source measured in Figure 16.
    pub fn restoration_cpu_time(&self) -> SimDuration {
        self.busy_alloc + self.busy_decrypt
    }
}

/// Which single-owner resource class an operator occupied while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ResourceClass {
    /// One of the CPU cores.
    Cpu,
    /// The NPU.
    Npu,
    /// The flash I/O engine.
    Io,
}

impl ResourceClass {
    fn for_kind(kind: PipeOpKind) -> ResourceClass {
        match kind {
            PipeOpKind::Alloc | PipeOpKind::Decrypt | PipeOpKind::CpuCompute => ResourceClass::Cpu,
            PipeOpKind::NpuCompute => ResourceClass::Npu,
            PipeOpKind::Load => ResourceClass::Io,
        }
    }

    fn label(self) -> &'static str {
        match self {
            ResourceClass::Cpu => "cpu",
            ResourceClass::Npu => "npu",
            ResourceClass::Io => "io",
        }
    }
}

/// A typed operator-completion event in the simulation's event heap.
///
/// Ordered by completion time, then operator id, so ties pop
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Completion {
    at: SimTime,
    id: usize,
    resource: ResourceClass,
}

#[derive(Debug, Clone)]
struct SimOp {
    kind: PipeOpKind,
    compute_index: usize,
    duration: SimDuration,
    deps_remaining: usize,
    dependents: Vec<usize>,
    label: crate::restore::OpLabel,
}

/// Expands preemptible operators into chained micro-operators.
fn expand_micro_ops(plan: &RestorePlan, quantum: SimDuration) -> Vec<PipeOp> {
    let mut out: Vec<PipeOp> = Vec::new();
    // Map original id -> id of the *last* micro-op of that original op, so
    // dependencies land on the completion of the whole chain.
    let mut last_of: Vec<usize> = Vec::with_capacity(plan.ops.len());

    for op in &plan.ops {
        let deps: Vec<usize> = op.deps.iter().map(|&d| last_of[d]).collect();
        if !op.preemptible || op.duration <= quantum || quantum.is_zero() {
            let id = out.len();
            out.push(PipeOp {
                id,
                deps,
                ..op.clone()
            });
            last_of.push(id);
            continue;
        }
        let pieces = (op.duration.as_nanos()).div_ceil(quantum.as_nanos().max(1));
        let chunks = op.duration.split(pieces);
        let mut prev: Option<usize> = None;
        let mut first_deps = deps;
        for (i, chunk) in chunks.into_iter().enumerate() {
            let id = out.len();
            let deps = match prev {
                None => std::mem::take(&mut first_deps),
                Some(p) => vec![p],
            };
            out.push(PipeOp {
                id,
                kind: op.kind,
                compute_index: op.compute_index,
                duration: chunk,
                bytes: 0,
                deps,
                preemptible: true,
                label: op.label.with_micro(i),
            });
            prev = Some(id);
        }
        last_of.push(prev.expect("at least one micro-op"));
    }
    out
}

/// Simulates the plan under the given configuration.
pub fn simulate(plan: &RestorePlan, config: &PipelineConfig) -> PipelineResult {
    let ops_src: Vec<PipeOp> = match config.policy {
        Policy::PriorityPreemptive => expand_micro_ops(plan, config.preempt_quantum),
        _ => plan
            .ops
            .iter()
            .enumerate()
            .map(|(i, o)| PipeOp { id: i, ..o.clone() })
            .collect(),
    };

    let n = ops_src.len();
    let mut ops: Vec<SimOp> = ops_src
        .iter()
        .map(|o| SimOp {
            kind: o.kind,
            compute_index: o.compute_index,
            duration: o.duration,
            deps_remaining: o.deps.len(),
            dependents: Vec::new(),
            label: o.label,
        })
        .collect();
    for o in &ops_src {
        for &d in &o.deps {
            ops[d].dependents.push(o.id);
        }
    }

    let restoration_total = ops.iter().filter(|o| o.kind.is_restoration()).count();
    let mut restoration_done = 0usize;

    // Ready sets ordered by (compute_index, id): the priority rule.
    let mut ready_cpu_compute: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut ready_cpu_restore: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut ready_npu: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut ready_io: BTreeSet<(usize, usize)> = BTreeSet::new();

    let add_ready = |id: usize,
                     op: &SimOp,
                     ready_cpu_compute: &mut BTreeSet<(usize, usize)>,
                     ready_cpu_restore: &mut BTreeSet<(usize, usize)>,
                     ready_npu: &mut BTreeSet<(usize, usize)>,
                     ready_io: &mut BTreeSet<(usize, usize)>| {
        let key = (op.compute_index, id);
        match op.kind {
            PipeOpKind::CpuCompute => {
                ready_cpu_compute.insert(key);
            }
            PipeOpKind::Alloc | PipeOpKind::Decrypt => {
                ready_cpu_restore.insert(key);
            }
            PipeOpKind::NpuCompute => {
                ready_npu.insert(key);
            }
            PipeOpKind::Load => {
                ready_io.insert(key);
            }
        }
    };

    for (i, op) in ops.iter().enumerate() {
        if op.deps_remaining == 0 {
            add_ready(
                i,
                op,
                &mut ready_cpu_compute,
                &mut ready_cpu_restore,
                &mut ready_npu,
                &mut ready_io,
            );
        }
    }

    // Resource state.
    let mut cpu_free = config.cpu_cores;
    let mut npu_free = true;
    let mut io_free = true;
    // The Sequential policy models the strawman's strictly serial cold start:
    // at most one operator (of any kind) in flight at a time.
    let serial = config.policy == Policy::Sequential;
    let mut running = 0usize;

    let mut events: std::collections::BinaryHeap<std::cmp::Reverse<Completion>> =
        std::collections::BinaryHeap::new();

    let mut trace = Trace::new();
    let mut busy = [SimDuration::ZERO; 5];
    let kind_index = |k: PipeOpKind| match k {
        PipeOpKind::Alloc => 0usize,
        PipeOpKind::Load => 1,
        PipeOpKind::Decrypt => 2,
        PipeOpKind::CpuCompute => 3,
        PipeOpKind::NpuCompute => 4,
    };
    let span_kind = |k: PipeOpKind| match k {
        PipeOpKind::Alloc => SpanKind::Allocation,
        PipeOpKind::Load => SpanKind::Loading,
        PipeOpKind::Decrypt => SpanKind::Decryption,
        PipeOpKind::CpuCompute => SpanKind::CpuCompute,
        PipeOpKind::NpuCompute => SpanKind::NpuCompute,
    };

    let mut now = SimTime::ZERO;
    let mut completed = 0usize;
    let mut makespan = SimTime::ZERO;

    // Dispatch as much ready work as resources allow at time `now`.
    macro_rules! start_op {
        ($id:expr) => {{
            let id = $id;
            let resource = ResourceClass::for_kind(ops[id].kind);
            let end = now + ops[id].duration;
            if config.record_trace {
                trace.record(
                    ops[id].label.to_string(),
                    span_kind(ops[id].kind),
                    resource.label(),
                    now,
                    end,
                );
            }
            busy[kind_index(ops[id].kind)] += ops[id].duration;
            events.push(std::cmp::Reverse(Completion {
                at: end,
                id,
                resource,
            }));
            running += 1;
        }};
    }
    macro_rules! dispatch {
        () => {{
            // I/O engine: lowest compute-index load first.
            while io_free && !(serial && running > 0) {
                let Some(&key) = ready_io.iter().next() else {
                    break;
                };
                ready_io.remove(&key);
                start_op!(key.1);
                io_free = false;
            }
            // NPU.
            while npu_free && !(serial && running > 0) {
                let Some(&key) = ready_npu.iter().next() else {
                    break;
                };
                ready_npu.remove(&key);
                start_op!(key.1);
                npu_free = false;
            }
            // CPU cores.
            while cpu_free > 0 && !(serial && running > 0) {
                let sequential_gate =
                    config.policy == Policy::Sequential && restoration_done < restoration_total;
                let pick = if sequential_gate {
                    // No computation until every restoration operator is done.
                    ready_cpu_restore.iter().next().copied()
                } else if let Some(&key) = ready_cpu_compute.iter().next() {
                    Some(key)
                } else {
                    ready_cpu_restore.iter().next().copied()
                };
                let Some(key) = pick else { break };
                let id = key.1;
                if ops[id].kind == PipeOpKind::CpuCompute {
                    ready_cpu_compute.remove(&key);
                } else {
                    ready_cpu_restore.remove(&key);
                }
                start_op!(id);
                cpu_free -= 1;
            }
        }};
    }

    dispatch!();

    while completed < n {
        let std::cmp::Reverse(event) = events
            .pop()
            .expect("pipeline deadlocked: no runnable operator");
        let Completion { at, id, resource } = event;
        now = at;
        makespan = makespan.max(at);
        match resource {
            ResourceClass::Cpu => cpu_free += 1,
            ResourceClass::Npu => npu_free = true,
            ResourceClass::Io => io_free = true,
        }
        running = running.saturating_sub(1);
        completed += 1;
        if ops[id].kind.is_restoration() {
            restoration_done += 1;
        }
        let dependents = ops[id].dependents.clone();
        for dep in dependents {
            ops[dep].deps_remaining -= 1;
            if ops[dep].deps_remaining == 0 {
                let op = ops[dep].clone();
                add_ready(
                    dep,
                    &op,
                    &mut ready_cpu_compute,
                    &mut ready_cpu_restore,
                    &mut ready_npu,
                    &mut ready_io,
                );
            }
        }
        dispatch!();
    }

    PipelineResult {
        makespan: makespan - SimTime::ZERO,
        busy_alloc: busy[0],
        busy_load: busy[1],
        busy_decrypt: busy[2],
        busy_cpu_compute: busy[3],
        busy_npu_compute: busy[4],
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::RestoreRates;
    use llm::{ComputationGraph, CostModel, ModelSpec};

    fn plan(model: &ModelSpec, prompt: usize, cached_fraction: f64, occupancy: f64) -> RestorePlan {
        let graph = ComputationGraph::prefill(model, prompt);
        let cost = CostModel::rk3588();
        let profile = tz_hal::PlatformProfile::rk3588();
        let rates = RestoreRates::from_profile(&profile, occupancy, 4);
        let times: Vec<SimDuration> = graph.ops.iter().map(|o| cost.op_time(o)).collect();
        let cached = (graph.total_param_bytes() as f64 * cached_fraction) as u64;
        RestorePlan::build(&graph, |i| times[i], &rates, cached)
    }

    fn config(policy: Policy) -> PipelineConfig {
        PipelineConfig {
            cpu_cores: 4,
            preempt_quantum: SimDuration::from_millis(2),
            policy,
            record_trace: true,
        }
    }

    #[test]
    fn pipelining_beats_sequential() {
        let plan = plan(&ModelSpec::qwen2_5_3b(), 256, 0.0, 0.8);
        let seq = simulate(&plan, &config(Policy::Sequential));
        let pri = simulate(&plan, &config(Policy::Priority));
        let pre = simulate(&plan, &config(Policy::PriorityPreemptive));
        assert!(
            pri.makespan < seq.makespan,
            "priority {} vs sequential {}",
            pri.makespan,
            seq.makespan
        );
        assert!(
            pre.makespan <= pri.makespan,
            "preemptive {} vs priority {}",
            pre.makespan,
            pri.makespan
        );
        // Sequential is at least the sum of the two phases' bottlenecks.
        let cp = plan.critical_paths();
        assert!(seq.makespan >= cp.lower_bound());
    }

    #[test]
    fn preemptive_schedule_is_close_to_the_lower_bound() {
        for (model, prompt) in [
            (ModelSpec::qwen2_5_3b(), 256usize),
            (ModelSpec::llama3_8b(), 512),
        ] {
            let plan = plan(&model, prompt, 0.2, 0.8);
            let result = simulate(&plan, &config(Policy::PriorityPreemptive));
            let bound = plan.critical_paths().lower_bound();
            let overhead =
                (result.makespan.as_secs_f64() - bound.as_secs_f64()) / bound.as_secs_f64();
            assert!(
                overhead < 0.15,
                "{}@{prompt}: makespan {} vs bound {} ({overhead:.3})",
                model.name,
                result.makespan,
                bound
            );
        }
    }

    #[test]
    fn makespan_never_beats_the_lower_bound() {
        for policy in [
            Policy::Sequential,
            Policy::Priority,
            Policy::PriorityPreemptive,
        ] {
            let plan = plan(&ModelSpec::tinyllama_1_1b(), 128, 0.0, 0.5);
            let result = simulate(&plan, &config(policy));
            assert!(result.makespan >= plan.critical_paths().lower_bound());
        }
    }

    #[test]
    fn caching_reduces_makespan_monotonically() {
        let mut last = SimDuration::MAX;
        for cached in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let plan = plan(&ModelSpec::qwen2_5_3b(), 32, cached, 0.8);
            let result = simulate(&plan, &config(Policy::PriorityPreemptive));
            assert!(
                result.makespan <= last + SimDuration::from_millis(5),
                "cached {cached}: {} vs previous {last}",
                result.makespan
            );
            last = result.makespan;
        }
    }

    #[test]
    fn fully_cached_run_is_pure_computation() {
        let plan = plan(&ModelSpec::qwen2_5_3b(), 128, 1.0, 0.8);
        let result = simulate(&plan, &config(Policy::PriorityPreemptive));
        assert_eq!(result.busy_load, SimDuration::ZERO);
        assert_eq!(result.busy_alloc, SimDuration::ZERO);
        assert_eq!(result.busy_decrypt, SimDuration::ZERO);
        let compute = result.busy_cpu_compute + result.busy_npu_compute;
        // Chain-structured graph: makespan equals total compute time.
        let diff = (result.makespan.as_secs_f64() - compute.as_secs_f64()).abs();
        assert!(diff < 1e-6);
    }

    #[test]
    fn busy_times_are_conserved_across_policies() {
        let plan = plan(&ModelSpec::tinyllama_1_1b(), 64, 0.0, 0.5);
        let a = simulate(&plan, &config(Policy::Priority));
        let b = simulate(&plan, &config(Policy::PriorityPreemptive));
        // The same work is done regardless of the schedule.
        let total = |r: &PipelineResult| {
            (r.busy_alloc + r.busy_load + r.busy_decrypt + r.busy_cpu_compute + r.busy_npu_compute)
                .as_secs_f64()
        };
        assert!((total(&a) - total(&b)).abs() < 1e-6);
    }

    #[test]
    fn trace_has_no_io_or_npu_conflicts() {
        let plan = plan(&ModelSpec::nano(), 16, 0.0, 0.5);
        let result = simulate(&plan, &config(Policy::PriorityPreemptive));
        // Single-server resources must never run two spans at once.  (CPU
        // spans share the "cpu" resource label across 4 cores, so only check
        // io and npu.)
        let mut io_npu = sim_core::Trace::new();
        for s in result.trace.spans() {
            if &*s.resource != "cpu" {
                io_npu.record(s.name.clone(), s.kind, s.resource.clone(), s.start, s.end);
            }
        }
        assert!(io_npu.find_resource_conflict().is_none());
    }
}
