//! TEE–REE NPU time-sharing simulation (co-driver design, §4.3 / §7.3).
//!
//! Drives the real co-driver components — the REE control-plane driver
//! ([`ree_kernel::ReeNpuDriver`]), the TEE data-plane driver
//! ([`tee_kernel::TeeNpuDriver`]) and the NPU device model — in a closed-loop
//! simulation where an REE neural-network application and the LLM compete for
//! the NPU.  This regenerates Figure 15 (throughput under sharing) and the
//! §7.3 world-switch overhead breakdown.

use std::sync::Arc;

use sim_core::{SimDuration, SimTime};
use tz_hal::{DeviceId, PhysAddr, PhysRange, Platform, World};

use llm::{ComputationGraph, CostModel, Device, ModelSpec};
use npu::{ExecutionContext, JobId, NpuDevice, NpuJob};
use ree_kernel::{ReeNpuDriver, ScheduleDecision};
use tee_kernel::{SwitchCost, TeeNpuDriver};

/// Where the LLM's NPU jobs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmPlacement {
    /// The LLM runs in the REE (REE-LLM-Memory baseline): its jobs are
    /// ordinary non-secure jobs with no world switching.
    Ree,
    /// The LLM runs in the TEE (TZ-LLM): its jobs are secure jobs routed
    /// through the shadow-job handoff protocol.
    Tee,
}

/// Which inference phase the LLM is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmPhase {
    /// Prefill of a prompt with the given length.
    Prefill {
        /// Prompt length in tokens.
        prompt_len: usize,
    },
    /// Autoregressive decoding.
    Decode,
}

/// Configuration of one sharing experiment.
#[derive(Debug, Clone)]
pub struct SharingConfig {
    /// The LLM model.
    pub model: ModelSpec,
    /// Prefill or decode.
    pub phase: LlmPhase,
    /// Whether the LLM runs in the REE or the TEE.
    pub placement: LlmPlacement,
    /// Whether the LLM runs at all (false = NN app exclusive).
    pub llm_active: bool,
    /// Whether the NN application runs at all (false = LLM exclusive).
    pub nn_active: bool,
    /// NPU time of one NN-application inference (e.g. ≈10 ms for YOLOv5,
    /// ≈4 ms for MobileNet on the RK3588 NPU).
    pub nn_job_time: SimDuration,
    /// Simulated horizon.
    pub horizon: SimDuration,
}

/// Result of one sharing experiment.
#[derive(Debug, Clone)]
pub struct SharingResult {
    /// NN-application inferences completed per second.
    pub nn_ops_per_sec: f64,
    /// LLM throughput in tokens per second (prompt tokens for prefill,
    /// generated tokens for decode).
    pub llm_tokens_per_sec: f64,
    /// Total number of secure-job handoffs performed.
    pub handoffs: u64,
    /// Total world-switch overhead across all handoffs.
    pub switch_overhead: SimDuration,
    /// Mean switch cost per handoff (both directions).
    pub mean_switch: SwitchCost,
}

/// The closed-loop NPU sharing simulator.
pub struct NpuSharingSim {
    platform: Arc<Platform>,
    device: NpuDevice,
    ree_driver: ReeNpuDriver,
    tee_driver: TeeNpuDriver,
    cost: CostModel,
    secure_ctx: ExecutionContext,
    next_job_id: u64,
}

impl NpuSharingSim {
    /// Creates a simulator on a fresh platform with one NPU-accessible secure
    /// region holding the LLM's job execution contexts.
    pub fn new() -> Self {
        let platform = Platform::rk3588();
        // One secure region for NPU job execution contexts (commands, page
        // tables, activations); parameters live in their own region.
        platform.with_tzasc(|t| {
            t.configure_region(
                World::Secure,
                PhysRange::new(PhysAddr::new(0x2_0000_0000), 256 * 1024 * 1024),
                [DeviceId::Npu],
            )
            .expect("fresh platform has free TZASC slots")
        });
        let secure_ctx = ExecutionContext {
            command_buffer: PhysRange::new(PhysAddr::new(0x2_0000_0000), 0x1000),
            io_page_table: PhysRange::new(PhysAddr::new(0x2_0000_1000), 0x1000),
            inputs: vec![PhysRange::new(PhysAddr::new(0x2_0100_0000), 0x100_0000)],
            outputs: vec![PhysRange::new(PhysAddr::new(0x2_0200_0000), 0x10_0000)],
        };
        let device = NpuDevice::new(platform.profile.npu_cores);
        let ree_driver = ReeNpuDriver::new(
            SimDuration::from_micros(30),
            platform.profile.npu_driver_reinit,
        );
        let tee_driver = TeeNpuDriver::new(platform.clone());
        NpuSharingSim {
            platform,
            device,
            ree_driver,
            tee_driver,
            cost: CostModel::rk3588(),
            secure_ctx,
            next_job_id: 1,
        }
    }

    fn next_id(&mut self) -> JobId {
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        id
    }

    /// The NPU time of one "LLM unit of work" and how many tokens that unit
    /// represents.  Decoding submits one fused NPU job per layer per token;
    /// prefill submits one job per layer for the whole prompt.
    fn llm_unit(&self, config: &SharingConfig) -> (SimDuration, f64, usize) {
        match config.phase {
            LlmPhase::Decode => {
                let token_time = self.cost.decode_token_time(&config.model, 128, true);
                let jobs = config.model.layers;
                (token_time / jobs as u64, 1.0 / jobs as f64, jobs)
            }
            LlmPhase::Prefill { prompt_len } => {
                let graph = ComputationGraph::prefill(&config.model, prompt_len);
                let npu_time: SimDuration = graph
                    .ops
                    .iter()
                    .filter(|o| o.device == Device::Npu)
                    .map(|o| self.cost.op_time(o))
                    .sum();
                let jobs = config.model.layers;
                (
                    npu_time / jobs as u64,
                    prompt_len as f64 / jobs as f64,
                    jobs,
                )
            }
        }
    }

    fn enqueue_llm_job(&mut self, config: &SharingConfig, duration: SimDuration) {
        let id = self.next_id();
        match config.placement {
            LlmPlacement::Ree => {
                let job = NpuJob::non_secure(id, ExecutionContext::empty(), duration, "llm-ree");
                self.ree_driver.enqueue_non_secure(job);
            }
            LlmPlacement::Tee => {
                let job = NpuJob::secure(id, self.secure_ctx.clone(), duration, "llm-tee");
                let shadow = self
                    .tee_driver
                    .init_secure_job(job)
                    .expect("execution context lies in the secure region");
                self.ree_driver.enqueue_shadow(shadow);
            }
        }
    }

    fn enqueue_nn_job(&mut self, duration: SimDuration) {
        let id = self.next_id();
        let job = NpuJob::non_secure(id, ExecutionContext::empty(), duration, "nn-app");
        self.ree_driver.enqueue_non_secure(job);
    }

    /// Runs the experiment.
    pub fn run(&mut self, config: &SharingConfig) -> SharingResult {
        let (llm_job_time, tokens_per_job, _jobs_per_unit) = self.llm_unit(config);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::ZERO + config.horizon;

        let mut nn_completed = 0u64;
        let mut llm_tokens = 0.0f64;

        if config.llm_active {
            self.enqueue_llm_job(config, llm_job_time);
        }
        if config.nn_active {
            self.enqueue_nn_job(config.nn_job_time);
        }

        while now < horizon {
            let (decision, sched_cost) = self.ree_driver.schedule_next();
            now += sched_cost;
            match decision {
                ScheduleDecision::Idle => break,
                ScheduleDecision::LaunchNonSecure(job) => {
                    let is_llm = job.label.starts_with("llm");
                    let id = job.id;
                    let done = self
                        .device
                        .launch(&self.platform, World::NonSecure, job, now)
                        .expect("non-secure NPU launch in the REE");
                    self.device.poll_completion(&self.platform, done);
                    self.ree_driver.on_completion(id, done);
                    now = done;
                    if is_llm {
                        llm_tokens += tokens_per_job;
                        if config.llm_active {
                            self.enqueue_llm_job(config, llm_job_time);
                        }
                    } else {
                        nn_completed += 1;
                        if config.nn_active {
                            self.enqueue_nn_job(config.nn_job_time);
                        }
                    }
                }
                ScheduleDecision::HandoffToTee {
                    shadow,
                    paired_secure_job,
                } => {
                    let result = self
                        .tee_driver
                        .handle_handoff(paired_secure_job, &mut self.device, now)
                        .expect("handoff of a job the TEE initialised");
                    now = result.finished_at;
                    self.ree_driver.on_completion(shadow.id, now);
                    llm_tokens += tokens_per_job;
                    if config.llm_active {
                        self.enqueue_llm_job(config, llm_job_time);
                    }
                }
            }
        }

        let elapsed = (now - SimTime::ZERO).as_secs_f64().max(1e-9);
        let handoffs = self.tee_driver.handoffs().len() as u64;
        let switch_overhead: SimDuration = self
            .tee_driver
            .handoffs()
            .iter()
            .map(|h| h.overhead())
            .sum();
        let mean_switch = if handoffs > 0 {
            let h = &self.tee_driver.handoffs()[0];
            SwitchCost {
                smc: h.switch_in.smc + h.switch_out.smc,
                tzpc: h.switch_in.tzpc + h.switch_out.tzpc,
                gic: h.switch_in.gic + h.switch_out.gic,
                tzasc: h.switch_in.tzasc + h.switch_out.tzasc,
                drain: h.switch_in.drain + h.switch_out.drain,
            }
        } else {
            SwitchCost::default()
        };

        SharingResult {
            nn_ops_per_sec: nn_completed as f64 / elapsed,
            llm_tokens_per_sec: llm_tokens / elapsed,
            handoffs,
            switch_overhead,
            mean_switch,
        }
    }
}

impl Default for NpuSharingSim {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(
        model: ModelSpec,
        phase: LlmPhase,
        placement: LlmPlacement,
        llm: bool,
        nn: bool,
    ) -> SharingConfig {
        SharingConfig {
            model,
            phase,
            placement,
            llm_active: llm,
            nn_active: nn,
            nn_job_time: SimDuration::from_millis(10), // YOLOv5-like
            horizon: SimDuration::from_secs(20),
        }
    }

    #[test]
    fn exclusive_nn_app_reaches_its_native_throughput() {
        let mut sim = NpuSharingSim::new();
        let r = sim.run(&config(
            ModelSpec::qwen2_5_3b(),
            LlmPhase::Decode,
            LlmPlacement::Ree,
            false,
            true,
        ));
        // 10 ms per inference -> ~100 ops/s minus scheduling overhead.
        assert!(
            r.nn_ops_per_sec > 90.0 && r.nn_ops_per_sec <= 100.5,
            "{}",
            r.nn_ops_per_sec
        );
        assert_eq!(r.llm_tokens_per_sec, 0.0);
    }

    #[test]
    fn sharing_reduces_both_throughputs() {
        let mut sim_ex = NpuSharingSim::new();
        let nn_ex = sim_ex
            .run(&config(
                ModelSpec::qwen2_5_3b(),
                LlmPhase::Decode,
                LlmPlacement::Tee,
                false,
                true,
            ))
            .nn_ops_per_sec;
        let mut sim_llm_ex = NpuSharingSim::new();
        let llm_ex = sim_llm_ex
            .run(&config(
                ModelSpec::qwen2_5_3b(),
                LlmPhase::Decode,
                LlmPlacement::Tee,
                true,
                false,
            ))
            .llm_tokens_per_sec;

        let mut sim_sh = NpuSharingSim::new();
        let shared = sim_sh.run(&config(
            ModelSpec::qwen2_5_3b(),
            LlmPhase::Decode,
            LlmPlacement::Tee,
            true,
            true,
        ));
        assert!(shared.nn_ops_per_sec < nn_ex);
        assert!(shared.llm_tokens_per_sec < llm_ex);
        assert!(shared.nn_ops_per_sec > 0.0 && shared.llm_tokens_per_sec > 0.0);
    }

    #[test]
    fn tee_sharing_overhead_is_small_relative_to_ree_sharing() {
        let model = ModelSpec::llama3_8b();
        let mut ree = NpuSharingSim::new();
        let r_ree = ree.run(&config(
            model.clone(),
            LlmPhase::Decode,
            LlmPlacement::Ree,
            true,
            true,
        ));
        let mut tee = NpuSharingSim::new();
        let r_tee = tee.run(&config(
            model,
            LlmPhase::Decode,
            LlmPlacement::Tee,
            true,
            true,
        ));
        // The paper reports <= 3.8% / 3.0% extra slowdown from TEE sharing.
        let nn_slowdown = 1.0 - r_tee.nn_ops_per_sec / r_ree.nn_ops_per_sec;
        let llm_slowdown = 1.0 - r_tee.llm_tokens_per_sec / r_ree.llm_tokens_per_sec;
        assert!(nn_slowdown < 0.08, "nn slowdown {nn_slowdown}");
        assert!(llm_slowdown < 0.08, "llm slowdown {llm_slowdown}");
        assert!(r_tee.handoffs > 0);
    }

    #[test]
    fn handoff_overhead_is_orders_below_driver_reinit() {
        let mut sim = NpuSharingSim::new();
        let r = sim.run(&config(
            ModelSpec::qwen2_5_3b(),
            LlmPhase::Decode,
            LlmPlacement::Tee,
            true,
            false,
        ));
        assert!(r.handoffs > 100);
        let per_handoff = r.switch_overhead.as_secs_f64() / r.handoffs as f64;
        // ~0.1 ms per handoff vs the 32 ms detach-attach baseline.
        assert!(per_handoff < 0.001, "per handoff {per_handoff}");
        assert!(r.mean_switch.total() > SimDuration::ZERO);
    }

    #[test]
    fn prefill_phase_reports_prompt_tokens() {
        let mut sim = NpuSharingSim::new();
        let r = sim.run(&config(
            ModelSpec::qwen2_5_3b(),
            LlmPhase::Prefill { prompt_len: 512 },
            LlmPlacement::Tee,
            true,
            false,
        ));
        // Prefill throughput is far higher than decode throughput.
        assert!(r.llm_tokens_per_sec > 50.0, "{}", r.llm_tokens_per_sec);
    }
}
