//! Multi-session serving on one TZ-LLM device.
//!
//! The paper evaluates one inference at a time; this module turns the same
//! calibrated machinery into a *serving system*: a [`Server`] owns a
//! catalogue of models, one shared [`CacheController`] per model, and the
//! device's CPU/NPU/flash resources, and is driven by [`sim_core::Engine`]
//! events.  Requests arrive from workload-generated arrival processes
//! ([`workloads::traffic`]), wait in an admission-bounded FIFO queue, and
//! execute through exactly the paper's request path — [`RestorePlan`] +
//! [`crate::pipeline::simulate`] — with the cached fraction of the
//! parameters read from the **live cache controller at dispatch time**, so
//! inter-request cache warm-up and eviction under REE memory pressure shape
//! each request's TTFT.
//!
//! [`RestorePlan`]: crate::restore::RestorePlan
//!
//! ## Device model: overlapped dispatch
//!
//! The paper's core insight — restoration overlaps computation *within* one
//! request (§4.1) — is lifted here to the inter-request level.  The device's
//! three resource lanes (CPU cores, the NPU, the flash channel) are tracked
//! in a shared [`sim_core::CapacityLedger`] instead of an all-or-nothing
//! busy flag, and three activities share them:
//!
//! * **Service** (restore + prefill): at most one request at a time is in
//!   its service phase.  A cold service occupies the flash channel and all
//!   big cores for its pipelined restoration; the NPU is held exclusively
//!   only for the tail window in which the prefill actually computes
//!   (restoration-dominated early pipeline stages leave it free).
//! * **Decode**: any number of completed-prefill requests (bounded by
//!   `max_inflight`) decode concurrently, processor-sharing the NPU.  A
//!   service's exclusive NPU window *preempts* running decodes — the
//!   TTFT-critical operator wins the resource and decoding resumes at the
//!   preemption boundary, mirroring [`Policy::PriorityPreemptive`]'s
//!   compute-first rule at request granularity.
//! * **Restore-ahead**: whenever the flash/decrypt/alloc lanes are idle
//!   (typically while the only active requests decode), the dispatcher peeks
//!   the queue and starts restoring the next request's missing parameters
//!   into its model's cache.  The credited bytes are a prefix of the blob —
//!   exactly the shape partial parameter caching needs — so a cold queued
//!   request is partially (often fully) warm by the time it dispatches, and
//!   cold-start cost largely vanishes under sustained load.
//!
//! With `max_inflight = 1` and restore-ahead off the dispatcher degenerates
//! to the strict serial device of the paper's prototype (one request owns
//! everything end-to-end); [`ServingConfig::serial`] builds that baseline.
//!
//! ## Iteration-level continuous batching
//!
//! With [`ServingConfig::continuous_batching`] on (the default), the decode
//! set and the prefill's exclusive NPU window are replaced by a *step loop*:
//! each NPU step runs one batched decode pass over every active sequence
//! plus at most one *chunk* of the active prefill
//! ([`ServingConfig::prefill_chunk_tokens`]).  A step costs the weight read
//! once per distinct model — amortised across the whole batch — plus every
//! sequence's per-token KV/compute cost, the serving-level realisation of
//! [`llm::CostModel::batched_step_time`]; decode on this hardware is
//! memory-bound, so a small prefill chunk rides in the weight-read slack
//! nearly for free.  A long prefill therefore interleaves between decode
//! steps instead of pausing them — `stall_preemption` goes to ~0 and
//! saturation throughput scales with the batch.  The pre-NPU part of a
//! service phase (pipelined restoration, KV unseal) is unchanged and keeps
//! streaming under an open batch on the flash/decrypt lanes.  With
//! `continuous_batching: false` the PR-5 overlapped dispatcher above is
//! reproduced bit-for-bit; [`ServingConfig::overlap`] keeps that
//! configuration as the comparison baseline.
//!
//! ## Retention between requests
//!
//! Between requests the retention policy decides how many parameter bytes
//! stay resident in secure memory — the serving-layer realisation of §4.1's
//! partial parameter caching:
//!
//! * the first request for a model always cold-starts;
//! * after each completed request the controller retains a prefix of the
//!   blob bounded by the policy and by the REE's memory headroom;
//! * with [`RetentionPolicy::Adaptive`], the retained prefix *grows* with
//!   every completed request, so consecutive warm requests get strictly
//!   faster until the cache saturates.
//!
//! The TA also stays warm between requests: only the first dispatch of a
//! model pays the configured framework-initialisation cost; subsequent
//! dispatches pay the checkpoint-restore cost.
//!
//! ## KV retention between turns
//!
//! With [`crate::kv::KvConfig::enabled`], per-session KV prefixes survive
//! request completion in a paged [`crate::kv::KvPool`]: a follow-up turn
//! whose prompt extends the session's previous context prefills only the
//! new tokens, sealed (spilled) pages pay unseal time on the decrypt lane,
//! and restore-ahead unseals a queued session's pages on idle lanes
//! alongside parameter restore.  With [`crate::kv::KvConfig::shared`] the
//! pool is additionally *content-addressed* across sessions: whole KV pages
//! are keyed by a hash chain over their token contents
//! ([`llm::PromptContent`]), so every session of a model whose prompt opens
//! with the same head (a product-wide system prompt) references one secure
//! copy — a **cold first turn** of a brand-new session hits KV state other
//! sessions produced, and [`FleetStats`] reports the shared-hit rate and
//! the deduped bytes.  With a quantized [`crate::kv::KvConfig::spill_format`]
//! sealed pages cross the world boundary as INT8/INT4 blocks — the spill
//! budget holds 2–4× the pages — and restores pay a dequant pass charged to
//! the same decrypt lane, where it hides behind the prefill's NPU window
//! like the unseal itself.  Parameters are senior in the memory budget; see
//! the [`crate::kv`] module docs for the spill/retention rules.
//!
//! ## Example
//!
//! ```
//! use tz_hal::PlatformProfile;
//! use workloads::{ArrivalProcess, WorkloadSpec};
//! use tzllm::serving::{Server, ServingConfig};
//!
//! let config = ServingConfig::paper_default(PlatformProfile::rk3588());
//! let workload = WorkloadSpec::standard(
//!     ArrivalProcess::Poisson { rate_per_sec: 0.05 },
//!     10,
//!     "qwen2.5-3b",
//! );
//! let report = Server::run_workload(config, llm::ModelSpec::catalogue(), &workload, 42);
//! assert_eq!(report.records.len(), 10);
//! let fleet = &report.fleet;
//! assert!(fleet.ttft_ms.unwrap().p99 >= fleet.ttft_ms.unwrap().p50);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use llm::{derive_seed, ComputationGraph, ModelSpec, PromptContent};
use sim_core::telemetry::{LabelId, Phase, Telemetry, Track};
use sim_core::{
    CapacityLedger, DetRng, Engine, EventScheduler, LaneEvent, LaneId, LaneUsage,
    PercentileSummary, SimDuration, SimTime, WindowedMetrics,
};
use tz_hal::PlatformProfile;
use workloads::{SessionScript, WorkloadSpec};

use crate::cache::{CacheController, CachePolicy};
use crate::kv::{ChainStoreStats, KvConfig, KvPool};
use crate::pipeline::Policy;
use crate::restore::RestoreRates;
use crate::system::{self, InferenceReport, PlanCache, ServiceParams};

/// Restore-ahead progress is credited to the cache in whole multiples of
/// this quantum, which keeps the plan cache's `cached_bytes` key space small
/// without noticeably under-crediting (1 MiB restores in well under a
/// millisecond on the calibrated lanes).
const RESTORE_AHEAD_QUANTUM: u64 = sim_core::MIB;

/// How many parameter bytes stay resident in secure memory between requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionPolicy {
    /// Release everything after each request (every request cold-starts).
    ReleaseAll,
    /// Keep a fixed fraction of the blob resident.
    Fixed(f64),
    /// Keep everything resident (no REE memory pressure).
    KeepAll,
    /// Start at zero and grow the retained prefix by `step_fraction` of the
    /// blob with each completed request, up to the REE memory headroom:
    /// retention is *earned* by demonstrated reuse, so a request sequence
    /// warms up gradually instead of pinning a whole model after one hit.
    Adaptive {
        /// Fraction of the blob added to the retention target per completion.
        step_fraction: f64,
    },
}

/// Speculative decoding on the batched step loop: a small draft model
/// proposes up to `k` tokens per active decode each step, and the batched
/// target pass verifies all proposals in one NPU sweep, emitting the
/// accepted prefix plus the bonus token the verify pass scores anyway.
/// Decode on this hardware is weight-read-bound, so at low batch occupancy
/// the extra verified positions ride in bandwidth the step already pays
/// for; at high occupancy the step is compute-bound and speculation buys
/// little — pick the fleet size accordingly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch.  `false` is the escape hatch: the step loop prices
    /// and advances exactly like the plain batched dispatcher, bit for bit
    /// — the acceptance RNG is never drawn and no draft entry is wired.
    pub enabled: bool,
    /// Draft model name, resolved via [`llm::ModelSpec::by_name`] (which
    /// also knows the non-catalogue draft entries, see
    /// [`llm::ModelSpec::drafts`]).
    pub draft_model: String,
    /// Maximum tokens the draft proposes per sequence per step.
    pub k: usize,
}

impl SpeculationConfig {
    /// Speculation off — the default everywhere.
    pub fn off() -> Self {
        SpeculationConfig {
            enabled: false,
            draft_model: String::new(),
            k: 0,
        }
    }

    /// The paper-testbed speculation setup: the Qwen2.5-0.5B draft
    /// proposing four tokens per sequence per step.
    pub fn paper_default() -> Self {
        SpeculationConfig {
            enabled: true,
            draft_model: "qwen2.5-0.5b".into(),
            k: 4,
        }
    }
}

/// A numeric model identity: the index of the model in the server's
/// catalogue.  The dispatch hot path uses this everywhere instead of cloning
/// `String` names and walking a `BTreeMap` per request; names only appear at
/// the submit boundary (interning) and in the per-request records
/// (materialised once per completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub u32);

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Platform calibration.
    pub profile: PlatformProfile,
    /// Pipeline scheduling policy used for every dispatched request.
    pub policy: Policy,
    /// Whether the framework-state checkpoint exists for the *first* dispatch
    /// of each model (later dispatches always restore from the warm TA).
    pub use_checkpoint: bool,
    /// REE memory pressure in bytes (drives CMA migration cost and bounds
    /// adaptive retention).
    pub memory_pressure: u64,
    /// Admission policy: arrivals beyond this many waiting requests are
    /// rejected.
    pub max_queue_depth: usize,
    /// Inter-request cache retention policy.
    pub retention: RetentionPolicy,
    /// Maximum requests simultaneously in flight (in service or decoding).
    /// `1` reproduces the strict serial device of the paper's prototype.
    pub max_inflight: usize,
    /// Whether to restore queued requests' parameters ahead of dispatch on
    /// idle flash/decrypt/alloc lanes.
    pub restore_ahead: bool,
    /// Iteration-level continuous batching: each NPU step runs one batched
    /// decode pass over every active sequence plus at most one prefill
    /// *chunk*, so long prefills interleave between decode steps instead of
    /// preempting them wholesale.  `false` reproduces the PR-5 overlapped
    /// dispatcher bit-for-bit ([`ServingConfig::overlap`]).
    pub continuous_batching: bool,
    /// Prefill chunk size in prompt tokens under continuous batching: at
    /// most one chunk of the active prefill joins each NPU step.
    pub prefill_chunk_tokens: usize,
    /// Capacity of the restoration-plan cache (entries); `0` disables it and
    /// every dispatch rebuilds and resimulates its plan.
    pub plan_cache_capacity: usize,
    /// The secure KV-cache manager's knobs (retention, spill, budgets).
    /// Disabled by default — [`ServingConfig::chat_default`] turns it on.
    pub kv: KvConfig,
    /// Speculative draft-model decoding on the batched step loop.  Off by
    /// default; when off, batched runs reproduce the plain step loop bit
    /// for bit.
    pub speculation: SpeculationConfig,
    /// Step-level telemetry: per-request lifecycle spans, per-lane
    /// occupancy spans, and the counter/gauge/histogram registry, exported
    /// on [`ServingReport::telemetry`].  Off by default; telemetry is
    /// observe-only — enabling it changes no event time, RNG draw, or stat
    /// (the serial-reproduction suite proves this bit for bit).
    pub telemetry: bool,
    /// Windowed metrics: `Some(window)` records per-window counters,
    /// gauges and ≤1%-error latency sketches per request class
    /// (`SessionStyle` label) at that window width, exported on
    /// [`ServingReport::metrics`] — the fleet-mergeable low-cardinality
    /// companion to the raw [`ServingConfig::telemetry`] traces.  `None`
    /// (the default) is off; like telemetry, metrics are observe-only —
    /// enabling them changes no event time, RNG draw, or stat (the
    /// serial-reproduction suite proves this bit for bit).
    pub metrics: Option<SimDuration>,
}

impl ServingConfig {
    /// The default serving setup on the paper's testbed: preemptive
    /// pipelining, checkpoints on, 8 GiB of REE pressure, a 64-deep queue,
    /// adaptive retention in 25 % steps, continuous batching over up to
    /// twelve in-flight requests with 128-token prefill chunks and
    /// restore-ahead, and a 4096-entry plan cache.
    pub fn paper_default(profile: PlatformProfile) -> Self {
        ServingConfig {
            profile,
            policy: Policy::PriorityPreemptive,
            use_checkpoint: true,
            memory_pressure: 8 * sim_core::GIB,
            max_queue_depth: 64,
            retention: RetentionPolicy::Adaptive {
                step_fraction: 0.25,
            },
            max_inflight: 12,
            restore_ahead: true,
            continuous_batching: true,
            prefill_chunk_tokens: 128,
            plan_cache_capacity: 4096,
            kv: KvConfig::disabled(),
            speculation: SpeculationConfig::off(),
            telemetry: false,
            metrics: None,
        }
    }

    /// The chat-serving setup: the paper default plus the secure KV-cache
    /// manager, so multi-turn sessions reuse their conversation prefix
    /// instead of re-prefilling it (sealed spill under memory pressure).
    pub fn chat_default(profile: PlatformProfile) -> Self {
        ServingConfig {
            kv: KvConfig::chat_default(),
            ..Self::paper_default(profile)
        }
    }

    /// The PR-5 overlapped dispatcher: per-request slots (two in flight),
    /// exclusive prefill NPU windows that preempt running decodes, no
    /// batching — kept as the comparison point the batching benchmarks and
    /// the serial-reproduction equivalence test measure against.
    pub fn overlap(profile: PlatformProfile) -> Self {
        ServingConfig {
            continuous_batching: false,
            max_inflight: 2,
            ..Self::paper_default(profile)
        }
    }

    /// The serial baseline: one request owns the whole device end-to-end and
    /// nothing is restored ahead of dispatch — the PR-1 dispatcher, kept as
    /// the comparison point for the overlap benchmarks and regression tests.
    pub fn serial(profile: PlatformProfile) -> Self {
        ServingConfig {
            max_inflight: 1,
            restore_ahead: false,
            ..Self::overlap(profile)
        }
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Dense id in submission order.
    pub id: u64,
    /// Session the request belongs to.
    pub session: u64,
    /// Catalogue model name.
    pub model: String,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Leading prompt tokens identical to the session's previous context
    /// (conversation history): the KV manager can serve them from retained
    /// state.  Zero for independent requests.
    pub shared_prefix_len: usize,
    /// Leading prompt tokens drawn from a workload-wide shared stream (a
    /// system prompt other sessions also open with); the content-addressed
    /// KV pool can serve them from pages *other* sessions produced.
    pub system_prefix_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
}

/// The queued form of a request: everything the dispatcher needs, with the
/// model interned to a [`ModelId`] (no `String` in the hot path).
#[derive(Debug, Clone)]
struct QueuedRequest {
    id: u64,
    session: u64,
    model: ModelId,
    prompt_len: usize,
    shared_prefix_len: usize,
    system_prefix_len: usize,
    output_len: usize,
    /// Content identity of the prompt's token stream — what the
    /// content-addressed KV pool hashes into page keys.
    content: PromptContent,
    /// Content seed of the response this request will generate.
    output_seed: u64,
    /// The prompt's page-hash chain at this model's page geometry, computed
    /// once at submission (empty when the KV manager is off): the
    /// restore-ahead scan walks the queue on every dispatcher event and
    /// must not re-hash every queued prompt each time.
    kv_prompt_hashes: Vec<u64>,
    /// Per-mille draft-acceptance rate of this request's response text
    /// (workload-keyed; see `ScriptedRequest::accept_permille`).
    accept_permille: u16,
    /// Seed of the request's private acceptance stream.
    accept_seed: u64,
    /// Session-style tag for telemetry span labels (`"independent"`,
    /// `"conversation"`, `"assistant"`); carried, never branched on.
    style_label: &'static str,
}

/// The full latency record of one completed request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request.
    pub request: Request,
    /// When it arrived.
    pub arrival: SimTime,
    /// When the device started serving it.
    pub dispatched: SimTime,
    /// When its first token was produced (end-to-end TTFT = this − arrival).
    pub first_token: SimTime,
    /// When its last token was produced.
    pub completed: SimTime,
    /// Fraction of the parameters that were resident when it was dispatched.
    pub cached_fraction: f64,
    /// Prompt tokens served from the session's retained KV prefix (skipped
    /// by the prefill).
    pub kv_reused_tokens: usize,
    /// Of the reused tokens, how many came from shared pages this session
    /// did not itself retain (cross-session prefix hits).
    pub kv_shared_tokens: usize,
    /// Sealed (compressed) KV bytes unsealed at dispatch for this request.
    pub kv_unsealed_bytes: u64,
    /// f16 KV bytes dequantized at dispatch for this request (zero unless
    /// the spill format is quantized).
    pub kv_dequant_bytes: u64,
    /// Decode time lost to sharing the NPU with other sequences (under
    /// batching: step time beyond the sequence's intrinsic token time; under
    /// the slot dispatcher: the processor-sharing slowdown).
    pub stall_sharing: SimDuration,
    /// Decode time lost to a prefill's exclusive NPU window preempting this
    /// sequence — ~0 under continuous batching, where prefills interleave as
    /// chunks instead of pausing the decode set.
    pub stall_preemption: SimDuration,
    /// Prefill time beyond the ideal service TTFT: how long the chunked
    /// prefill waited on decode steps it interleaved with (always zero under
    /// the slot dispatcher, whose prefill owns the NPU window outright).
    pub prefill_stall: SimDuration,
    /// The per-request evaluation (service-time TTFT, decode speed, breakdown).
    pub report: InferenceReport,
}

impl RequestRecord {
    /// Time spent waiting in the queue.
    pub fn queue_wait(&self) -> SimDuration {
        self.dispatched.saturating_since(self.arrival)
    }

    /// End-to-end TTFT as the user sees it (queueing included).
    pub fn ttft_e2e(&self) -> SimDuration {
        self.first_token.saturating_since(self.arrival)
    }

    /// The ideal decode duration at the request's intrinsic token rate; the
    /// realised `completed - first_token` exceeds this by the time lost to
    /// NPU sharing and prefill preemption.
    pub fn ideal_decode(&self) -> SimDuration {
        let tokens = self.request.output_len.saturating_sub(1);
        SimDuration::from_secs_f64(tokens as f64 / self.report.decode_tokens_per_sec)
    }

    /// Decode time lost to NPU sharing and prefill preemption — the derived
    /// total; [`RequestRecord::stall_sharing`] / [`stall_preemption`]
    /// attribute it to its two causes.
    ///
    /// [`stall_preemption`]: RequestRecord::stall_preemption
    pub fn decode_stall(&self) -> SimDuration {
        self.completed
            .saturating_since(self.first_token)
            .saturating_sub(self.ideal_decode())
    }

    /// Service TTFT as realised on the device (dispatch → first token):
    /// equals `report.ttft` under the slot dispatcher, and exceeds it by
    /// [`RequestRecord::prefill_stall`] when the chunked prefill interleaved
    /// with decode steps.
    pub fn service_ttft(&self) -> SimDuration {
        self.first_token.saturating_since(self.dispatched)
    }
}

/// Fleet-level statistics over one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Completed requests.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completion time of the last request.
    pub horizon: SimTime,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// End-to-end TTFT (arrival → first token), milliseconds.
    pub ttft_ms: Option<PercentileSummary>,
    /// Service TTFT (dispatch → first token), milliseconds.
    pub service_ttft_ms: Option<PercentileSummary>,
    /// Queue wait, milliseconds.
    pub queue_wait_ms: Option<PercentileSummary>,
    /// Time-weighted mean number of waiting requests.
    pub mean_queue_depth: f64,
    /// Maximum number of waiting requests.
    pub max_queue_depth: usize,
    /// Mean cached fraction observed at dispatch (the cache hit-fraction).
    pub mean_cached_fraction: f64,
    /// Dispatches that found a completely cold cache.
    pub cold_starts: usize,
    /// Mean decode speed across requests, tokens/s.
    pub mean_decode_tps: f64,
    /// Parameter bytes restored ahead of dispatch on otherwise idle lanes.
    pub restore_ahead_bytes: u64,
    /// Dispatches whose restoration plan came from the plan cache.
    pub plan_cache_hits: u64,
    /// Dispatches that built and simulated a fresh restoration plan.
    pub plan_cache_misses: u64,
    /// NPU busy fraction over the run.
    pub npu_utilisation: f64,
    /// Flash-channel busy fraction over the run.
    pub flash_utilisation: f64,
    /// Mean per-request decode time lost to NPU sharing and prefill
    /// preemption, milliseconds.
    pub mean_decode_stall_ms: f64,
    /// Mean per-request decode time lost to sharing the NPU with the rest of
    /// the batch (or the processor-shared decode set), milliseconds.
    pub mean_stall_sharing_ms: f64,
    /// Mean per-request decode time lost to prefill preemption, milliseconds
    /// — ~0 under continuous batching.
    pub mean_stall_preemption_ms: f64,
    /// Mean per-request prefill time beyond the ideal service TTFT (chunked
    /// prefills waiting on the decode steps they interleave with), ms.
    pub mean_prefill_stall_ms: f64,
    /// Batched NPU steps executed over the run (0 under the slot dispatcher).
    pub batch_steps: u64,
    /// Busy-time-weighted mean number of sequences per batched step.
    pub mean_batch_occupancy: f64,
    /// Batch-occupancy histogram: `(sequences in the step, busy seconds at
    /// that occupancy)` pairs, ascending.
    pub batch_occupancy: Vec<(u32, f64)>,
    /// Decode tokens generated per busy second of the batched step loop —
    /// the throughput the weight-read amortisation buys.  Counts *emitted*
    /// tokens, so under speculation this is the effective tokens/s
    /// (accepted prefixes included, rejected proposals excluded).
    pub batched_decode_tps: f64,
    /// Longest single batched step, milliseconds — bounds how long any
    /// decode token can be delayed by the step it shares.
    pub max_batch_step_ms: f64,
    /// Starvation guard: the maximum number of steps any decode sat in the
    /// batch without producing a token (structurally 0 — every member of
    /// every step advances by at least one token).
    pub batch_max_steps_behind: u64,
    /// Batched steps in which at least one sequence ran a speculative
    /// draft + verify pass (0 when speculation is off).
    pub spec_steps: u64,
    /// Draft tokens proposed across the run.
    pub spec_proposed_tokens: u64,
    /// Proposed tokens the verify pass accepted.
    pub spec_accepted_tokens: u64,
    /// Proposed tokens rejected and rewound off the paged KV tail.
    pub spec_rejected_tokens: u64,
    /// Acceptance rate over all proposals (0 when none were made).
    pub spec_accept_rate: f64,
    /// Share of batched busy time spent in draft passes and the one-time
    /// draft weight restore — the overhead the accepted tokens must win
    /// back before speculation nets out positive.
    pub spec_draft_overhead: f64,
    /// Histogram of tokens emitted per sequence per speculative step
    /// (accepted prefix + bonus token): `(emitted, sequence-steps)` pairs,
    /// ascending.  Empty when speculation is off.
    pub spec_emitted_per_step: Vec<(u32, u64)>,
    /// Mean tokens emitted per sequence per speculative step — the
    /// *effective* tokens/step that service-demand estimates (e.g. for
    /// SLO-aware admission) must use instead of 1.
    pub spec_mean_emitted_per_step: f64,
    /// KV hit rate: reused prefix tokens over the shared-prefix tokens the
    /// workload declared reusable (0 when no request had a shared prefix).
    pub kv_hit_rate: f64,
    /// Total prompt tokens served from retained KV state.
    pub kv_reused_tokens: u64,
    /// Plain (f16) KV bytes sealed and spilled to normal-world memory.
    pub kv_spilled_bytes: u64,
    /// Compressed bytes those seals actually wrote to normal-world memory —
    /// equal to `kv_spilled_bytes` at `SpillFormat::F16`, ~0.52× at INT8,
    /// ~0.27× at INT4.
    pub kv_spilled_compressed_bytes: u64,
    /// Sealed (compressed) KV bytes unsealed at dispatch time.
    pub kv_unsealed_bytes: u64,
    /// Sealed (compressed) KV bytes unsealed ahead of dispatch on idle lanes.
    pub kv_restore_ahead_bytes: u64,
    /// f16 bytes reconstructed by dequantization across unseals and
    /// prewarms (zero unless the spill format is quantized).
    pub kv_dequant_bytes: u64,
    /// Peak sealed pages/tails simultaneously held in the spill region — at
    /// equal spill budget a quantized format holds 2–4× more.
    pub kv_peak_sealed_pages: u64,
    /// Peak compressed bytes simultaneously held in the spill region.
    pub kv_peak_sealed_bytes: u64,
    /// Retained KV bytes dropped (budget pressure, divergence, eviction).
    pub kv_dropped_bytes: u64,
    /// Prompt tokens served from shared pages the session did not itself
    /// retain (cross-session prefix hits).
    pub kv_shared_tokens: u64,
    /// Shared-hit rate on cold first turns: tokens served from other
    /// sessions' pages over the system-prefix tokens cold turns declared
    /// shareable (0 when no cold turn declared one).
    pub kv_shared_hit_rate: f64,
    /// Peak secure bytes the content-addressed store saved versus
    /// per-session copies: `Σ (refs − 1) × page bytes` at its maximum.
    pub kv_deduped_bytes: u64,
    /// End-to-end TTFT of follow-up turns (requests with a shared prefix),
    /// milliseconds — the KV manager's headline metric.
    pub followup_ttft_ms: Option<PercentileSummary>,
    /// Service TTFT (dispatch → first token) of follow-up turns, ms.
    pub followup_service_ttft_ms: Option<PercentileSummary>,
    /// Per-model chain-store snapshot at the end of the run (page counts,
    /// refs histogram, residency split) — where the sharing wins come from.
    pub kv_chain: Vec<ChainStoreStats>,
    /// Dispatch hit-depth distribution: `(whole pages matched, dispatches)`
    /// pairs, ascending (depth 0 = full miss).
    pub kv_hit_depth: Vec<(u32, u64)>,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests rejected by admission control, in arrival order.
    pub rejected: Vec<Request>,
    /// Fleet-level statistics.
    pub fleet: FleetStats,
    /// Final accounting of the device lanes (capacity, peak concurrent use,
    /// busy time) — the overlap property tests assert peaks never exceed
    /// capacity.
    pub resources: Vec<LaneUsage>,
    /// The telemetry side buffer (`Some` iff [`ServingConfig::telemetry`]):
    /// request-lifecycle and lane spans, counters, gauges, histograms —
    /// export with [`Telemetry::chrome_trace_json`] or the report helpers
    /// in [`crate::telemetry`].
    pub telemetry: Option<Telemetry>,
    /// The windowed metrics registry (`Some` iff [`ServingConfig::metrics`]):
    /// per-class TTFT/TBT latency sketches, queue-depth and batch-occupancy
    /// gauges, and per-lane busy-time counters, all in fixed-width time
    /// windows — what the fleet merge aggregates and the SLO monitor
    /// ([`crate::slo`]) evaluates.
    pub metrics: Option<WindowedMetrics>,
}

struct ModelEntry {
    spec: ModelSpec,
    cache: CacheController,
    /// Current adaptive retention target in bytes.
    retained_target: u64,
    /// Whether the TA for this model has dispatched at least once (warm).
    warm: bool,
    /// Requests of this model currently in flight (service or decode).
    active: usize,
    /// Steady-state restore-ahead bandwidth in bytes/s: the reciprocal of
    /// the slower of the flash lane and the (big_cores − 1)-thread
    /// alloc+decrypt lane, from the same calibrated [`RestoreRates`] the
    /// dispatch path uses.
    restore_rate: f64,
    /// `ComputationGraph::total_param_bytes()` for this model, precomputed
    /// once (prompt-length independent) for the dispatch hot path.
    graph_param_bytes: u64,
    /// KV bytes per token of this model (for the KV pool's accounting).
    kv_bytes_per_token: u64,
    /// The batched step-cost coefficients (weight-pass seconds, affine
    /// decode compute in the KV length), precomputed once per model.
    step: llm::BatchedStepCosts,
    /// Per-token world-switch cost of a decode step of this model
    /// (two co-driver handoffs per layer), seconds.
    handoff_secs: f64,
    /// Speculative step-cost coefficients against the configured draft
    /// (`None` when speculation is off, and on the draft's own entry).
    spec_costs: Option<llm::SpeculativeStepCosts>,
}

/// The request currently in its service (restore + prefill) phase.
struct ActiveService {
    record: RequestRecord,
    model: ModelId,
    /// Whether this service restores bytes (and therefore occupies the flash
    /// channel for the pipeline window).
    restoring: bool,
    /// CPU cores held for the service window (all big cores when restoring
    /// or unsealing KV pages — the decrypt threads are really busy — else
    /// one core for the CPU-resident operators).
    cores_held: u64,
    /// Page-hash chain of the request's *full* context (prompt + response),
    /// precomputed for the KV pool's completion-time retention.
    kv_full_hashes: Vec<u64>,
    /// Tokens of that full context.
    kv_total_tokens: usize,
    /// Acceptance model of the response (carried through to the decode).
    accept_permille: u16,
    accept_seed: u64,
}

/// A request past its first token, processor-sharing the NPU with its peers
/// (the slot dispatcher's decode model; the batched step loop uses
/// [`BatchedDecode`]).
struct ActiveDecode {
    record: RequestRecord,
    model: ModelId,
    /// NPU nanoseconds still needed to finish decoding at the intrinsic
    /// rate.  Fractional: under processor sharing each of `n` decodes
    /// advances by `dt / n`, and truncating that to whole nanoseconds per
    /// accounting event loses sub-nanosecond progress at high fan-out.
    remaining_ns: f64,
    /// Decode time lost to processor-sharing the NPU, nanoseconds.
    stall_sharing_ns: f64,
    /// Decode time lost to prefill NPU windows pausing the set, nanoseconds.
    stall_preemption_ns: f64,
    kv_full_hashes: Vec<u64>,
    kv_total_tokens: usize,
}

/// A prefill whose pre-NPU phase (pipelined restoration, KV unseal) is done:
/// its NPU-side work now executes as chunk-sized slices interleaved into the
/// batched step loop, at most one chunk per step.
struct BatchedPrefill {
    record: RequestRecord,
    model: ModelId,
    /// NPU seconds of prefill work left — the plan's exclusive NPU window,
    /// consumed chunk by chunk.
    npu_secs_left: f64,
    /// NPU seconds one full chunk costs (the window split proportionally
    /// over the prompt's new tokens).
    chunk_secs: f64,
    /// Chunks already consumed / total chunks, for telemetry span labels
    /// (`"chunk 3/9"`); pure bookkeeping, never priced.
    chunks_done: u32,
    chunks_total: u32,
    kv_full_hashes: Vec<u64>,
    kv_total_tokens: usize,
    /// Acceptance model of the response (carried through to the decode).
    accept_permille: u16,
    accept_seed: u64,
}

/// A sequence decoding inside the batched step loop: every step it is a
/// member of produces exactly one of its tokens.
struct BatchedDecode {
    record: RequestRecord,
    model: ModelId,
    tokens_left: u64,
    /// Steps this sequence has been a member of (tracked independently of
    /// `tokens_left` so the starvation guard measures, not assumes).
    steps_seen: u64,
    /// Per-step compute seconds at the sequence's final KV length (decode
    /// compute is affine in the KV length; pricing every step at the final
    /// length keeps the step loop O(batch) and errs conservatively).
    compute_secs: f64,
    /// The solo token time — `max(compute, weight pass) + handoffs` — that
    /// sharing-stall accounting compares each step against.
    intrinsic_secs: f64,
    stall_sharing_ns: f64,
    kv_full_hashes: Vec<u64>,
    kv_total_tokens: usize,
    /// The KV length every step is priced at (prompt + response; decode
    /// compute is affine in it) — also what the draft and verify passes
    /// price their per-position MACs against.
    kv_len: usize,
    /// Per-mille probability that the target accepts one draft proposal of
    /// this response, and the request's private acceptance stream.
    accept_permille: u16,
    accept_rng: DetRng,
    /// Tokens the draft proposed for this sequence in the in-flight step
    /// (0 when it runs a plain step, or when speculation is off).
    step_proposed: u64,
}

/// The sealed KV state a background restore is unsealing for one queued
/// request: the pool is addressed by content, so the prompt's page-hash
/// chain (not just the session id) names what to prewarm — including shared
/// head pages a brand-new session never retained itself.
struct RestoreKv {
    session: u64,
    model: u32,
    bytes_per_token: u64,
    page_hashes: Vec<u64>,
    bytes: u64,
}

/// An in-progress background restoration of a queued request's missing
/// parameters and its sealed KV prefix — the parameters stream first, then
/// the KV pages unseal on the same lanes.
struct ActiveRestore {
    model: ModelId,
    started: SimTime,
    rate: f64,
    param_bytes: u64,
    kv: Option<RestoreKv>,
    kv_rate: f64,
    /// Whether the flash lane is held: parameters stream from flash, but a
    /// KV-only restore unseals DRAM-resident pages (decrypt threads only).
    holds_flash: bool,
}

struct ServerState {
    config: ServingConfig,
    models: Vec<ModelEntry>,
    model_ids: BTreeMap<String, ModelId>,
    queue: VecDeque<(QueuedRequest, SimTime)>,
    /// Requests in flight (in service or decoding).
    inflight: usize,
    service: Option<ActiveService>,
    decodes: Vec<ActiveDecode>,
    /// While the service's exclusive NPU window is open, decodes are paused.
    decodes_paused: bool,
    /// When the current pause began (valid while `decodes_paused`): the
    /// window is credited to each paused decode's preemption stall on resume.
    pause_started: SimTime,
    /// Invalidates scheduled decode-completion events after a set change.
    decode_epoch: u64,
    /// Instant up to which every running decode's progress is accounted.
    decode_last: SimTime,
    /// Sequences decoding in the batched step loop.
    batch_decodes: Vec<BatchedDecode>,
    /// The prefill currently interleaving chunks into the step loop (at most
    /// one at a time — later arrivals wait in `batch_pending`).
    batch_prefill: Option<BatchedPrefill>,
    /// Prefills past their pre-NPU phase waiting for the chunk slot.
    batch_pending: VecDeque<BatchedPrefill>,
    /// Whether a step-end event is in flight (the loop is stepping).
    batch_running: bool,
    /// Duration of the in-flight step, seconds.
    batch_step_secs: f64,
    /// Chunk seconds the in-flight step consumes from the active prefill.
    batch_step_chunk_secs: f64,
    /// Sub-nanosecond residue of step-duration rounding, carried into the
    /// next step so a long run of steps accumulates no drift.
    batch_carry_ns: f64,
    /// Whether the step loop currently holds the NPU lane.
    batch_npu_held: bool,
    batch_steps: u64,
    batch_busy_ns: u64,
    batch_decode_tokens: u64,
    /// Busy nanoseconds spent at each batch occupancy (sequences per step).
    batch_occupancy_ns: BTreeMap<u32, u64>,
    batch_max_step_ns: u64,
    batch_max_steps_behind: u64,
    /// Entry index of the speculation draft model, appended after the
    /// catalogue (`None` when speculation is off).
    draft: Option<ModelId>,
    /// Steps in which at least one sequence ran a draft + verify pass.
    spec_steps: u64,
    /// Draft tokens proposed across all sequences and steps.
    spec_proposed_tokens: u64,
    /// Proposed tokens the verify pass accepted.
    spec_accepted_tokens: u64,
    /// Proposed tokens rejected — their paged-KV tail entries are rewound
    /// before the next step is priced.
    spec_rejected_tokens: u64,
    /// Nanoseconds of step time spent in draft passes (and the one-time
    /// draft weight restore) — the overhead accepted tokens must win back.
    spec_draft_ns: u64,
    /// Histogram of tokens emitted per sequence per speculative step
    /// (accepted prefix + bonus token): `emitted → sequence-steps`.
    spec_emitted_hist: BTreeMap<u32, u64>,
    restore: Option<ActiveRestore>,
    restore_epoch: u64,
    restore_ahead_bytes: u64,
    /// The secure KV-cache manager (per-session retained prefixes).
    kv: KvPool,
    /// Steady-state unseal bandwidth for sealed KV pages in *compressed*
    /// bytes/s (decrypt threads; the pages live in DRAM, so no flash read is
    /// involved).
    kv_unseal_rate: f64,
    /// Dequantization bandwidth in output (f16) bytes/s on the same decrypt
    /// threads — the lane cost of expanding a quantized page on restore.
    kv_dequant_rate: f64,
    /// Effective restore-ahead crediting rate over compressed bytes: each
    /// compressed byte pays its decrypt *and* its share of the dequant pass
    /// (`1 / (1/decrypt + expansion/dequant)`); equals `kv_unseal_rate`
    /// exactly when the spill format is f16.
    kv_prewarm_rate: f64,
    kv_requested_tokens: u64,
    kv_reused_tokens: u64,
    kv_restore_ahead_bytes: u64,
    /// System-prefix tokens that cold first turns (sessions with no retained
    /// state yet) declared shareable — the shared-hit-rate denominator.
    kv_shared_candidate_tokens: u64,
    /// Tokens those cold turns actually served from other sessions' pages.
    kv_shared_hit_tokens: u64,
    ledger: CapacityLedger,
    lane_npu: LaneId,
    lane_flash: LaneId,
    lane_cpu: LaneId,
    /// The telemetry side buffer (disabled instance when the config knob is
    /// off — every record call is then a single branch).
    telemetry: Telemetry,
    /// Interned lane-track labels for the telemetry exporter.
    tl_npu: LabelId,
    tl_flash: LabelId,
    tl_cpu: LabelId,
    /// Style tag per in-flight request id, for completion-time span labels
    /// and per-class metric series.  Only populated while telemetry or
    /// metrics are enabled.
    styles: BTreeMap<u64, &'static str>,
    /// The windowed metrics registry (disabled instance when the config
    /// knob is off — every record call is then a single branch).
    metrics: WindowedMetrics,
    plan_cache: PlanCache,
    records: Vec<RequestRecord>,
    rejected: Vec<Request>,
    /// Session scripts with per-session cursors (closed-loop continuations),
    /// indexed by the session→script map below.
    scripts: Vec<SessionScript>,
    cursors: Vec<usize>,
    session_index: BTreeMap<u64, usize>,
    next_id: u64,
    // Time-weighted queue-depth accounting.
    depth_integral: f64,
    depth_last_change: SimTime,
    max_depth: usize,
}

impl ServerState {
    fn note_depth(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.depth_last_change).as_secs_f64();
        self.depth_integral += self.queue.len() as f64 * dt;
        self.depth_last_change = now;
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    fn materialize(&self, q: &QueuedRequest) -> Request {
        Request {
            id: q.id,
            session: q.session,
            model: self.models[q.model.0 as usize].spec.name.clone(),
            prompt_len: q.prompt_len,
            shared_prefix_len: q.shared_prefix_len,
            system_prefix_len: q.system_prefix_len,
            output_len: q.output_len,
        }
    }

    /// Sessions whose retained KV is pinned (never a spill/drop victim):
    /// requests currently in flight, plus the session whose sealed pages a
    /// restore-ahead is unsealing right now.
    fn active_sessions(&self) -> BTreeSet<u64> {
        let mut active = BTreeSet::new();
        if let Some(svc) = &self.service {
            active.insert(svc.record.request.session);
        }
        for d in &self.decodes {
            active.insert(d.record.request.session);
        }
        for d in &self.batch_decodes {
            active.insert(d.record.request.session);
        }
        if let Some(p) = &self.batch_prefill {
            active.insert(p.record.request.session);
        }
        for p in &self.batch_pending {
            active.insert(p.record.request.session);
        }
        if let Some(r) = &self.restore {
            if let Some(rkv) = &r.kv {
                active.insert(rkv.session);
            }
        }
        active
    }

    /// Books decode progress up to `now` (processor sharing: each of the `n`
    /// running decodes advanced by `dt / n`).  The division is fractional —
    /// truncating it to whole nanoseconds per accounting event would lose
    /// sub-nanosecond progress at high fan-out — and the `dt − dt/n` the
    /// sequence did *not* advance by is its sharing stall.
    fn advance_decodes(&mut self, now: SimTime) {
        if !self.decodes_paused && !self.decodes.is_empty() {
            let dt_ns = now.saturating_since(self.decode_last).as_nanos() as f64;
            let each_ns = dt_ns / self.decodes.len() as f64;
            for d in &mut self.decodes {
                // A sequence with less work left than the interval's share
                // finished mid-interval: it only shared the NPU while it
                // was still running, so its stall is the sharing slowdown
                // over the share it actually used — charging the full
                // interval would overcount the stall of every sequence
                // that finishes mid-accounting-window.
                let used_ns = d.remaining_ns.min(each_ns);
                let share = if each_ns > 0.0 {
                    used_ns / each_ns
                } else {
                    0.0
                };
                d.remaining_ns -= used_ns;
                d.stall_sharing_ns += (dt_ns - each_ns) * share;
            }
        }
        self.decode_last = now;
    }

    fn restore_cores(&self) -> u64 {
        (self.config.profile.big_cores as u64)
            .saturating_sub(1)
            .max(1)
    }

    /// The page-hash chain of `content` at `model`'s page geometry (empty
    /// when the KV manager is off) — computed once per submitted request.
    fn kv_prompt_hashes(&self, model: ModelId, content: &PromptContent) -> Vec<u64> {
        if !self.config.kv.enabled {
            return Vec::new();
        }
        let bytes_per_token = self.models[model.0 as usize].kv_bytes_per_token;
        content.page_keys(self.kv.page_tokens(bytes_per_token))
    }
}

fn on_arrival(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    request: QueuedRequest,
) {
    state.note_depth(sched.now());
    if state.queue.len() >= state.config.max_queue_depth {
        // The session lives on even though this request was turned away: a
        // closed-loop user sees the rejection immediately, thinks, and sends
        // their next request.
        let session = request.session;
        let rejected = state.materialize(&request);
        state
            .metrics
            .add("requests_rejected", request.style_label, sched.now(), 1);
        state.rejected.push(rejected);
        state.telemetry.count("requests.rejected", 1);
        schedule_session_continuation(state, sched, session);
    } else {
        let style = request.style_label;
        state.queue.push_back((request, sched.now()));
        state.note_depth(sched.now());
        state.telemetry.count("requests.admitted", 1);
        let depth = state.queue.len() as f64;
        state.telemetry.gauge("queue_depth", sched.now(), depth);
        state
            .metrics
            .add("requests_admitted", style, sched.now(), 1);
        state
            .metrics
            .gauge("queue_depth", "all", sched.now(), depth);
    }
    try_progress(state, sched);
}

/// Schedules the next scripted request of `session`, if any remains — one
/// think-time after the point the session observed its previous outcome
/// (response completion or admission rejection).
fn schedule_session_continuation(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    session: u64,
) {
    let Some(&script_idx) = state.session_index.get(&session) else {
        return;
    };
    let cursor = state.cursors[script_idx];
    if let Some(next) = state.scripts[script_idx].requests.get(cursor) {
        state.cursors[script_idx] += 1;
        let model = state.model_ids[&next.model];
        let request = QueuedRequest {
            id: state.next_id,
            session,
            model,
            prompt_len: next.prompt_len,
            shared_prefix_len: next.shared_prefix_len,
            system_prefix_len: next.system_prefix_len,
            output_len: next.output_len,
            content: next.content.clone(),
            output_seed: next.output_seed,
            kv_prompt_hashes: state.kv_prompt_hashes(model, &next.content),
            accept_permille: next.accept_permille,
            accept_seed: next.accept_seed,
            style_label: next.style_label,
        };
        state.next_id += 1;
        let at = sched.now() + next.delay;
        sched.schedule_at(at, move |state, sched| on_arrival(state, sched, request));
    }
}

/// The dispatcher: starts the next service phase if a slot and the service
/// lanes allow it, then puts any remaining lane idleness to work restoring
/// the queue head's parameters ahead of dispatch.
fn try_progress(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    if state.service.is_none()
        && state.inflight < state.config.max_inflight
        && !state.queue.is_empty()
    {
        dispatch_next(state, sched);
    }
    maybe_start_restore_ahead(state, sched);
}

fn dispatch_next(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    let now = sched.now();
    state.note_depth(now);
    let Some((qreq, arrival)) = state.queue.pop_front() else {
        return;
    };
    state.note_depth(now);
    if state.telemetry.is_enabled() || state.metrics.is_enabled() {
        state.styles.insert(qreq.id, qreq.style_label);
    }
    if state.telemetry.is_enabled() {
        let depth = state.queue.len() as f64;
        state.telemetry.gauge("queue_depth", now, depth);
    }
    state
        .metrics
        .gauge("queue_depth", "all", now, state.queue.len() as f64);
    state.metrics.observe(
        "queue_wait",
        qreq.style_label,
        now,
        now.saturating_since(arrival),
    );

    // If the dispatched model (or this request's session KV) is being
    // restored ahead, bank the progress *before* reading the cache state.
    if state.restore.as_ref().is_some_and(|r| {
        r.model == qreq.model || r.kv.as_ref().is_some_and(|k| k.session == qreq.session)
    }) {
        interrupt_restore_ahead(state, now);
    }

    let midx = qreq.model.0 as usize;
    let cached_fraction = state.models[midx].cache.cached_fraction();

    // KV prefix reuse: the prompt's content chain is walked through the
    // content-addressed pool — a follow-up turn serves its own conversation
    // prefix, and (with sharing on) a cold first turn serves the head other
    // sessions of the model already produced.  Resident tokens are free;
    // sealed tokens pay the unseal (decrypt) time.
    let mut kv_full_hashes = Vec::new();
    let mut kv_total_tokens = 0usize;
    let kv_reuse = if state.config.kv.enabled {
        let bpt = state.models[midx].kv_bytes_per_token;
        let pt = state.kv.page_tokens(bpt);
        let max_reuse = qreq.prompt_len.saturating_sub(1);
        // The hit-rate denominator: tokens the workload declared reusable,
        // from the session's own context or (on any turn) the shared head.
        let requested = qreq
            .shared_prefix_len
            .max(qreq.system_prefix_len)
            .min(max_reuse);
        state.kv_requested_tokens += requested as u64;
        let had_state = state.kv.has_session(qreq.session);
        if !had_state {
            state.kv_shared_candidate_tokens += qreq.system_prefix_len.min(max_reuse) as u64;
        }
        let reuse = state.kv.reuse_plan(
            qreq.session,
            qreq.model.0,
            &qreq.kv_prompt_hashes,
            bpt,
            qreq.shared_prefix_len.min(max_reuse),
            max_reuse,
            now,
        );
        if !had_state {
            state.kv_shared_hit_tokens += reuse.shared_tokens as u64;
        }
        // The full-context identity (prompt + the response this request will
        // generate) for completion-time retention.
        kv_total_tokens = qreq.prompt_len + qreq.output_len;
        kv_full_hashes = qreq
            .content
            .extended(qreq.output_seed, qreq.output_len)
            .page_keys(pt);
        reuse
    } else {
        crate::kv::KvReuse::default()
    };
    state.kv_reused_tokens += kv_reuse.reused_tokens as u64;
    // Sealed pages pay MAC + decrypt over their compressed bytes, then (for
    // a quantized spill format) a dequant pass over the reconstructed f16
    // bytes — both on the CPU decrypt threads, so both hide behind the
    // prefill's NPU window and only the excess surfaces in TTFT.
    let kv_unseal = SimDuration::from_secs_f64(
        kv_reuse.unseal_bytes as f64 / state.kv_unseal_rate
            + kv_reuse.dequant_bytes as f64 / state.kv_dequant_rate,
    );
    // A warm TA restores its suspended framework state; a cold one needs the
    // checkpoint (if it exists) or a full framework initialisation.
    let framework_init = if state.models[midx].warm || state.config.use_checkpoint {
        state.config.profile.checkpoint_restore
    } else {
        state.config.profile.framework_init_total()
    };
    let report = {
        let params = ServiceParams {
            model: &state.models[midx].spec,
            model_key: qreq.model.0,
            total_param_bytes: state.models[midx].graph_param_bytes,
            prompt_len: qreq.prompt_len,
            reused_prefix: kv_reuse.reused_tokens,
            output_len: qreq.output_len,
            memory_pressure: state.config.memory_pressure,
            cached_fraction,
            policy: state.config.policy,
        };
        system::evaluate_service(
            &state.config.profile,
            &params,
            framework_init,
            kv_unseal,
            Some(&mut state.plan_cache),
        )
    };
    state.models[midx].warm = true;
    state.models[midx].active += 1;

    let restoring = report.restored_bytes > 0;
    let (lane_flash, lane_cpu) = (state.lane_flash, state.lane_cpu);
    // A cold service owns the restoration lanes for its pipeline, and a
    // service that unseals sealed KV pages owns the decrypt threads for its
    // window; only a fully-cached, fully-resident prefill needs just one
    // core for the CPU-resident operators.  Either way, if a background
    // restore-ahead holds cores the service needs, it yields first (its
    // progress is banked) — a restoring service always conflicts, and on a
    // 1-big-core profile even the warm path does.
    let cores_needed = if restoring || kv_reuse.unseal_bytes > 0 {
        state.config.profile.big_cores as u64
    } else {
        1
    };
    if restoring || state.ledger.available(lane_cpu) < cores_needed {
        interrupt_restore_ahead(state, now);
    }
    if restoring {
        state.ledger.acquire(lane_flash, 1, now);
    }
    state.ledger.acquire(lane_cpu, cores_needed, now);

    let ttft = report.ttft;
    let npu_hold = (report.npu_busy + report.breakdown.npu_overhead).min(ttft);
    let first_token = now + ttft;
    let hold_start = first_token - npu_hold;
    let record = RequestRecord {
        request: state.materialize(&qreq),
        arrival,
        dispatched: now,
        first_token,
        completed: first_token, // placeholder until decoding finishes
        cached_fraction,
        kv_reused_tokens: kv_reuse.reused_tokens,
        kv_shared_tokens: kv_reuse.shared_tokens,
        kv_unsealed_bytes: kv_reuse.unseal_bytes,
        kv_dequant_bytes: kv_reuse.dequant_bytes,
        stall_sharing: SimDuration::ZERO,
        stall_preemption: SimDuration::ZERO,
        prefill_stall: SimDuration::ZERO,
        report,
    };
    state.service = Some(ActiveService {
        record,
        model: qreq.model,
        restoring,
        cores_held: cores_needed,
        kv_full_hashes,
        kv_total_tokens,
        accept_permille: qreq.accept_permille,
        accept_seed: qreq.accept_seed,
    });
    state.inflight += 1;
    if state.config.continuous_batching {
        // The pre-NPU phase (pipelined restoration + KV unseal beyond the
        // NPU window) runs exactly as planned on the flash/CPU lanes; the
        // NPU-side prefill work then joins the step loop as chunks instead
        // of taking the NPU exclusively.
        let pre_npu = ttft.saturating_sub(npu_hold);
        sched.schedule_at(now + pre_npu, on_service_ready_for_batch);
    } else {
        // `hold_start <= first_token`, and both events are inserted in this
        // order, so the engine's tie-breaking fires the hold first.
        sched.schedule_at(hold_start, on_hold_start);
        sched.schedule_at(first_token, on_service_first_token);
    }
}

/// The service's prefill needs the NPU exclusively from here to its first
/// token: preempt running decodes (compute-first, as in the intra-request
/// preemptive policy) and take the NPU.
fn on_hold_start(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    let now = sched.now();
    debug_assert!(state.service.is_some());
    state.advance_decodes(now);
    if !state.decodes_paused {
        state.decodes_paused = true;
        state.pause_started = now;
        state.decode_epoch += 1; // invalidate any scheduled completion
        if !state.decodes.is_empty() {
            let lane = state.lane_npu;
            state.ledger.release(lane, 1, now);
        }
    }
    let lane = state.lane_npu;
    state.ledger.acquire(lane, 1, now);
}

/// The service produced its first token: release its lanes, resume preempted
/// decodes, and join the decode set.
fn on_service_first_token(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    let now = sched.now();
    let svc = state.service.take().expect("a service phase is active");
    let (lane_npu, lane_flash, lane_cpu) = (state.lane_npu, state.lane_flash, state.lane_cpu);
    state.ledger.release(lane_npu, 1, now);
    if svc.restoring {
        state.ledger.release(lane_flash, 1, now);
    }
    state.ledger.release(lane_cpu, svc.cores_held, now);

    // The pause window `[hold_start, first_token]` is decode time every
    // member of the (static while paused) set lost to the prefill's
    // exclusive NPU window.
    let paused_ns = now.saturating_since(state.pause_started).as_nanos() as f64;
    for d in &mut state.decodes {
        d.stall_preemption_ns += paused_ns;
    }
    state.decodes_paused = false;
    state.decode_last = now;
    let tokens = svc.record.request.output_len.saturating_sub(1);
    let remaining_ns = tokens as f64 / svc.record.report.decode_tokens_per_sec * 1e9;
    // The decode set's shared NPU unit is never held here: the prefill's
    // exclusive window released it at hold start (or the set was empty), and
    // after the push the set is non-empty either way.
    state.ledger.acquire(lane_npu, 1, now);
    state.decodes.push(ActiveDecode {
        record: svc.record,
        model: svc.model,
        remaining_ns,
        stall_sharing_ns: 0.0,
        stall_preemption_ns: 0.0,
        kv_full_hashes: svc.kv_full_hashes,
        kv_total_tokens: svc.kv_total_tokens,
    });
    schedule_decode_tick(state, sched);
    try_progress(state, sched);
}

/// Schedules the next decode-completion instant for the current decode set
/// (the earliest finisher under processor sharing: `min(remaining) × n`).
fn schedule_decode_tick(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    state.decode_epoch += 1;
    if state.decodes_paused || state.decodes.is_empty() {
        return;
    }
    let n = state.decodes.len() as f64;
    let min_remaining_ns = state
        .decodes
        .iter()
        .map(|d| d.remaining_ns)
        .fold(f64::INFINITY, f64::min);
    let epoch = state.decode_epoch;
    // Ceil: the event must not fire before the earliest finisher's
    // fractional remainder is really consumed (a truncated eta would tick
    // one event early and find nothing finished).
    let eta = sched.now() + SimDuration::from_nanos((min_remaining_ns * n).ceil() as u64);
    sched.schedule_at(eta, move |state, sched| on_decode_tick(state, sched, epoch));
}

fn on_decode_tick(state: &mut ServerState, sched: &mut EventScheduler<ServerState>, epoch: u64) {
    if epoch != state.decode_epoch {
        return; // superseded by a pause/resume or set change
    }
    let now = sched.now();
    state.advance_decodes(now);
    let mut finished = Vec::new();
    let mut i = 0;
    while i < state.decodes.len() {
        // Sub-half-nanosecond residue is rounding, not work: the eta above
        // already waited out the fractional remainder.
        if state.decodes[i].remaining_ns < 0.5 {
            finished.push(state.decodes.remove(i));
        } else {
            i += 1;
        }
    }
    if state.decodes.is_empty() && !finished.is_empty() {
        let lane = state.lane_npu;
        state.ledger.release(lane, 1, now);
    }
    for decode in finished {
        let mut record = decode.record;
        record.stall_sharing = SimDuration::from_nanos(decode.stall_sharing_ns.round() as u64);
        record.stall_preemption =
            SimDuration::from_nanos(decode.stall_preemption_ns.round() as u64);
        complete_request(
            state,
            sched,
            decode.model,
            record,
            decode.kv_full_hashes,
            decode.kv_total_tokens,
            now,
        );
    }
    schedule_decode_tick(state, sched);
    try_progress(state, sched);
}

/// Books one finished request — retention policy, KV retention + budget
/// enforcement, record keeping, closed-loop continuation — shared by the
/// slot dispatcher's decode set and the batched step loop.
fn complete_request(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    model: ModelId,
    mut record: RequestRecord,
    kv_full_hashes: Vec<u64>,
    kv_total_tokens: usize,
    now: SimTime,
) {
    record.completed = now;
    let session = record.request.session;
    // Snapshot the cumulative spill counter so the sealing this completion
    // triggers (retention + budget enforcement below) can be attributed to
    // this request's track.  Read-only; taken only while telemetry is on.
    let sealed_before = if state.telemetry.is_enabled() && state.config.kv.enabled {
        Some(state.kv.stats().spilled_bytes)
    } else {
        None
    };
    {
        let config = &state.config;
        let entry = &mut state.models[model.0 as usize];
        entry.active -= 1;
        // All parameters are resident right after an inference; the retention
        // policy then decides what survives until the next dispatch.
        entry.cache.on_inference_complete();
        let total = entry.cache.total_bytes();
        let headroom = config
            .profile
            .dram_bytes
            .saturating_sub(config.memory_pressure);
        let target = match config.retention {
            RetentionPolicy::ReleaseAll => 0,
            RetentionPolicy::Fixed(fraction) => {
                ((total as f64 * fraction.clamp(0.0, 1.0)) as u64).min(headroom)
            }
            RetentionPolicy::KeepAll => total,
            RetentionPolicy::Adaptive { step_fraction } => {
                let step = (total as f64 * step_fraction.clamp(0.0, 1.0)) as u64;
                entry
                    .retained_target
                    .saturating_add(step)
                    .min(total)
                    .min(headroom)
            }
        };
        entry.retained_target = target;
        entry
            .cache
            .apply_policy(CachePolicy::MemoryHeadroom(target));
    }
    if state.config.kv.enabled {
        // Retain the session's full KV (prompt + generated tokens) under its
        // content identity — whole pages land in the content-addressed store
        // where later sessions with the same head can reference them — then
        // enforce the budgets.  Parameters are senior: the KV pool only gets
        // the headroom the retention policy's targets left unclaimed, so KV
        // reuse never shrinks the parameter cache.
        let entry = &state.models[model.0 as usize];
        state.kv.on_complete(
            session,
            model.0,
            &kv_full_hashes,
            kv_total_tokens,
            entry.kv_bytes_per_token,
            now,
        );
        let headroom = state
            .config
            .profile
            .dram_bytes
            .saturating_sub(state.config.memory_pressure);
        let params_retained: u64 = state.models.iter().map(|m| m.retained_target).sum();
        let secure_budget = (headroom.saturating_sub(params_retained) as f64
            * state.config.kv.budget_fraction.clamp(0.0, 1.0)) as u64;
        let active = state.active_sessions();
        state.kv.enforce(secure_budget, &active, now);
    }
    if state.metrics.is_enabled() {
        // Per-class windowed series.  Latencies are attributed to the
        // window in which they became known (TTFT at the first token, TBT
        // at completion), so a spike shows up in the windows it happened
        // in, not smeared to the end of the run.
        let style = state
            .styles
            .get(&record.request.id)
            .copied()
            .unwrap_or("independent");
        let ttft = record.ttft_e2e();
        if record.request.shared_prefix_len == 0 {
            state
                .metrics
                .observe("ttft_cold", style, record.first_token, ttft);
        } else {
            state
                .metrics
                .observe("ttft_followup", style, record.first_token, ttft);
        }
        if record.request.output_len > 1 {
            let decode_ns = now.saturating_since(record.first_token).as_nanos();
            let tbt_ns = decode_ns / (record.request.output_len as u64 - 1);
            state
                .metrics
                .observe("tbt", style, now, SimDuration::from_nanos(tbt_ns));
        }
        state.metrics.add("requests_completed", style, now, 1);
        state.metrics.add(
            "tokens_emitted",
            style,
            now,
            record.request.output_len as u64,
        );
    }
    if state.telemetry.is_enabled() {
        record_lifecycle_spans(state, &record, sealed_before, now);
    } else if state.metrics.is_enabled() {
        // `record_lifecycle_spans` normally retires the style entry; keep
        // the map bounded when only metrics are on.
        state.styles.remove(&record.request.id);
    }
    state.records.push(record);
    state.inflight -= 1;

    // Closed-loop continuation: the session thinks, then sends its next
    // request.
    schedule_session_continuation(state, sched, session);
}

/// Records a completed request's lifecycle spans onto its telemetry track.
///
/// The TTFT phases tile `[arrival, first_token]` exactly: `Queued` covers
/// the admission wait, the breakdown components (`framework_init`,
/// `working_alloc`, `kv_restore`) are laid end to end and clipped to the
/// pre-NPU window, `RestorePipeline` absorbs the pipelined-overlap
/// residue, and `Prefill` runs from the pre-NPU boundary to the first
/// token — so the span sum reconciles with [`RequestRecord::ttft_e2e`] by
/// construction.  `Decode` follows but is excluded from the TTFT sum.
/// Only called while telemetry is enabled; purely observational.
fn record_lifecycle_spans(
    state: &mut ServerState,
    record: &RequestRecord,
    sealed_before: Option<u64>,
    now: SimTime,
) {
    let id = record.request.id;
    let style = state.styles.remove(&id).unwrap_or("independent");
    let track = Track::Request(id);
    state.telemetry.name_track(
        track,
        &format!("req {id} {} ({style})", record.request.model),
    );
    let report = &record.report;
    let b = &report.breakdown;
    // The exclusive NPU hold sits at the tail of the service TTFT; what
    // precedes it is the pre-NPU window the breakdown components fill.
    let npu_hold = (report.npu_busy + b.npu_overhead).min(report.ttft);
    let pre_npu_end =
        (record.dispatched + report.ttft.saturating_sub(npu_hold)).min(record.first_token);
    if record.dispatched > record.arrival {
        state.telemetry.span(
            track,
            Phase::Queued,
            "queued",
            record.arrival,
            record.dispatched,
        );
    }
    let mut cursor = record.dispatched;
    for (phase, d) in [
        (Phase::FrameworkInit, b.framework_init),
        (Phase::WorkingAlloc, b.working_alloc),
        (Phase::KvUnseal, b.kv_restore),
    ] {
        let end = (cursor + d).min(pre_npu_end);
        if end > cursor {
            state
                .telemetry
                .span(track, phase, phase.label(), cursor, end);
            cursor = end;
        }
    }
    if pre_npu_end > cursor {
        state.telemetry.span(
            track,
            Phase::RestorePipeline,
            "restore-pipeline",
            cursor,
            pre_npu_end,
        );
    }
    if record.first_token > pre_npu_end {
        state.telemetry.span(
            track,
            Phase::Prefill,
            "prefill",
            pre_npu_end,
            record.first_token,
        );
    }
    if now > record.first_token {
        state
            .telemetry
            .span(track, Phase::Decode, "decode", record.first_token, now);
    }
    state.telemetry.count("requests.completed", 1);
    state
        .telemetry
        .observe("request.ttft_e2e_ms", record.ttft_e2e().as_secs_f64() * 1e3);
    state.telemetry.observe(
        "request.queue_wait_ms",
        record.queue_wait().as_secs_f64() * 1e3,
    );
    if let Some(before) = sealed_before {
        let delta = state.kv.stats().spilled_bytes.saturating_sub(before);
        if delta > 0 {
            let lane = state.tl_cpu;
            state.telemetry.span(
                Track::Lane(lane),
                Phase::Seal,
                &format!("seal req {id} ({delta} B)"),
                now,
                now,
            );
            state.telemetry.count("kv.seal_events", 1);
            state.telemetry.count("kv.sealed_bytes", delta);
        }
    }
}

/// Continuous batching: the service's pre-NPU phase (pipelined restoration,
/// KV unseal beyond the NPU window) is done — release the service lanes and
/// hand the NPU-side prefill work to the step loop as chunks.
fn on_service_ready_for_batch(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    let now = sched.now();
    let svc = state.service.take().expect("a service phase is active");
    let (lane_flash, lane_cpu) = (state.lane_flash, state.lane_cpu);
    if svc.restoring {
        state.ledger.release(lane_flash, 1, now);
    }
    state.ledger.release(lane_cpu, svc.cores_held, now);

    let report = &svc.record.report;
    let npu_hold = (report.npu_busy + report.breakdown.npu_overhead).min(report.ttft);
    let npu_secs = npu_hold.as_secs_f64();
    // The plan's exclusive NPU window, split proportionally over the
    // prompt's new (not KV-reused) tokens: one chunk's worth of tokens costs
    // one chunk's share of the window.
    let new_tokens = svc
        .record
        .request
        .prompt_len
        .saturating_sub(svc.record.kv_reused_tokens)
        .max(1);
    let chunk_tokens = state.config.prefill_chunk_tokens.max(1).min(new_tokens);
    let chunk_secs = npu_secs * chunk_tokens as f64 / new_tokens as f64;
    let chunks_total = if chunk_secs > 0.0 {
        (npu_secs / chunk_secs).ceil().max(1.0) as u32
    } else {
        1
    };
    state.batch_pending.push_back(BatchedPrefill {
        record: svc.record,
        model: svc.model,
        npu_secs_left: npu_secs,
        chunk_secs,
        chunks_done: 0,
        chunks_total,
        kv_full_hashes: svc.kv_full_hashes,
        kv_total_tokens: svc.kv_total_tokens,
        accept_permille: svc.accept_permille,
        accept_seed: svc.accept_seed,
    });
    maybe_start_batch_step(state, sched);
    try_progress(state, sched);
}

/// Prices and schedules the next batched NPU step, if the batch has work and
/// no step is already in flight.  One step = one decode token for every
/// member sequence plus at most one chunk of the active prefill; it costs
/// the weight read once per distinct model (amortised across the batch),
/// every sequence's per-token compute, and the per-token world-switch
/// handoffs — `llm::CostModel::batched_step_time` at serving granularity.
fn maybe_start_batch_step(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    if state.batch_running {
        return;
    }
    let now = sched.now();
    if state.batch_prefill.is_none() {
        state.batch_prefill = state.batch_pending.pop_front();
    }
    if state.batch_decodes.is_empty() && state.batch_prefill.is_none() {
        if state.batch_npu_held {
            let lane = state.lane_npu;
            state.ledger.release(lane, 1, now);
            state.batch_npu_held = false;
        }
        return;
    }
    if !state.batch_npu_held {
        let lane = state.lane_npu;
        state.ledger.acquire(lane, 1, now);
        state.batch_npu_held = true;
    }
    // Speculation: each member proposes up to `k` draft tokens (never its
    // final token — that one always comes from the target so the sequence
    // cannot overshoot its scripted length), the draft runs that many serial
    // autoregressive rounds, and the target verifies all proposals inside the
    // same fused sweep it was going to run anyway.  Steps that carry a
    // prefill chunk are exempt: drafting stretches the step, and a stretched
    // step delays the interleaved chunk — skipping those steps keeps the
    // chunk cadence (and so cold-heavy TTFT) at the plain batched loop's.
    // With speculation off, `k == 0` leaves every `step_proposed` at zero
    // and `draft_secs` at 0.0, so the step price below is bit-for-bit the
    // plain batched step.
    let k = if state.config.speculation.enabled && state.batch_prefill.is_none() {
        state.config.speculation.k as u64
    } else {
        0
    };
    let mut draft_secs = 0.0f64;
    if k > 0 {
        for d in &mut state.batch_decodes {
            d.step_proposed = k.min(d.tokens_left.saturating_sub(1));
        }
        let draft_id = state
            .draft
            .expect("speculation enabled but no draft model wired");
        if state.batch_decodes.iter().any(|d| d.step_proposed > 0) {
            // The draft's weights stream through the same restore path as a
            // served model's; the first speculative step pays for whatever is
            // missing, and the retention pass keeps them pinned thereafter.
            let entry = &mut state.models[draft_id.0 as usize];
            let missing = entry.cache.total_bytes() - entry.cache.cached_bytes();
            if missing > 0 {
                draft_secs += missing as f64 / entry.restore_rate;
                let total = entry.cache.total_bytes();
                entry.cache.seed(total);
                entry.retained_target = total;
            }
            let draft_entry = &state.models[draft_id.0 as usize];
            let max_rounds = state
                .batch_decodes
                .iter()
                .map(|d| d.step_proposed)
                .max()
                .unwrap_or(0);
            // Draft rounds are serial (token r+1 depends on token r) but each
            // round batches every member that still has proposals left, so a
            // round costs max(batched compute, one draft weight pass).
            for round in 0..max_rounds {
                let round_compute: f64 = state
                    .batch_decodes
                    .iter()
                    .filter(|d| d.step_proposed > round)
                    .map(|d| draft_entry.step.decode_compute_secs(d.kv_len))
                    .sum();
                draft_secs +=
                    round_compute.max(draft_entry.step.weight_pass_secs) + draft_entry.handoff_secs;
            }
        }
    }
    let mut compute_secs = 0.0f64;
    let mut weight_secs = 0.0f64;
    let mut handoff_secs = 0.0f64;
    let mut distinct: Vec<ModelId> = Vec::new();
    for d in &state.batch_decodes {
        if d.step_proposed > 0 {
            let costs = state.models[d.model.0 as usize]
                .spec_costs
                .as_ref()
                .expect("speculating sequence on a model without spec costs");
            // Verify scores proposed + 1 positions in one pass: the proposals
            // plus the bonus token the target emits past the accepted prefix.
            compute_secs += costs.verify_compute_secs(d.step_proposed as usize + 1, d.kv_len);
        } else {
            compute_secs += d.compute_secs;
        }
        if !distinct.contains(&d.model) {
            distinct.push(d.model);
            let entry = &state.models[d.model.0 as usize];
            weight_secs += entry.step.weight_pass_secs;
            handoff_secs += entry.handoff_secs;
        }
    }
    let chunk_secs = state
        .batch_prefill
        .as_ref()
        .map_or(0.0, |p| p.chunk_secs.min(p.npu_secs_left));
    let step_secs = if state.batch_decodes.is_empty() {
        // Chunk-only step: the prefill's own plan already prices its weight
        // reads and overheads inside the NPU window being sliced.
        chunk_secs
    } else {
        draft_secs + (compute_secs + chunk_secs).max(weight_secs) + handoff_secs
    };
    // Whole-nanosecond event times with a carried fractional residue, so a
    // thousand-step decode accumulates no rounding drift.
    let ns_f = step_secs * 1e9 + state.batch_carry_ns;
    let ns = ns_f.round().max(0.0);
    state.batch_carry_ns = ns_f - ns;
    let ns = ns as u64;
    state.batch_step_secs = step_secs;
    state.batch_step_chunk_secs = chunk_secs;
    state.batch_running = true;
    let occupancy = state.batch_decodes.len() as u32 + u32::from(state.batch_prefill.is_some());
    *state.batch_occupancy_ns.entry(occupancy).or_insert(0) += ns;
    state.batch_steps += 1;
    state.batch_busy_ns += ns;
    state.batch_max_step_ns = state.batch_max_step_ns.max(ns);
    if k > 0 && state.batch_decodes.iter().any(|d| d.step_proposed > 0) {
        state.spec_steps += 1;
        state.spec_draft_ns += (draft_secs * 1e9).round() as u64;
    }
    if state.telemetry.is_enabled() {
        let end = now + SimDuration::from_nanos(ns);
        let npu = Track::Lane(state.tl_npu);
        let step_label = format!("step occ={occupancy}");
        state
            .telemetry
            .span(npu, Phase::BatchStep, &step_label, now, end);
        let drafting = state.batch_decodes.iter().any(|d| d.step_proposed > 0);
        if drafting && draft_secs > 0.0 {
            // Nest the serial draft rounds and the fused verify sweep
            // inside the step so Perfetto shows the split.
            let draft_end = (now + SimDuration::from_secs_f64(draft_secs)).min(end);
            state
                .telemetry
                .span(npu, Phase::SpecDraft, "draft", now, draft_end);
            state
                .telemetry
                .span(npu, Phase::SpecVerify, "verify", draft_end, end);
        }
        if chunk_secs > 0.0 {
            if let Some(p) = &state.batch_prefill {
                let chunk_label = format!(
                    "req {} chunk {}/{}",
                    p.record.request.id,
                    p.chunks_done + 1,
                    p.chunks_total
                );
                let chunk_end = (now + SimDuration::from_secs_f64(chunk_secs)).min(end);
                state
                    .telemetry
                    .span(npu, Phase::PrefillChunk, &chunk_label, now, chunk_end);
            }
        }
        state.telemetry.observe("batch.step_ms", ns as f64 / 1e6);
        state.telemetry.observe("batch.occupancy", occupancy as f64);
    }
    state
        .metrics
        .gauge("batch_occupancy", "all", now, occupancy as f64);
    state
        .metrics
        .observe("batch_step", "all", now, SimDuration::from_nanos(ns));
    sched.schedule_at(now + SimDuration::from_nanos(ns), on_batch_step_end);
}

/// One batched step finished: every member decode produced one token, the
/// active prefill consumed one chunk, and anything that finished leaves the
/// batch before the next step is priced.
fn on_batch_step_end(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    let now = sched.now();
    state.batch_running = false;
    let step_secs = state.batch_step_secs;
    let chunk_secs = state.batch_step_chunk_secs;
    let speculating = state.config.speculation.enabled;
    let mut tokens_this_step = 0u64;
    for d in &mut state.batch_decodes {
        d.steps_seen += 1;
        let emitted = if d.step_proposed == 0 {
            1
        } else {
            // The target accepts the leading run of draft proposals that
            // match what it would have sampled itself, then emits one bonus
            // token of its own past the accepted prefix; the KV tail written
            // for rejected positions is rewound (paged KV makes that a
            // page-tail truncation, already accounted in kv_total_tokens
            // which tracks the *final* sequence length).
            let rate = d.accept_permille as f64 / 1000.0;
            let mut accepted = 0u64;
            while accepted < d.step_proposed && d.accept_rng.gen_bool(rate) {
                accepted += 1;
            }
            state.spec_proposed_tokens += d.step_proposed;
            state.spec_accepted_tokens += accepted;
            state.spec_rejected_tokens += d.step_proposed - accepted;
            accepted + 1
        };
        if speculating {
            *state.spec_emitted_hist.entry(emitted as u32).or_insert(0) += 1;
        }
        d.step_proposed = 0;
        // `emitted <= tokens_left` always: proposals are capped at
        // `tokens_left - 1`, so even a full accept plus the bonus token
        // cannot overshoot the scripted output length.
        d.tokens_left -= emitted;
        tokens_this_step += emitted;
        // Any step time beyond the sequence's solo time for the tokens it
        // actually emitted is what sharing the NPU (and drafting) cost it.
        d.stall_sharing_ns += (step_secs - emitted as f64 * d.intrinsic_secs).max(0.0) * 1e9;
    }
    state.batch_decode_tokens += tokens_this_step;
    let mut finished = Vec::new();
    let mut i = 0;
    while i < state.batch_decodes.len() {
        if state.batch_decodes[i].tokens_left == 0 {
            finished.push(state.batch_decodes.remove(i));
        } else {
            i += 1;
        }
    }
    let mut prefill_done = None;
    if let Some(p) = &mut state.batch_prefill {
        p.npu_secs_left -= chunk_secs;
        if chunk_secs > 0.0 {
            p.chunks_done += 1;
        }
        // Exact-zero in the common case (the last chunk is `min(chunk,
        // left)`); the epsilon only absorbs float residue.
        if p.npu_secs_left <= 1e-9 {
            prefill_done = state.batch_prefill.take();
        }
    }
    for d in finished {
        let behind = d
            .steps_seen
            .saturating_sub(d.record.request.output_len.saturating_sub(1) as u64);
        state.batch_max_steps_behind = state.batch_max_steps_behind.max(behind);
        let mut record = d.record;
        record.stall_sharing = SimDuration::from_nanos(d.stall_sharing_ns.round() as u64);
        complete_request(
            state,
            sched,
            d.model,
            record,
            d.kv_full_hashes,
            d.kv_total_tokens,
            now,
        );
    }
    if let Some(p) = prefill_done {
        on_batched_first_token(state, sched, p, now);
    }
    maybe_start_batch_step(state, sched);
    try_progress(state, sched);
}

/// A chunked prefill consumed its whole NPU window: its first token is out.
/// A single-token request completes on the spot; otherwise the sequence
/// joins the decode batch from the next step boundary.
fn on_batched_first_token(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    prefill: BatchedPrefill,
    now: SimTime,
) {
    let mut record = prefill.record;
    record.first_token = now;
    record.prefill_stall = record
        .first_token
        .saturating_since(record.dispatched)
        .saturating_sub(record.report.ttft);
    let tokens = record.request.output_len.saturating_sub(1) as u64;
    if tokens == 0 {
        complete_request(
            state,
            sched,
            prefill.model,
            record,
            prefill.kv_full_hashes,
            prefill.kv_total_tokens,
            now,
        );
        return;
    }
    let entry = &state.models[prefill.model.0 as usize];
    // Price every step at the sequence's final KV length (decode compute is
    // affine in the KV length, and the spread over one response is small).
    let kv_len = record.request.prompt_len + record.request.output_len;
    let compute_secs = entry.step.decode_compute_secs(kv_len);
    let intrinsic_secs = compute_secs.max(entry.step.weight_pass_secs) + entry.handoff_secs;
    state.batch_decodes.push(BatchedDecode {
        record,
        model: prefill.model,
        tokens_left: tokens,
        steps_seen: 0,
        compute_secs,
        intrinsic_secs,
        stall_sharing_ns: 0.0,
        kv_full_hashes: prefill.kv_full_hashes,
        kv_total_tokens: prefill.kv_total_tokens,
        kv_len,
        accept_permille: prefill.accept_permille,
        accept_rng: DetRng::new(prefill.accept_seed),
        step_proposed: 0,
    });
}

/// Starts restoring the first eligible queued request's missing parameters —
/// and, for a follow-up turn, its session's sealed KV prefix — on the idle
/// flash/decrypt/alloc lanes.  Parameter eligibility means: the model has no
/// request currently in flight (an in-flight request's completion refreshes
/// the cache anyway) and some of its parameters are missing.  KV eligibility
/// is independent: any queued follow-up whose session holds sealed pages can
/// have them unsealed ahead of dispatch, streaming after the parameters on
/// the same lanes.
fn maybe_start_restore_ahead(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    if !state.config.restore_ahead || state.restore.is_some() {
        return;
    }
    let cores = state.restore_cores();
    if state.ledger.available(state.lane_cpu) < cores {
        return;
    }
    let flash_free = state.ledger.available(state.lane_flash) > 0;
    let mut pick: Option<(ModelId, u64, Option<RestoreKv>)> = None;
    for (q, _) in &state.queue {
        let entry = &state.models[q.model.0 as usize];
        // Parameter restore needs the flash channel; a KV-only restore
        // (decrypt threads over DRAM-resident sealed pages) does not, so it
        // can proceed while a service's restoration owns the flash lane.
        let param_bytes = if entry.active == 0 && flash_free {
            entry.cache.total_bytes() - entry.cache.cached_bytes()
        } else {
            0
        };
        let kv = if state.config.kv.enabled {
            // Address the sealed state by the prompt's content chain
            // (precomputed at submission — this scan runs on every
            // dispatcher event): it covers the session's own sealed pages
            // *and* a sealed shared head a brand-new session never
            // retained itself.
            let bytes_per_token = entry.kv_bytes_per_token;
            let bytes = state.kv.sealed_bytes_for(
                q.session,
                q.model.0,
                &q.kv_prompt_hashes,
                bytes_per_token,
            );
            (bytes > 0).then(|| RestoreKv {
                session: q.session,
                model: q.model.0,
                bytes_per_token,
                page_hashes: q.kv_prompt_hashes.clone(),
                bytes,
            })
        } else {
            None
        };
        if param_bytes > 0 || kv.is_some() {
            pick = Some((q.model, param_bytes, kv));
            break;
        }
    }
    let Some((model, param_bytes, kv)) = pick else {
        return;
    };
    let now = sched.now();
    let rate = state.models[model.0 as usize].restore_rate;
    let kv_rate = state.kv_prewarm_rate;
    let kv_bytes = kv.as_ref().map_or(0, |k| k.bytes);
    let holds_flash = param_bytes > 0;
    let (lane_flash, lane_cpu) = (state.lane_flash, state.lane_cpu);
    if holds_flash {
        state.ledger.acquire(lane_flash, 1, now);
    }
    state.ledger.acquire(lane_cpu, cores, now);
    state.restore_epoch += 1;
    let epoch = state.restore_epoch;
    state.restore = Some(ActiveRestore {
        model,
        started: now,
        rate,
        param_bytes,
        kv,
        kv_rate,
        holds_flash,
    });
    let eta =
        now + SimDuration::from_secs_f64(param_bytes as f64 / rate + kv_bytes as f64 / kv_rate);
    sched.schedule_at(eta, move |state, sched| {
        on_restore_ahead_done(state, sched, epoch)
    });
}

/// Credits a (possibly partial) restore-ahead: parameter bytes stream first,
/// then sealed KV pages unseal on the freed decrypt threads; both credits
/// are floored to the crediting quantum.
fn credit_restore_progress(
    state: &mut ServerState,
    r: &ActiveRestore,
    elapsed_secs: f64,
    now: SimTime,
) {
    let mut param_credit = ((elapsed_secs * r.rate) as u64).min(r.param_bytes);
    param_credit -= param_credit % RESTORE_AHEAD_QUANTUM;
    credit_restore(state, r.model, param_credit);
    if let Some(rkv) = &r.kv {
        let param_secs = r.param_bytes as f64 / r.rate;
        let kv_elapsed = (elapsed_secs - param_secs).max(0.0);
        let mut kv_credit = ((kv_elapsed * r.kv_rate) as u64).min(rkv.bytes);
        kv_credit -= kv_credit % RESTORE_AHEAD_QUANTUM;
        state.kv_restore_ahead_bytes += state.kv.prewarm(
            rkv.session,
            rkv.model,
            &rkv.page_hashes,
            rkv.bytes_per_token,
            kv_credit,
            now,
        );
    }
}

/// Stops an in-progress restore-ahead, crediting the bytes restored so far
/// to the model's cached prefix and the session's resident KV.
fn interrupt_restore_ahead(state: &mut ServerState, now: SimTime) {
    let Some(r) = state.restore.take() else {
        return;
    };
    state.restore_epoch += 1; // invalidate the scheduled completion
    let elapsed = now.saturating_since(r.started).as_secs_f64();
    credit_restore_progress(state, &r, elapsed, now);
    record_restore_ahead_span(state, &r, now, true);
    let (lane_flash, lane_cpu) = (state.lane_flash, state.lane_cpu);
    let cores = state.restore_cores();
    if r.holds_flash {
        state.ledger.release(lane_flash, 1, now);
    }
    state.ledger.release(lane_cpu, cores, now);
}

/// Records a restore-ahead interval on its lane track: the flash lane when
/// parameters streamed from flash, the CPU (decrypt) lane for a KV-only
/// unseal.  The span ends at `now` — for an interrupted restore that is the
/// truncated, not the reserved, interval, matching the ledger's busy-time
/// accounting.  Observe-only.
fn record_restore_ahead_span(
    state: &mut ServerState,
    r: &ActiveRestore,
    now: SimTime,
    interrupted: bool,
) {
    if !state.telemetry.is_enabled() {
        return;
    }
    let lane = if r.holds_flash {
        state.tl_flash
    } else {
        state.tl_cpu
    };
    let model = state.models[r.model.0 as usize].spec.name.clone();
    let label = if interrupted {
        format!("restore-ahead {model} (interrupted)")
    } else {
        format!("restore-ahead {model}")
    };
    state.telemetry.span(
        Track::Lane(lane),
        Phase::RestoreAhead,
        &label,
        r.started,
        now,
    );
    let counter = if interrupted {
        "restore_ahead.interrupted"
    } else {
        "restore_ahead.completed"
    };
    state.telemetry.count(counter, 1);
}

fn on_restore_ahead_done(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    epoch: u64,
) {
    if epoch != state.restore_epoch {
        return; // superseded by an interrupt
    }
    let now = sched.now();
    let r = state.restore.take().expect("restore-ahead is active");
    credit_restore(state, r.model, r.param_bytes);
    if let Some(rkv) = &r.kv {
        state.kv_restore_ahead_bytes += state.kv.prewarm(
            rkv.session,
            rkv.model,
            &rkv.page_hashes,
            rkv.bytes_per_token,
            rkv.bytes,
            now,
        );
    }
    record_restore_ahead_span(state, &r, now, false);
    let (lane_flash, lane_cpu) = (state.lane_flash, state.lane_cpu);
    let cores = state.restore_cores();
    if r.holds_flash {
        state.ledger.release(lane_flash, 1, now);
    }
    state.ledger.release(lane_cpu, cores, now);
    try_progress(state, sched);
}

fn credit_restore(state: &mut ServerState, model: ModelId, bytes: u64) {
    if bytes == 0 {
        return;
    }
    let entry = &mut state.models[model.0 as usize];
    entry.cache.seed(entry.cache.cached_bytes() + bytes);
    state.restore_ahead_bytes += bytes;
}

/// A multi-session TZ-LLM serving instance.
pub struct Server {
    engine: Engine<ServerState>,
}

/// Builds the per-model runtime entry (restore rates, step costs, handoff
/// overheads) shared by catalogue models and the speculation draft.
fn model_entry(
    config: &ServingConfig,
    cost: &llm::CostModel,
    spec: ModelSpec,
    spec_costs: Option<llm::SpeculativeStepCosts>,
) -> ModelEntry {
    let restore_threads = config.profile.big_cores.saturating_sub(1).max(1);
    let occupancy = system::cma_occupancy(&spec, config.memory_pressure);
    let rates = RestoreRates::from_profile(&config.profile, occupancy, restore_threads);
    let flash_per_byte = 1.0 / rates.flash.bytes_per_sec();
    let cpu_per_byte = rates.alloc_secs_per_byte + 1.0 / rates.decrypt.bytes_per_sec();
    let restore_rate = 1.0 / flash_per_byte.max(cpu_per_byte);
    let total = spec.total_q8_bytes();
    let graph_param_bytes = ComputationGraph::prefill(&spec, 1).total_param_bytes();
    let kv_bytes_per_token = spec.kv_bytes_per_token();
    let step = cost.batched_step_costs(&spec, true);
    // Each decode token pays two co-driver handoffs per layer — the
    // same per-token switch cost `system::evaluate_service` folds
    // into `decode_tokens_per_sec`.
    let handoff_secs =
        (config.profile.codriver_switch_cost() * 2 * spec.layers as u64).as_secs_f64();
    ModelEntry {
        spec,
        cache: CacheController::new(total),
        retained_target: 0,
        warm: false,
        active: 0,
        restore_rate,
        graph_param_bytes,
        kv_bytes_per_token,
        step,
        handoff_secs,
        spec_costs,
    }
}

impl Server {
    /// Creates a server over a model catalogue. Each model gets its own cold
    /// [`CacheController`].
    pub fn new(config: ServingConfig, catalogue: Vec<ModelSpec>) -> Server {
        let mut ledger = CapacityLedger::new();
        let lane_npu = ledger.add_lane("npu", 1);
        let lane_flash = ledger.add_lane("flash", 1);
        let lane_cpu = ledger.add_lane("cpu", config.profile.big_cores as u64);
        let mut telemetry = Telemetry::new(config.telemetry);
        let metrics = match config.metrics {
            Some(window) => WindowedMetrics::new(window),
            None => WindowedMetrics::off(),
        };
        if config.telemetry || config.metrics.is_some() {
            // The reservation journal feeds the per-lane occupancy spans
            // (telemetry) and the per-window lane busy-time counters
            // (metrics); it is purely observational, so the capacity checks
            // and busy integrals are identical with it on or off.
            ledger.enable_journal();
        }
        let tl_npu = telemetry.intern("npu");
        let tl_flash = telemetry.intern("flash");
        let tl_cpu = telemetry.intern("cpu");
        telemetry.name_track(Track::Lane(tl_npu), "npu");
        telemetry.name_track(Track::Lane(tl_flash), "flash");
        telemetry.name_track(Track::Lane(tl_cpu), "cpu");
        let cost = llm::CostModel::rk3588();
        let draft_spec = if config.speculation.enabled {
            Some(
                ModelSpec::by_name(&config.speculation.draft_model).unwrap_or_else(|| {
                    panic!(
                        "unknown speculation draft model {:?}",
                        config.speculation.draft_model
                    )
                }),
            )
        } else {
            None
        };
        let mut models = Vec::with_capacity(catalogue.len());
        let mut model_ids = BTreeMap::new();
        for spec in catalogue {
            let spec_costs = draft_spec
                .as_ref()
                .map(|d| cost.speculative_step_costs(d, &spec, true));
            model_ids.insert(spec.name.clone(), ModelId(models.len() as u32));
            models.push(model_entry(&config, &cost, spec, spec_costs));
        }
        // The draft rides along as an extra model entry so its weights share
        // the restore/retention machinery, but it is *not* interned in
        // `model_ids`: requests can never target it directly.
        let draft = draft_spec.map(|dspec| {
            let id = ModelId(models.len() as u32);
            models.push(model_entry(&config, &cost, dspec, None));
            id
        });
        let plan_cache = PlanCache::new(config.plan_cache_capacity);
        let kv = KvPool::new(&config.kv);
        // Sealed KV pages sit in DRAM, so unsealing is decrypt-bound on the
        // restore threads (no flash read).
        let kv_unseal_rate = config.profile.decrypt_bytes_per_sec;
        let kv_dequant_rate = config.profile.dequant_bytes_per_sec;
        // Restore-ahead credits compressed bytes; a quantized format derates
        // the crediting rate by the f16 expansion each compressed byte must
        // also pay for on the same threads.  F16 expands nothing, so the
        // rate degenerates to the plain decrypt rate and the PR-4 numbers
        // reproduce bit-for-bit.
        let expansion = if config.kv.spill_format.is_quantized() {
            config
                .kv
                .spill_format
                .expansion(config.kv.page_bytes.max(1) as usize)
        } else {
            0.0
        };
        let kv_prewarm_rate = 1.0 / (1.0 / kv_unseal_rate + expansion / kv_dequant_rate);
        Server {
            engine: Engine::new(ServerState {
                config,
                models,
                model_ids,
                queue: VecDeque::new(),
                inflight: 0,
                service: None,
                decodes: Vec::new(),
                decodes_paused: false,
                pause_started: SimTime::ZERO,
                decode_epoch: 0,
                decode_last: SimTime::ZERO,
                batch_decodes: Vec::new(),
                batch_prefill: None,
                batch_pending: VecDeque::new(),
                batch_running: false,
                batch_step_secs: 0.0,
                batch_step_chunk_secs: 0.0,
                batch_carry_ns: 0.0,
                batch_npu_held: false,
                batch_steps: 0,
                batch_busy_ns: 0,
                batch_decode_tokens: 0,
                batch_occupancy_ns: BTreeMap::new(),
                batch_max_step_ns: 0,
                batch_max_steps_behind: 0,
                draft,
                spec_steps: 0,
                spec_proposed_tokens: 0,
                spec_accepted_tokens: 0,
                spec_rejected_tokens: 0,
                spec_draft_ns: 0,
                spec_emitted_hist: BTreeMap::new(),
                restore: None,
                restore_epoch: 0,
                restore_ahead_bytes: 0,
                kv,
                kv_unseal_rate,
                kv_dequant_rate,
                kv_prewarm_rate,
                kv_requested_tokens: 0,
                kv_reused_tokens: 0,
                kv_restore_ahead_bytes: 0,
                kv_shared_candidate_tokens: 0,
                kv_shared_hit_tokens: 0,
                ledger,
                lane_npu,
                lane_flash,
                lane_cpu,
                telemetry,
                tl_npu,
                tl_flash,
                tl_cpu,
                styles: BTreeMap::new(),
                metrics,
                plan_cache,
                records: Vec::new(),
                rejected: Vec::new(),
                scripts: Vec::new(),
                cursors: Vec::new(),
                session_index: BTreeMap::new(),
                next_id: 0,
                depth_integral: 0.0,
                depth_last_change: SimTime::ZERO,
                max_depth: 0,
            }),
        }
    }

    fn model_id(&self, model: &str) -> ModelId {
        *self
            .engine
            .state()
            .model_ids
            .get(model)
            .unwrap_or_else(|| panic!("unknown model {model:?}"))
    }

    /// Seeds the cache of `model` with `cached_bytes` resident parameter
    /// bytes (clamped to the model size).
    ///
    /// # Panics
    /// Panics if `model` is not in the catalogue.
    pub fn seed_cache(&mut self, model: &str, cached_bytes: u64) {
        let id = self.model_id(model);
        let entry = &mut self.engine.state_mut().models[id.0 as usize];
        entry.cache.seed(cached_bytes);
        entry.retained_target = entry.cache.cached_bytes();
    }

    /// Submits one request arriving at absolute time `at`.
    ///
    /// # Panics
    /// Panics if the model is not in the catalogue.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        session: u64,
        model: &str,
        prompt_len: usize,
        output_len: usize,
    ) {
        let model = self.model_id(model);
        let state = self.engine.state_mut();
        // Mint a unique content identity per direct submission: no two
        // `submit_at` prompts ever share KV content.
        let content = PromptContent::from_seed(derive_seed(state.next_id, 0x5eed), prompt_len);
        let request = QueuedRequest {
            id: state.next_id,
            session,
            model,
            prompt_len,
            shared_prefix_len: 0,
            system_prefix_len: 0,
            output_len,
            kv_prompt_hashes: state.kv_prompt_hashes(model, &content),
            content,
            output_seed: derive_seed(state.next_id, 0x07),
            accept_permille: workloads::SessionStyle::Independent.accept_base_permille(),
            accept_seed: derive_seed(state.next_id, 0xACC),
            style_label: workloads::SessionStyle::Independent.label(),
        };
        state.next_id += 1;
        self.engine
            .schedule_at(at, move |state, sched| on_arrival(state, sched, request));
    }

    /// Submits a session script: the first request is scheduled at its
    /// `delay` from time zero, each later request one think-time after the
    /// session's previous response completes.
    ///
    /// # Panics
    /// Panics if any scripted request names a model outside the catalogue, or
    /// if a script with the same session id was already submitted (session
    /// continuations are resolved by id, so ids must be unique — renumber
    /// when merging several workloads onto one server).
    pub fn submit_script(&mut self, script: SessionScript) {
        let state = self.engine.state_mut();
        assert!(
            !state.session_index.contains_key(&script.session),
            "duplicate session id {}: renumber scripts when merging workloads",
            script.session
        );
        for r in &script.requests {
            assert!(
                state.model_ids.contains_key(&r.model),
                "unknown model {:?} in session {}",
                r.model,
                script.session
            );
        }
        let Some(first) = script.requests.first().cloned() else {
            return;
        };
        let session = script.session;
        let model = state.model_ids[&first.model];
        let request = QueuedRequest {
            id: state.next_id,
            session,
            model,
            prompt_len: first.prompt_len,
            shared_prefix_len: first.shared_prefix_len,
            system_prefix_len: first.system_prefix_len,
            output_len: first.output_len,
            kv_prompt_hashes: state.kv_prompt_hashes(model, &first.content),
            content: first.content.clone(),
            output_seed: first.output_seed,
            accept_permille: first.accept_permille,
            accept_seed: first.accept_seed,
            style_label: first.style_label,
        };
        state.next_id += 1;
        state.session_index.insert(session, state.scripts.len());
        state.scripts.push(SessionScript {
            session,
            requests: script.requests,
        });
        state.cursors.push(1); // the first request is scheduled below
        self.engine
            .schedule_at(SimTime::ZERO + first.delay, move |state, sched| {
                on_arrival(state, sched, request)
            });
    }

    /// Runs the simulation to completion and summarises the fleet.
    pub fn run(mut self) -> ServingReport {
        self.engine.run_to_completion();
        let mut state = self.engine.into_state();
        let fleet = fleet_stats(&state);
        let resources = state.ledger.usage(fleet.horizon);
        let telemetry = if state.telemetry.is_enabled() {
            derive_occupancy_spans(&mut state);
            Some(std::mem::take(&mut state.telemetry))
        } else {
            None
        };
        let metrics = if state.metrics.is_enabled() {
            derive_lane_busy_windows(&mut state);
            Some(std::mem::take(&mut state.metrics))
        } else {
            None
        };
        ServingReport {
            records: state.records,
            rejected: state.rejected,
            fleet,
            resources,
            telemetry,
            metrics,
        }
    }

    /// Convenience: generate `workload` with `seed`, submit every session and
    /// run to completion.
    pub fn run_workload(
        config: ServingConfig,
        catalogue: Vec<ModelSpec>,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> ServingReport {
        let mut server = Server::new(config, catalogue);
        for script in workload.generate(seed) {
            server.submit_script(script);
        }
        server.run()
    }
}

/// Converts the capacity-ledger journal into per-lane occupancy spans and
/// `in_use` gauge series on the lane tracks.  Runs once after the
/// simulation completes; the journal is itself recorded only while
/// telemetry is on, so this is purely observational.
fn derive_occupancy_spans(state: &mut ServerState) {
    let journal: Vec<LaneEvent> = state.ledger.journal().to_vec();
    if journal.is_empty() {
        return;
    }
    // (segment start, level) per lane; level-0 segments are idle and
    // produce no span.
    let mut seg: Vec<(SimTime, u64)> = vec![(SimTime::ZERO, 0); state.ledger.lane_count()];
    for e in &journal {
        let name = state.ledger.lane_name(e.lane);
        let (start, level) = seg[e.lane.index()];
        if level != e.in_use {
            if level > 0 && e.at > start {
                let lid = state.telemetry.intern(name);
                let label = format!("{name}={level}");
                state
                    .telemetry
                    .span(Track::Lane(lid), Phase::Occupancy, &label, start, e.at);
            }
            seg[e.lane.index()] = (e.at, e.in_use);
        }
        state
            .telemetry
            .gauge(&format!("{name} in_use"), e.at, e.in_use as f64);
    }
}

/// Converts the capacity-ledger journal into per-window lane busy-time
/// counters: `lane_inuse_ns` integrates `in_use` over each window per lane
/// (so per-window utilisation = `inuse_ns / (capacity × window width)`,
/// with the capacity on the `lane_capacity` gauge).  Runs once after the
/// simulation completes; purely observational, like the journal itself.
fn derive_lane_busy_windows(state: &mut ServerState) {
    let window_ns = state.metrics.window().as_nanos();
    let lanes: [(LaneId, &'static str); 3] = [
        (state.lane_npu, "npu"),
        (state.lane_flash, "flash"),
        (state.lane_cpu, "cpu"),
    ];
    for (lane, class) in lanes {
        state.metrics.gauge(
            "lane_capacity",
            class,
            SimTime::ZERO,
            state.ledger.lane_capacity(lane) as f64,
        );
    }
    let journal: Vec<LaneEvent> = state.ledger.journal().to_vec();
    let mut seg: Vec<(SimTime, u64)> = vec![(SimTime::ZERO, 0); state.ledger.lane_count()];
    for e in &journal {
        let (start, level) = seg[e.lane.index()];
        if level > 0 && e.at > start {
            if let Some(&(_, class)) = lanes.iter().find(|(id, _)| *id == e.lane) {
                // Split the busy segment at window boundaries so each
                // window's integral is exact.
                let mut t = start.as_nanos();
                let end_ns = e.at.as_nanos();
                while t < end_ns {
                    let next_boundary = (t / window_ns + 1) * window_ns;
                    let piece_end = next_boundary.min(end_ns);
                    state.metrics.add(
                        "lane_inuse_ns",
                        class,
                        SimTime::from_nanos(t),
                        (piece_end - t) * level,
                    );
                    t = piece_end;
                }
            }
        }
        seg[e.lane.index()] = (e.at, e.in_use);
    }
}

fn fleet_stats(state: &ServerState) -> FleetStats {
    let records = &state.records;
    let horizon = records
        .iter()
        .map(|r| r.completed)
        .max()
        .unwrap_or(SimTime::ZERO);
    let ms = |v: Vec<f64>| PercentileSummary::from_values(&v);
    let ttft: Vec<f64> = records
        .iter()
        .map(|r| r.ttft_e2e().as_millis_f64())
        .collect();
    // Realised service TTFT (dispatch → first token): identical to
    // `report.ttft` under the slot dispatcher, and additionally carries the
    // chunked prefill's interleaving stall under batching.
    let service: Vec<f64> = records
        .iter()
        .map(|r| r.service_ttft().as_millis_f64())
        .collect();
    let wait: Vec<f64> = records
        .iter()
        .map(|r| r.queue_wait().as_millis_f64())
        .collect();
    let followup: Vec<f64> = records
        .iter()
        .filter(|r| r.request.shared_prefix_len > 0)
        .map(|r| r.ttft_e2e().as_millis_f64())
        .collect();
    let followup_service: Vec<f64> = records
        .iter()
        .filter(|r| r.request.shared_prefix_len > 0)
        .map(|r| r.service_ttft().as_millis_f64())
        .collect();
    let mean_ms = |f: &dyn Fn(&RequestRecord) -> SimDuration| {
        if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| f(r).as_millis_f64()).sum::<f64>() / records.len() as f64
        }
    };
    let batch_busy_secs = state.batch_busy_ns as f64 / 1e9;
    let occupancy_weighted: f64 = state
        .batch_occupancy_ns
        .iter()
        .map(|(&occ, &ns)| occ as f64 * ns as f64 / 1e9)
        .sum();
    let kv_stats = state.kv.stats();
    let horizon_secs = horizon.as_secs_f64();
    let usage = state.ledger.usage(horizon);
    let lane_util = |id: LaneId| usage[id.index()].utilisation(horizon);
    FleetStats {
        completed: records.len(),
        rejected: state.rejected.len(),
        horizon,
        throughput_rps: if horizon_secs > 0.0 {
            records.len() as f64 / horizon_secs
        } else {
            0.0
        },
        ttft_ms: ms(ttft),
        service_ttft_ms: ms(service),
        queue_wait_ms: ms(wait),
        mean_queue_depth: if horizon_secs > 0.0 {
            state.depth_integral / horizon_secs
        } else {
            0.0
        },
        max_queue_depth: state.max_depth,
        mean_cached_fraction: if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.cached_fraction).sum::<f64>() / records.len() as f64
        },
        cold_starts: records.iter().filter(|r| r.cached_fraction == 0.0).count(),
        mean_decode_tps: if records.is_empty() {
            0.0
        } else {
            records
                .iter()
                .map(|r| r.report.decode_tokens_per_sec)
                .sum::<f64>()
                / records.len() as f64
        },
        restore_ahead_bytes: state.restore_ahead_bytes,
        plan_cache_hits: state.plan_cache.hits(),
        plan_cache_misses: state.plan_cache.misses(),
        npu_utilisation: lane_util(state.lane_npu),
        flash_utilisation: lane_util(state.lane_flash),
        mean_decode_stall_ms: if records.is_empty() {
            0.0
        } else {
            records
                .iter()
                .map(|r| r.decode_stall().as_millis_f64())
                .sum::<f64>()
                / records.len() as f64
        },
        mean_stall_sharing_ms: mean_ms(&|r| r.stall_sharing),
        mean_stall_preemption_ms: mean_ms(&|r| r.stall_preemption),
        mean_prefill_stall_ms: mean_ms(&|r| r.prefill_stall),
        batch_steps: state.batch_steps,
        mean_batch_occupancy: if batch_busy_secs > 0.0 {
            occupancy_weighted / batch_busy_secs
        } else {
            0.0
        },
        batch_occupancy: state
            .batch_occupancy_ns
            .iter()
            .map(|(&occ, &ns)| (occ, ns as f64 / 1e9))
            .collect(),
        batched_decode_tps: if batch_busy_secs > 0.0 {
            state.batch_decode_tokens as f64 / batch_busy_secs
        } else {
            0.0
        },
        max_batch_step_ms: state.batch_max_step_ns as f64 / 1e6,
        batch_max_steps_behind: state.batch_max_steps_behind,
        spec_steps: state.spec_steps,
        spec_proposed_tokens: state.spec_proposed_tokens,
        spec_accepted_tokens: state.spec_accepted_tokens,
        spec_rejected_tokens: state.spec_rejected_tokens,
        spec_accept_rate: if state.spec_proposed_tokens > 0 {
            state.spec_accepted_tokens as f64 / state.spec_proposed_tokens as f64
        } else {
            0.0
        },
        spec_draft_overhead: if state.batch_busy_ns > 0 {
            state.spec_draft_ns as f64 / state.batch_busy_ns as f64
        } else {
            0.0
        },
        spec_emitted_per_step: state
            .spec_emitted_hist
            .iter()
            .map(|(&emitted, &steps)| (emitted, steps))
            .collect(),
        spec_mean_emitted_per_step: {
            let steps: u64 = state.spec_emitted_hist.values().sum();
            if steps > 0 {
                state
                    .spec_emitted_hist
                    .iter()
                    .map(|(&e, &n)| e as u64 * n)
                    .sum::<u64>() as f64
                    / steps as f64
            } else {
                0.0
            }
        },
        kv_hit_rate: if state.kv_requested_tokens > 0 {
            state.kv_reused_tokens as f64 / state.kv_requested_tokens as f64
        } else {
            0.0
        },
        kv_reused_tokens: state.kv_reused_tokens,
        kv_spilled_bytes: kv_stats.spilled_bytes,
        kv_spilled_compressed_bytes: kv_stats.spilled_compressed_bytes,
        kv_unsealed_bytes: kv_stats.unsealed_bytes,
        kv_restore_ahead_bytes: state.kv_restore_ahead_bytes,
        kv_dequant_bytes: kv_stats.dequant_bytes,
        kv_peak_sealed_pages: kv_stats.peak_sealed_pages,
        kv_peak_sealed_bytes: kv_stats.peak_sealed_bytes,
        kv_dropped_bytes: kv_stats.dropped_bytes,
        kv_shared_tokens: kv_stats.shared_tokens,
        kv_shared_hit_rate: if state.kv_shared_candidate_tokens > 0 {
            (state.kv_shared_hit_tokens as f64 / state.kv_shared_candidate_tokens as f64).min(1.0)
        } else {
            0.0
        },
        kv_deduped_bytes: kv_stats.peak_deduped_bytes,
        followup_ttft_ms: ms(followup),
        followup_service_ttft_ms: ms(followup_service),
        kv_chain: state.kv.chain_stats(),
        kv_hit_depth: state.kv.hit_depth_histogram(),
    }
}

/// Runs one request through a one-model serving instance — the serving-path
/// implementation behind [`crate::system::evaluate_tzllm`].  Uses the serial
/// dispatcher with the plan cache off so the single-request numbers are
/// byte-identical to a direct evaluation.
pub fn single_request(
    profile: &PlatformProfile,
    config: &crate::system::InferenceConfig,
) -> InferenceReport {
    let serving_config = ServingConfig {
        profile: profile.clone(),
        policy: config.policy,
        use_checkpoint: config.use_checkpoint,
        memory_pressure: config.memory_pressure,
        max_queue_depth: 1,
        retention: RetentionPolicy::ReleaseAll,
        max_inflight: 1,
        restore_ahead: false,
        continuous_batching: false,
        prefill_chunk_tokens: 128,
        plan_cache_capacity: 0,
        kv: KvConfig::disabled(),
        speculation: SpeculationConfig::off(),
        telemetry: false,
        metrics: None,
    };
    let mut server = Server::new(serving_config, vec![config.model.clone()]);
    // Seed in the controller's own unit (the model's Q8 blob size) so the
    // fraction read back at dispatch equals the configured knob exactly.
    let seed_bytes =
        (config.model.total_q8_bytes() as f64 * config.cached_fraction.clamp(0.0, 1.0)) as u64;
    server.seed_cache(&config.model.name, seed_bytes);
    server.submit_at(
        SimTime::ZERO,
        0,
        &config.model.name,
        config.prompt_len,
        config.output_len,
    );
    let report = server.run();
    report
        .records
        .into_iter()
        .next()
        .expect("the single request completes")
        .report
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::ArrivalProcess;

    fn catalogue() -> Vec<ModelSpec> {
        vec![ModelSpec::qwen2_5_3b()]
    }

    fn quiet_poisson(requests: usize) -> WorkloadSpec {
        WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: 0.02 },
            requests,
            "qwen2.5-3b",
        )
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let report = Server::run_workload(
            ServingConfig::paper_default(PlatformProfile::rk3588()),
            catalogue(),
            &quiet_poisson(12),
            1,
        );
        assert_eq!(report.fleet.completed, 12);
        assert_eq!(report.fleet.rejected, 0);
        // Light load: hardly any queueing, so e2e TTFT ~= service TTFT.
        let e2e = report.fleet.ttft_ms.unwrap();
        let service = report.fleet.service_ttft_ms.unwrap();
        assert!(e2e.p50 >= service.p50);
    }

    #[test]
    fn adaptive_retention_warms_the_cache() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.retention = RetentionPolicy::Adaptive {
            step_fraction: 0.25,
        };
        // Serial slot: this test is about retention across *completions*;
        // with two slots a closely-spaced pair may overlap, and the second
        // dispatch would legitimately still see a cold cache.
        config.max_inflight = 1;
        let report = Server::run_workload(config, catalogue(), &quiet_poisson(8), 3);
        let fractions: Vec<f64> = report.records.iter().map(|r| r.cached_fraction).collect();
        assert_eq!(fractions[0], 0.0, "first request must be cold");
        // Warm-up: strictly increasing until saturation.
        assert!(fractions[1] > 0.0);
        assert!(report.fleet.mean_cached_fraction > 0.3);
        assert_eq!(report.fleet.cold_starts, 1);
        // Warm requests are faster than the cold one.
        let cold = report.records[0].report.ttft;
        let last = report.records.last().unwrap().report.ttft;
        assert!(last < cold, "warm {last} vs cold {cold}");
    }

    #[test]
    fn release_all_means_every_request_cold_starts() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.retention = RetentionPolicy::ReleaseAll;
        let report = Server::run_workload(config, catalogue(), &quiet_poisson(5), 3);
        assert_eq!(report.fleet.cold_starts, 5);
    }

    #[test]
    fn overload_rejects_beyond_queue_depth() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.max_queue_depth = 2;
        let mut server = Server::new(config, catalogue());
        // A stampede of simultaneous arrivals: one dispatches, two queue, the
        // rest are rejected (the service phase is exclusive, so only one
        // request leaves the queue at time zero even with two slots).
        for i in 0..8 {
            server.submit_at(SimTime::ZERO, i, "qwen2.5-3b", 128, 16);
        }
        let report = server.run();
        assert_eq!(report.fleet.completed, 3);
        assert_eq!(report.fleet.rejected, 5);
        assert_eq!(report.fleet.max_queue_depth, 2);
    }

    #[test]
    fn queueing_inflates_e2e_ttft_not_service_ttft() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        for i in 0..4 {
            server.submit_at(SimTime::ZERO, i, "qwen2.5-3b", 128, 8);
        }
        let report = server.run();
        // Completion order follows FIFO dispatch order.
        let waits: Vec<SimDuration> = report.records.iter().map(|r| r.queue_wait()).collect();
        assert_eq!(waits[0], SimDuration::ZERO);
        for w in waits.windows(2) {
            assert!(w[1] > w[0], "{:?}", waits);
        }
        let e2e = report.fleet.ttft_ms.unwrap();
        let service = report.fleet.service_ttft_ms.unwrap();
        assert!(e2e.max > service.max);
    }

    #[test]
    fn closed_loop_sessions_interleave_on_one_device() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let workload = WorkloadSpec::standard(
            ArrivalProcess::ClosedLoop {
                sessions: 3,
                mean_think: SimDuration::from_secs(5),
            },
            9,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config, catalogue(), &workload, 17);
        assert_eq!(report.fleet.completed, 9);
        // All three sessions made progress.
        for s in 0..3u64 {
            assert_eq!(
                report
                    .records
                    .iter()
                    .filter(|r| r.request.session == s)
                    .count(),
                3
            );
        }
        // Requests of one session never overlap: its n-th request arrives
        // after its (n-1)-th completed.
        for s in 0..3u64 {
            let mut last_completed = SimTime::ZERO;
            for r in report.records.iter().filter(|r| r.request.session == s) {
                assert!(r.arrival >= last_completed);
                last_completed = r.completed;
            }
        }
    }

    #[test]
    fn rejected_closed_loop_requests_do_not_kill_their_session() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.max_queue_depth = 1;
        // 6 sessions stampede a queue of depth 1: early first-requests are
        // rejected, but every session must still play out its full script.
        let workload = WorkloadSpec::standard(
            ArrivalProcess::ClosedLoop {
                sessions: 6,
                mean_think: SimDuration::from_millis(10),
            },
            18,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config, catalogue(), &workload, 9);
        assert!(
            report.fleet.rejected > 0,
            "the stampede must overflow the queue"
        );
        assert_eq!(
            report.fleet.completed + report.fleet.rejected,
            18,
            "every scripted request is either served or rejected — none vanish"
        );
    }

    #[test]
    fn completion_frees_the_device_after_the_last_token_only() {
        for config in [
            ServingConfig::paper_default(PlatformProfile::rk3588()),
            ServingConfig::overlap(PlatformProfile::rk3588()),
        ] {
            // output_len = 1: the single output token is the prefill's first
            // token, so the device is free again exactly at first_token.
            let mut server = Server::new(config.clone(), catalogue());
            server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 1);
            let report = server.run();
            let r = &report.records[0];
            assert_eq!(r.completed, r.first_token);

            // output_len = 9: eight more tokens decode after the first.  The
            // slot dispatcher realises the report's decode rate exactly; the
            // batched step loop prices steps from the affine cost
            // coefficients, which agree with the graph-summed rate to within
            // per-operator rounding (well under a microsecond over 8 tokens).
            let tolerance = if config.continuous_batching {
                2e-6
            } else {
                1e-9
            };
            let mut server = Server::new(config, catalogue());
            server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 9);
            let report = server.run();
            let r = &report.records[0];
            let decode = r.completed.saturating_since(r.first_token);
            let expected = SimDuration::from_secs_f64(8.0 / r.report.decode_tokens_per_sec);
            let diff = (decode.as_secs_f64() - expected.as_secs_f64()).abs();
            assert!(
                diff < tolerance,
                "decode {decode} vs expected {expected} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn multi_model_catalogue_keeps_separate_caches() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(
            config,
            vec![ModelSpec::tinyllama_1_1b(), ModelSpec::qwen2_5_3b()],
        );
        // Alternate between the two models; each model's *own* second request
        // should be warm.
        let t = |s| SimTime::from_secs(s);
        server.submit_at(t(0), 0, "tinyllama-1.1b", 64, 8);
        server.submit_at(t(200), 1, "qwen2.5-3b", 64, 8);
        server.submit_at(t(400), 2, "tinyllama-1.1b", 64, 8);
        server.submit_at(t(600), 3, "qwen2.5-3b", 64, 8);
        let report = server.run();
        assert_eq!(report.fleet.completed, 4);
        assert_eq!(report.fleet.cold_starts, 2, "one cold start per model");
        assert!(report.records[2].cached_fraction > 0.0);
        assert!(report.records[3].cached_fraction > 0.0);
    }

    #[test]
    fn overlap_dispatches_next_service_during_decode() {
        // Two back-to-back requests with a long decode: under the overlapped
        // dispatcher the second request's service phase starts at the first
        // request's first token, not at its completion.
        let config = ServingConfig::overlap(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 256);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 128, 8);
        let report = server.run();
        let by_id = |id: u64| report.records.iter().find(|r| r.request.id == id).unwrap();
        let (r0, r1) = (by_id(0), by_id(1));
        assert_eq!(r1.dispatched, r0.first_token);
        assert!(
            r1.dispatched < r0.completed,
            "second service must start mid-decode: {} vs {}",
            r1.dispatched,
            r0.completed
        );

        // The serial dispatcher waits for the full completion.
        let serial = ServingConfig::serial(PlatformProfile::rk3588());
        let mut server = Server::new(serial, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 256);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 128, 8);
        let serial_report = server.run();
        let s1 = serial_report
            .records
            .iter()
            .find(|r| r.request.id == 1)
            .unwrap();
        assert!(r1.ttft_e2e() < s1.ttft_e2e());
    }

    #[test]
    fn prefill_preemption_pauses_the_running_decode() {
        // Request 0 decodes for a long time; request 1's prefill preempts
        // the NPU mid-decode, so request 0 finishes later than its intrinsic
        // decode time says — by at least the prefill's NPU-exclusive window.
        let config = ServingConfig::overlap(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 512);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 384, 1);
        let report = server.run();
        let r0 = report.records.iter().find(|r| r.request.id == 0).unwrap();
        assert!(
            r0.decode_stall() > SimDuration::ZERO,
            "decode must stall while the second prefill holds the NPU"
        );
        assert!(
            r0.stall_preemption > SimDuration::ZERO,
            "the stall must be attributed to preemption"
        );
        assert!(report.fleet.mean_decode_stall_ms > 0.0);
        assert!(report.fleet.mean_stall_preemption_ms > 0.0);
    }

    #[test]
    fn chunked_prefill_interleaves_instead_of_preempting() {
        // The same scenario under continuous batching: the second request's
        // prefill joins the step loop as chunks, so the running decode is
        // never paused — preemption stall is exactly zero and the lost time
        // shows up as (bounded) sharing stall instead.
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 512);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 384, 1);
        let report = server.run();
        let r0 = report.records.iter().find(|r| r.request.id == 0).unwrap();
        let r1 = report.records.iter().find(|r| r.request.id == 1).unwrap();
        assert_eq!(r0.stall_preemption, SimDuration::ZERO);
        assert_eq!(report.fleet.mean_stall_preemption_ms, 0.0);
        // The prefill really interleaved mid-decode rather than waiting out
        // the decode, and it paid for the interleaving.
        assert!(r1.first_token < r0.completed);
        assert!(r1.prefill_stall > SimDuration::ZERO);
        assert!(report.fleet.batch_steps > 0);
        assert_eq!(report.fleet.batch_max_steps_behind, 0);
    }

    #[test]
    fn batched_dispatch_starts_before_the_first_token() {
        // Under continuous batching the second request's service phase can
        // start as soon as the first's pre-NPU phase ends — even earlier
        // than the slot dispatcher's first-token boundary.
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 256);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 128, 8);
        let report = server.run();
        let by_id = |id: u64| report.records.iter().find(|r| r.request.id == id).unwrap();
        let (r0, r1) = (by_id(0), by_id(1));
        assert!(
            r1.dispatched <= r0.first_token,
            "second service must not wait for the first token: {} vs {}",
            r1.dispatched,
            r0.first_token
        );
        assert!(r1.dispatched < r0.completed);
        // Both sequences decoded together at some point: some step held two.
        assert!(report
            .fleet
            .batch_occupancy
            .iter()
            .any(|&(occ, secs)| occ >= 2 && secs > 0.0));
    }

    #[test]
    fn batching_off_reproduces_the_overlap_dispatcher_bit_for_bit() {
        // The escape hatch: `paper_default` with batching disabled and the
        // slot count restored must be indistinguishable from the PR-5
        // dispatcher — every record, every counter.
        let mut off = ServingConfig::paper_default(PlatformProfile::rk3588());
        off.continuous_batching = false;
        off.max_inflight = 2;
        let workload = WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: 0.1 },
            40,
            "qwen2.5-3b",
        );
        let a = Server::run_workload(off, catalogue(), &workload, 0xBEEF);
        let b = Server::run_workload(
            ServingConfig::overlap(PlatformProfile::rk3588()),
            catalogue(),
            &workload,
            0xBEEF,
        );
        assert_eq!(format!("{:?}", a.fleet), format!("{:?}", b.fleet));
        assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    }

    #[test]
    fn restore_ahead_warms_the_next_request() {
        // Two different models back to back, serial slot (so the second
        // request waits out the first's decode) with restore-ahead on: the
        // second model's parameters stream in during the first's decode and
        // its dispatch finds a warm cache.
        let mut config = ServingConfig::serial(PlatformProfile::rk3588());
        config.restore_ahead = true;
        let mut server = Server::new(
            config,
            vec![ModelSpec::tinyllama_1_1b(), ModelSpec::qwen2_5_3b()],
        );
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 512);
        server.submit_at(SimTime::ZERO, 1, "tinyllama-1.1b", 128, 8);
        let report = server.run();
        let r1 = report.records.iter().find(|r| r.request.id == 1).unwrap();
        assert!(
            r1.cached_fraction > 0.0,
            "restore-ahead must have credited bytes: {}",
            r1.cached_fraction
        );
        assert!(report.fleet.restore_ahead_bytes > 0);

        // Without restore-ahead the same dispatch is stone cold.
        let serial = ServingConfig::serial(PlatformProfile::rk3588());
        let mut server = Server::new(
            serial,
            vec![ModelSpec::tinyllama_1_1b(), ModelSpec::qwen2_5_3b()],
        );
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 512);
        server.submit_at(SimTime::ZERO, 1, "tinyllama-1.1b", 128, 8);
        let cold = server.run();
        let c1 = cold.records.iter().find(|r| r.request.id == 1).unwrap();
        assert_eq!(c1.cached_fraction, 0.0);
        assert_eq!(cold.fleet.restore_ahead_bytes, 0);
        assert!(r1.report.ttft < c1.report.ttft);
    }

    #[test]
    fn restore_ahead_skips_models_with_inflight_requests() {
        // Same model back to back: the in-flight request's completion will
        // refresh the cache, so restore-ahead must not double-restore.
        let mut config = ServingConfig::serial(PlatformProfile::rk3588());
        config.restore_ahead = true;
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 512);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 128, 8);
        let report = server.run();
        assert_eq!(report.fleet.restore_ahead_bytes, 0);
    }

    #[test]
    fn single_big_core_profile_serves_without_lane_conflicts() {
        // On a 1-big-core profile, restore-ahead and a warm dispatch both
        // want the only core: the dispatch must interrupt the restore-ahead
        // instead of double-booking the CPU lane.
        let mut profile = PlatformProfile::rk3588();
        profile.big_cores = 1;
        let mut config = ServingConfig::paper_default(profile);
        config.retention = RetentionPolicy::KeepAll;
        let mut server = Server::new(
            config,
            vec![ModelSpec::tinyllama_1_1b(), ModelSpec::qwen2_5_3b()],
        );
        // Warm up qwen, then force a warm qwen dispatch while tinyllama is
        // queued cold (restore-ahead grabs the core during decode).
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 64, 256);
        server.submit_at(SimTime::ZERO, 1, "qwen2.5-3b", 64, 256);
        server.submit_at(SimTime::ZERO, 2, "tinyllama-1.1b", 64, 8);
        server.submit_at(SimTime::ZERO, 3, "qwen2.5-3b", 64, 8);
        let report = server.run();
        assert_eq!(report.fleet.completed, 4);
        for lane in &report.resources {
            assert!(lane.peak_in_use <= lane.capacity, "{}", lane.name);
        }
    }

    #[test]
    fn lanes_never_exceed_capacity() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let workload = WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: 0.2 },
            30,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config, catalogue(), &workload, 5);
        for lane in &report.resources {
            assert!(
                lane.peak_in_use <= lane.capacity,
                "{}: peak {} > capacity {}",
                lane.name,
                lane.peak_in_use,
                lane.capacity
            );
            assert_eq!(lane.in_use, 0, "{}: still held at shutdown", lane.name);
        }
    }
}
