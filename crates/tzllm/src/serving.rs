//! Multi-session serving on one TZ-LLM device.
//!
//! The paper evaluates one inference at a time; this module turns the same
//! calibrated machinery into a *serving system*: a [`Server`] owns a
//! catalogue of models, one shared [`CacheController`] per model, and the
//! device's CPU/NPU/IO resources, and is driven by [`sim_core::Engine`]
//! events.  Requests arrive from workload-generated arrival processes
//! ([`workloads::traffic`]), wait in an admission-bounded FIFO queue, and
//! execute through exactly the paper's request path — [`RestorePlan`] +
//! [`crate::pipeline::simulate`] — with one crucial change: the cached
//! fraction of the parameters is no longer a hand-set knob but is read from
//! the **live cache controller at dispatch time**, so inter-request cache
//! warm-up and eviction under REE memory pressure shape each request's TTFT.
//!
//! [`RestorePlan`]: crate::restore::RestorePlan
//!
//! ## Device model
//!
//! The device serves one request at a time (the TA owns all big cores, the
//! NPU and the I/O engine for the duration of a request, as in the paper's
//! prototype); concurrency shows up as queueing.  Between requests the
//! retention policy decides how many parameter bytes stay resident in secure
//! memory — the serving-layer realisation of §4.1's partial parameter
//! caching:
//!
//! * the first request for a model always cold-starts;
//! * after each completed request the controller retains a prefix of the
//!   blob bounded by the policy and by the REE's memory headroom;
//! * with [`RetentionPolicy::Adaptive`], the retained prefix *grows* with
//!   every completed request — the server starts conservative (REE memory is
//!   precious on a phone) and earns the right to keep more resident as
//!   repeated traffic demonstrates reuse — so consecutive warm requests get
//!   strictly faster until the cache saturates.
//!
//! The TA also stays warm between requests: only the first dispatch of a
//! model pays the configured framework-initialisation cost; subsequent
//! dispatches pay the checkpoint-restore cost (the TA is suspended, not torn
//! down).
//!
//! ## Example
//!
//! ```
//! use tz_hal::PlatformProfile;
//! use workloads::{ArrivalProcess, WorkloadSpec};
//! use tzllm::serving::{Server, ServingConfig};
//!
//! let config = ServingConfig::paper_default(PlatformProfile::rk3588());
//! let workload = WorkloadSpec::standard(
//!     ArrivalProcess::Poisson { rate_per_sec: 0.05 },
//!     10,
//!     "qwen2.5-3b",
//! );
//! let report = Server::run_workload(config, llm::ModelSpec::catalogue(), &workload, 42);
//! assert_eq!(report.records.len(), 10);
//! let fleet = &report.fleet;
//! assert!(fleet.ttft_ms.unwrap().p99 >= fleet.ttft_ms.unwrap().p50);
//! ```

use std::collections::{BTreeMap, VecDeque};

use llm::ModelSpec;
use sim_core::{Engine, EventScheduler, PercentileSummary, SimDuration, SimTime};
use tz_hal::PlatformProfile;
use workloads::{SessionScript, WorkloadSpec};

use crate::cache::{CacheController, CachePolicy};
use crate::pipeline::Policy;
use crate::system::{self, InferenceConfig, InferenceReport};

/// How many parameter bytes stay resident in secure memory between requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionPolicy {
    /// Release everything after each request (every request cold-starts).
    ReleaseAll,
    /// Keep a fixed fraction of the blob resident.
    Fixed(f64),
    /// Keep everything resident (no REE memory pressure).
    KeepAll,
    /// Start at zero and grow the retained prefix by `step_fraction` of the
    /// blob with each completed request, up to the REE memory headroom:
    /// retention is *earned* by demonstrated reuse, so a request sequence
    /// warms up gradually instead of pinning a whole model after one hit.
    Adaptive {
        /// Fraction of the blob added to the retention target per completion.
        step_fraction: f64,
    },
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Platform calibration.
    pub profile: PlatformProfile,
    /// Pipeline scheduling policy used for every dispatched request.
    pub policy: Policy,
    /// Whether the framework-state checkpoint exists for the *first* dispatch
    /// of each model (later dispatches always restore from the warm TA).
    pub use_checkpoint: bool,
    /// REE memory pressure in bytes (drives CMA migration cost and bounds
    /// adaptive retention).
    pub memory_pressure: u64,
    /// Admission policy: arrivals beyond this many waiting requests are
    /// rejected.
    pub max_queue_depth: usize,
    /// Inter-request cache retention policy.
    pub retention: RetentionPolicy,
}

impl ServingConfig {
    /// The default serving setup on the paper's testbed: preemptive
    /// pipelining, checkpoints on, 8 GiB of REE pressure, a 64-deep queue and
    /// adaptive retention in 25 % steps.
    pub fn paper_default(profile: PlatformProfile) -> Self {
        ServingConfig {
            profile,
            policy: Policy::PriorityPreemptive,
            use_checkpoint: true,
            memory_pressure: 8 * sim_core::GIB,
            max_queue_depth: 64,
            retention: RetentionPolicy::Adaptive {
                step_fraction: 0.25,
            },
        }
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Dense id in submission order.
    pub id: u64,
    /// Session the request belongs to.
    pub session: u64,
    /// Catalogue model name.
    pub model: String,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
}

/// The full latency record of one completed request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request.
    pub request: Request,
    /// When it arrived.
    pub arrival: SimTime,
    /// When the device started serving it.
    pub dispatched: SimTime,
    /// When its first token was produced (end-to-end TTFT = this − arrival).
    pub first_token: SimTime,
    /// When its last token was produced.
    pub completed: SimTime,
    /// Fraction of the parameters that were resident when it was dispatched.
    pub cached_fraction: f64,
    /// The per-request evaluation (service-time TTFT, decode speed, breakdown).
    pub report: InferenceReport,
}

impl RequestRecord {
    /// Time spent waiting in the queue.
    pub fn queue_wait(&self) -> SimDuration {
        self.dispatched.saturating_since(self.arrival)
    }

    /// End-to-end TTFT as the user sees it (queueing included).
    pub fn ttft_e2e(&self) -> SimDuration {
        self.first_token.saturating_since(self.arrival)
    }
}

/// Fleet-level statistics over one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Completed requests.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completion time of the last request.
    pub horizon: SimTime,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// End-to-end TTFT (arrival → first token), milliseconds.
    pub ttft_ms: Option<PercentileSummary>,
    /// Service TTFT (dispatch → first token), milliseconds.
    pub service_ttft_ms: Option<PercentileSummary>,
    /// Queue wait, milliseconds.
    pub queue_wait_ms: Option<PercentileSummary>,
    /// Time-weighted mean number of waiting requests.
    pub mean_queue_depth: f64,
    /// Maximum number of waiting requests.
    pub max_queue_depth: usize,
    /// Mean cached fraction observed at dispatch (the cache hit-fraction).
    pub mean_cached_fraction: f64,
    /// Dispatches that found a completely cold cache.
    pub cold_starts: usize,
    /// Mean decode speed across requests, tokens/s.
    pub mean_decode_tps: f64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests rejected by admission control, in arrival order.
    pub rejected: Vec<Request>,
    /// Fleet-level statistics.
    pub fleet: FleetStats,
}

struct ModelEntry {
    spec: ModelSpec,
    cache: CacheController,
    /// Current adaptive retention target in bytes.
    retained_target: u64,
    /// Whether the TA for this model has dispatched at least once (warm).
    warm: bool,
}

struct ServerState {
    config: ServingConfig,
    models: BTreeMap<String, ModelEntry>,
    queue: VecDeque<(Request, SimTime)>,
    busy: bool,
    records: Vec<RequestRecord>,
    rejected: Vec<Request>,
    /// Session scripts with per-session cursors (closed-loop continuations).
    scripts: Vec<SessionScript>,
    cursors: Vec<usize>,
    next_id: u64,
    // Time-weighted queue-depth accounting.
    depth_integral: f64,
    depth_last_change: SimTime,
    max_depth: usize,
}

impl ServerState {
    fn note_depth(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.depth_last_change).as_secs_f64();
        self.depth_integral += self.queue.len() as f64 * dt;
        self.depth_last_change = now;
        self.max_depth = self.max_depth.max(self.queue.len());
    }
}

fn on_arrival(state: &mut ServerState, sched: &mut EventScheduler<ServerState>, request: Request) {
    state.note_depth(sched.now());
    if state.queue.len() >= state.config.max_queue_depth {
        // The session lives on even though this request was turned away: a
        // closed-loop user sees the rejection immediately, thinks, and sends
        // their next request.
        let session = request.session;
        state.rejected.push(request);
        schedule_session_continuation(state, sched, session);
    } else {
        state.queue.push_back((request, sched.now()));
        state.note_depth(sched.now());
    }
    try_dispatch(state, sched);
}

/// Schedules the next scripted request of `session`, if any remains — one
/// think-time after the point the session observed its previous outcome
/// (response completion or admission rejection).
fn schedule_session_continuation(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    session: u64,
) {
    if let Some(script_idx) = state.scripts.iter().position(|s| s.session == session) {
        let cursor = state.cursors[script_idx];
        if let Some(next) = state.scripts[script_idx].requests.get(cursor) {
            state.cursors[script_idx] += 1;
            let request = Request {
                id: state.next_id,
                session,
                model: next.model.clone(),
                prompt_len: next.prompt_len,
                output_len: next.output_len,
            };
            state.next_id += 1;
            let at = sched.now() + next.delay;
            sched.schedule_at(at, move |state, sched| on_arrival(state, sched, request));
        }
    }
}

fn try_dispatch(state: &mut ServerState, sched: &mut EventScheduler<ServerState>) {
    if state.busy {
        return;
    }
    let now = sched.now();
    state.note_depth(now);
    let Some((request, arrival)) = state.queue.pop_front() else {
        return;
    };
    state.note_depth(now);
    state.busy = true;

    let entry = state
        .models
        .get_mut(&request.model)
        .expect("submit validated the model name");

    // The serving-path cache wiring: the cached fraction comes from the live
    // controller, not a knob.
    let mut config =
        InferenceConfig::from_cache(entry.spec.clone(), request.prompt_len, &entry.cache);
    config.output_len = request.output_len;
    config.memory_pressure = state.config.memory_pressure;
    config.policy = state.config.policy;

    // A warm TA restores its suspended framework state; a cold one needs the
    // checkpoint (if it exists) or a full framework initialisation.
    let framework_init = if entry.warm || state.config.use_checkpoint {
        state.config.profile.checkpoint_restore
    } else {
        state.config.profile.framework_init_total()
    };
    entry.warm = true;

    let cached_fraction = config.cached_fraction;
    let report = system::evaluate_service(&state.config.profile, &config, framework_init);

    let first_token = now + report.ttft;
    // The first output token is produced by the prefill (that is what TTFT
    // measures); decoding generates the remaining output_len - 1 tokens.
    let remaining_tokens = request.output_len.saturating_sub(1);
    let decode_time =
        SimDuration::from_secs_f64(remaining_tokens as f64 / report.decode_tokens_per_sec);
    let completed = first_token + decode_time;

    let record = RequestRecord {
        request,
        arrival,
        dispatched: now,
        first_token,
        completed,
        cached_fraction,
        report,
    };
    sched.schedule_at(completed, move |state, sched| {
        on_complete(state, sched, record)
    });
}

fn on_complete(
    state: &mut ServerState,
    sched: &mut EventScheduler<ServerState>,
    record: RequestRecord,
) {
    let session = record.request.session;
    {
        let config = &state.config;
        let entry = state
            .models
            .get_mut(&record.request.model)
            .expect("model entry exists");
        // All parameters are resident right after an inference; the retention
        // policy then decides what survives until the next dispatch.
        entry.cache.on_inference_complete();
        let total = entry.cache.total_bytes();
        let headroom = config
            .profile
            .dram_bytes
            .saturating_sub(config.memory_pressure);
        let target = match config.retention {
            RetentionPolicy::ReleaseAll => 0,
            RetentionPolicy::Fixed(fraction) => {
                ((total as f64 * fraction.clamp(0.0, 1.0)) as u64).min(headroom)
            }
            RetentionPolicy::KeepAll => total,
            RetentionPolicy::Adaptive { step_fraction } => {
                let step = (total as f64 * step_fraction.clamp(0.0, 1.0)) as u64;
                entry
                    .retained_target
                    .saturating_add(step)
                    .min(total)
                    .min(headroom)
            }
        };
        entry.retained_target = target;
        entry
            .cache
            .apply_policy(CachePolicy::MemoryHeadroom(target));
    }
    state.records.push(record);
    state.busy = false;

    // Closed-loop continuation: the session thinks, then sends its next
    // request.
    schedule_session_continuation(state, sched, session);

    try_dispatch(state, sched);
}

/// A multi-session TZ-LLM serving instance.
pub struct Server {
    engine: Engine<ServerState>,
}

impl Server {
    /// Creates a server over a model catalogue. Each model gets its own cold
    /// [`CacheController`].
    pub fn new(config: ServingConfig, catalogue: Vec<ModelSpec>) -> Server {
        let models = catalogue
            .into_iter()
            .map(|spec| {
                let total = spec.total_q8_bytes();
                (
                    spec.name.clone(),
                    ModelEntry {
                        spec,
                        cache: CacheController::new(total),
                        retained_target: 0,
                        warm: false,
                    },
                )
            })
            .collect();
        Server {
            engine: Engine::new(ServerState {
                config,
                models,
                queue: VecDeque::new(),
                busy: false,
                records: Vec::new(),
                rejected: Vec::new(),
                scripts: Vec::new(),
                cursors: Vec::new(),
                next_id: 0,
                depth_integral: 0.0,
                depth_last_change: SimTime::ZERO,
                max_depth: 0,
            }),
        }
    }

    /// Seeds the cache of `model` with `cached_bytes` resident parameter
    /// bytes (clamped to the model size).
    ///
    /// # Panics
    /// Panics if `model` is not in the catalogue.
    pub fn seed_cache(&mut self, model: &str, cached_bytes: u64) {
        let state = self.engine.state_mut();
        let entry = state
            .models
            .get_mut(model)
            .unwrap_or_else(|| panic!("unknown model {model:?}"));
        entry.cache.seed(cached_bytes);
        entry.retained_target = entry.cache.cached_bytes();
    }

    /// Submits one request arriving at absolute time `at`.
    ///
    /// # Panics
    /// Panics if the model is not in the catalogue.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        session: u64,
        model: &str,
        prompt_len: usize,
        output_len: usize,
    ) {
        let state = self.engine.state_mut();
        assert!(state.models.contains_key(model), "unknown model {model:?}");
        let request = Request {
            id: state.next_id,
            session,
            model: model.to_string(),
            prompt_len,
            output_len,
        };
        state.next_id += 1;
        self.engine
            .schedule_at(at, move |state, sched| on_arrival(state, sched, request));
    }

    /// Submits a session script: the first request is scheduled at its
    /// `delay` from time zero, each later request one think-time after the
    /// session's previous response completes.
    ///
    /// # Panics
    /// Panics if any scripted request names a model outside the catalogue, or
    /// if a script with the same session id was already submitted (session
    /// continuations are resolved by id, so ids must be unique — renumber
    /// when merging several workloads onto one server).
    pub fn submit_script(&mut self, script: SessionScript) {
        let state = self.engine.state_mut();
        assert!(
            state.scripts.iter().all(|s| s.session != script.session),
            "duplicate session id {}: renumber scripts when merging workloads",
            script.session
        );
        for r in &script.requests {
            assert!(
                state.models.contains_key(&r.model),
                "unknown model {:?} in session {}",
                r.model,
                script.session
            );
        }
        let Some(first) = script.requests.first().cloned() else {
            return;
        };
        let session = script.session;
        let request = Request {
            id: state.next_id,
            session,
            model: first.model.clone(),
            prompt_len: first.prompt_len,
            output_len: first.output_len,
        };
        state.next_id += 1;
        state.scripts.push(SessionScript {
            session,
            requests: script.requests,
        });
        state.cursors.push(1); // the first request is scheduled below
        self.engine
            .schedule_at(SimTime::ZERO + first.delay, move |state, sched| {
                on_arrival(state, sched, request)
            });
    }

    /// Runs the simulation to completion and summarises the fleet.
    pub fn run(mut self) -> ServingReport {
        self.engine.run_to_completion();
        let state = self.engine.into_state();
        let fleet = fleet_stats(&state);
        ServingReport {
            records: state.records,
            rejected: state.rejected,
            fleet,
        }
    }

    /// Convenience: generate `workload` with `seed`, submit every session and
    /// run to completion.
    pub fn run_workload(
        config: ServingConfig,
        catalogue: Vec<ModelSpec>,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> ServingReport {
        let mut server = Server::new(config, catalogue);
        for script in workload.generate(seed) {
            server.submit_script(script);
        }
        server.run()
    }
}

fn fleet_stats(state: &ServerState) -> FleetStats {
    let records = &state.records;
    let horizon = records
        .iter()
        .map(|r| r.completed)
        .max()
        .unwrap_or(SimTime::ZERO);
    let ms = |v: Vec<f64>| PercentileSummary::from_values(&v);
    let ttft: Vec<f64> = records
        .iter()
        .map(|r| r.ttft_e2e().as_millis_f64())
        .collect();
    let service: Vec<f64> = records
        .iter()
        .map(|r| r.report.ttft.as_millis_f64())
        .collect();
    let wait: Vec<f64> = records
        .iter()
        .map(|r| r.queue_wait().as_millis_f64())
        .collect();
    let horizon_secs = horizon.as_secs_f64();
    FleetStats {
        completed: records.len(),
        rejected: state.rejected.len(),
        horizon,
        throughput_rps: if horizon_secs > 0.0 {
            records.len() as f64 / horizon_secs
        } else {
            0.0
        },
        ttft_ms: ms(ttft),
        service_ttft_ms: ms(service),
        queue_wait_ms: ms(wait),
        mean_queue_depth: if horizon_secs > 0.0 {
            state.depth_integral / horizon_secs
        } else {
            0.0
        },
        max_queue_depth: state.max_depth,
        mean_cached_fraction: if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.cached_fraction).sum::<f64>() / records.len() as f64
        },
        cold_starts: records.iter().filter(|r| r.cached_fraction == 0.0).count(),
        mean_decode_tps: if records.is_empty() {
            0.0
        } else {
            records
                .iter()
                .map(|r| r.report.decode_tokens_per_sec)
                .sum::<f64>()
                / records.len() as f64
        },
    }
}

/// Runs one request through a one-model serving instance — the serving-path
/// implementation behind [`crate::system::evaluate_tzllm`].
pub fn single_request(profile: &PlatformProfile, config: &InferenceConfig) -> InferenceReport {
    let serving_config = ServingConfig {
        profile: profile.clone(),
        policy: config.policy,
        use_checkpoint: config.use_checkpoint,
        memory_pressure: config.memory_pressure,
        max_queue_depth: 1,
        retention: RetentionPolicy::ReleaseAll,
    };
    let mut server = Server::new(serving_config, vec![config.model.clone()]);
    // Seed in the controller's own unit (the model's Q8 blob size) so the
    // fraction read back at dispatch equals the configured knob exactly.
    let seed_bytes =
        (config.model.total_q8_bytes() as f64 * config.cached_fraction.clamp(0.0, 1.0)) as u64;
    server.seed_cache(&config.model.name, seed_bytes);
    server.submit_at(
        SimTime::ZERO,
        0,
        &config.model.name,
        config.prompt_len,
        config.output_len,
    );
    let report = server.run();
    report
        .records
        .into_iter()
        .next()
        .expect("the single request completes")
        .report
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::ArrivalProcess;

    fn catalogue() -> Vec<ModelSpec> {
        vec![ModelSpec::qwen2_5_3b()]
    }

    fn quiet_poisson(requests: usize) -> WorkloadSpec {
        WorkloadSpec::standard(
            ArrivalProcess::Poisson { rate_per_sec: 0.02 },
            requests,
            "qwen2.5-3b",
        )
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let report = Server::run_workload(
            ServingConfig::paper_default(PlatformProfile::rk3588()),
            catalogue(),
            &quiet_poisson(12),
            1,
        );
        assert_eq!(report.fleet.completed, 12);
        assert_eq!(report.fleet.rejected, 0);
        // Light load: hardly any queueing, so e2e TTFT ~= service TTFT.
        let e2e = report.fleet.ttft_ms.unwrap();
        let service = report.fleet.service_ttft_ms.unwrap();
        assert!(e2e.p50 >= service.p50);
    }

    #[test]
    fn adaptive_retention_warms_the_cache() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.retention = RetentionPolicy::Adaptive {
            step_fraction: 0.25,
        };
        let report = Server::run_workload(config, catalogue(), &quiet_poisson(8), 3);
        let fractions: Vec<f64> = report.records.iter().map(|r| r.cached_fraction).collect();
        assert_eq!(fractions[0], 0.0, "first request must be cold");
        // Warm-up: strictly increasing until saturation.
        assert!(fractions[1] > 0.0);
        assert!(report.fleet.mean_cached_fraction > 0.3);
        assert_eq!(report.fleet.cold_starts, 1);
        // Warm requests are faster than the cold one.
        let cold = report.records[0].report.ttft;
        let last = report.records.last().unwrap().report.ttft;
        assert!(last < cold, "warm {last} vs cold {cold}");
    }

    #[test]
    fn release_all_means_every_request_cold_starts() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.retention = RetentionPolicy::ReleaseAll;
        let report = Server::run_workload(config, catalogue(), &quiet_poisson(5), 3);
        assert_eq!(report.fleet.cold_starts, 5);
    }

    #[test]
    fn overload_rejects_beyond_queue_depth() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.max_queue_depth = 2;
        let mut server = Server::new(config, catalogue());
        // A stampede of simultaneous arrivals: one dispatches, two queue, the
        // rest are rejected.
        for i in 0..8 {
            server.submit_at(SimTime::ZERO, i, "qwen2.5-3b", 128, 16);
        }
        let report = server.run();
        assert_eq!(report.fleet.completed, 3);
        assert_eq!(report.fleet.rejected, 5);
        assert_eq!(report.fleet.max_queue_depth, 2);
    }

    #[test]
    fn queueing_inflates_e2e_ttft_not_service_ttft() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        for i in 0..4 {
            server.submit_at(SimTime::ZERO, i, "qwen2.5-3b", 128, 8);
        }
        let report = server.run();
        // Completion order follows FIFO dispatch order.
        let waits: Vec<SimDuration> = report.records.iter().map(|r| r.queue_wait()).collect();
        assert_eq!(waits[0], SimDuration::ZERO);
        for w in waits.windows(2) {
            assert!(w[1] > w[0], "{:?}", waits);
        }
        let e2e = report.fleet.ttft_ms.unwrap();
        let service = report.fleet.service_ttft_ms.unwrap();
        assert!(e2e.max > service.max);
    }

    #[test]
    fn closed_loop_sessions_interleave_on_one_device() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let workload = WorkloadSpec::standard(
            ArrivalProcess::ClosedLoop {
                sessions: 3,
                mean_think: SimDuration::from_secs(5),
            },
            9,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config, catalogue(), &workload, 17);
        assert_eq!(report.fleet.completed, 9);
        // All three sessions made progress.
        for s in 0..3u64 {
            assert_eq!(
                report
                    .records
                    .iter()
                    .filter(|r| r.request.session == s)
                    .count(),
                3
            );
        }
        // Requests of one session never overlap: its n-th request arrives
        // after its (n-1)-th completed.
        for s in 0..3u64 {
            let mut last_completed = SimTime::ZERO;
            for r in report.records.iter().filter(|r| r.request.session == s) {
                assert!(r.arrival >= last_completed);
                last_completed = r.completed;
            }
        }
    }

    #[test]
    fn rejected_closed_loop_requests_do_not_kill_their_session() {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.max_queue_depth = 1;
        // 6 sessions stampede a queue of depth 1: early first-requests are
        // rejected, but every session must still play out its full script.
        let workload = WorkloadSpec::standard(
            ArrivalProcess::ClosedLoop {
                sessions: 6,
                mean_think: SimDuration::from_millis(10),
            },
            18,
            "qwen2.5-3b",
        );
        let report = Server::run_workload(config, catalogue(), &workload, 9);
        assert!(
            report.fleet.rejected > 0,
            "the stampede must overflow the queue"
        );
        assert_eq!(
            report.fleet.completed + report.fleet.rejected,
            18,
            "every scripted request is either served or rejected — none vanish"
        );
    }

    #[test]
    fn completion_frees_the_device_after_the_last_token_only() {
        // output_len = 1: the single output token is the prefill's first
        // token, so the device is free again exactly at first_token.
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 1);
        let report = server.run();
        let r = &report.records[0];
        assert_eq!(r.completed, r.first_token);

        // output_len = 9: eight more tokens decode after the first.
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(config, catalogue());
        server.submit_at(SimTime::ZERO, 0, "qwen2.5-3b", 128, 9);
        let report = server.run();
        let r = &report.records[0];
        let decode = r.completed.saturating_since(r.first_token);
        let expected = SimDuration::from_secs_f64(8.0 / r.report.decode_tokens_per_sec);
        let diff = (decode.as_secs_f64() - expected.as_secs_f64()).abs();
        assert!(diff < 1e-9, "decode {decode} vs expected {expected}");
    }

    #[test]
    fn multi_model_catalogue_keeps_separate_caches() {
        let config = ServingConfig::paper_default(PlatformProfile::rk3588());
        let mut server = Server::new(
            config,
            vec![ModelSpec::tinyllama_1_1b(), ModelSpec::qwen2_5_3b()],
        );
        // Alternate between the two models; each model's *own* second request
        // should be warm.
        let t = |s| SimTime::from_secs(s);
        server.submit_at(t(0), 0, "tinyllama-1.1b", 64, 8);
        server.submit_at(t(200), 1, "qwen2.5-3b", 64, 8);
        server.submit_at(t(400), 2, "tinyllama-1.1b", 64, 8);
        server.submit_at(t(600), 3, "qwen2.5-3b", 64, 8);
        let report = server.run();
        assert_eq!(report.fleet.completed, 4);
        assert_eq!(report.fleet.cold_starts, 2, "one cold start per model");
        assert!(report.records[2].cached_fraction > 0.0);
        assert!(report.records[3].cached_fraction > 0.0);
    }
}
