//! The qualitative comparison of TEE-based model-protection approaches
//! (Table 1 of the paper).
//!
//! The table is data, not measurement; reproducing it means regenerating the
//! same rows and columns so the `table1_comparison` harness can print it.

/// Performance rating (number of stars in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stars {
    /// ★
    One,
    /// ★★
    Two,
    /// ★★★
    Three,
}

impl Stars {
    /// Render as the paper does.
    pub fn render(self) -> &'static str {
        match self {
            Stars::One => "*",
            Stars::Two => "**",
            Stars::Three => "***",
        }
    }
}

/// How an approach uses accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceleratorUsage {
    /// No accelerator at all.
    No,
    /// Accelerator only usable from the REE.
    ReeOnly,
    /// Accelerator usable from the TEE only (statically secured).
    TeeOnly,
    /// Accelerator time-shared between TEE and REE.
    TeeReeSharing,
}

impl AcceleratorUsage {
    /// Table text.
    pub fn render(self) -> &'static str {
        match self {
            AcceleratorUsage::No => "No",
            AcceleratorUsage::ReeOnly => "REE only",
            AcceleratorUsage::TeeOnly => "TEE only",
            AcceleratorUsage::TeeReeSharing => "TEE-REE sharing",
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct ApproachRow {
    /// Approach name.
    pub approach: &'static str,
    /// Overall performance rating.
    pub performance: Stars,
    /// Accelerator usage.
    pub accelerator: AcceleratorUsage,
    /// End-to-end security guarantee.
    pub end_to_end_security: bool,
    /// Works without modifying the model.
    pub no_model_modification: bool,
    /// Compatible with quantisation.
    pub quantization_support: bool,
    /// Supports dynamic secure-memory scaling.
    pub memory_scaling: bool,
}

/// The rows of Table 1, in the paper's order.
pub fn table1() -> Vec<ApproachRow> {
    vec![
        ApproachRow {
            approach: "Shielding the entire model",
            performance: Stars::One,
            accelerator: AcceleratorUsage::No,
            end_to_end_security: true,
            no_model_modification: true,
            quantization_support: true,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "Obfuscation-based TSLP",
            performance: Stars::Two,
            accelerator: AcceleratorUsage::ReeOnly,
            end_to_end_security: false,
            no_model_modification: true,
            quantization_support: false,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "TSQP",
            performance: Stars::Two,
            accelerator: AcceleratorUsage::ReeOnly,
            end_to_end_security: false,
            no_model_modification: false,
            quantization_support: true,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "TEESlice",
            performance: Stars::Two,
            accelerator: AcceleratorUsage::ReeOnly,
            end_to_end_security: false,
            no_model_modification: false,
            quantization_support: false,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "StrongBox",
            performance: Stars::Two,
            accelerator: AcceleratorUsage::TeeReeSharing,
            end_to_end_security: false,
            no_model_modification: true,
            quantization_support: true,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "SecDeep",
            performance: Stars::Two,
            accelerator: AcceleratorUsage::TeeOnly,
            end_to_end_security: true,
            no_model_modification: true,
            quantization_support: true,
            memory_scaling: false,
        },
        ApproachRow {
            approach: "TZ-LLM (ours)",
            performance: Stars::Three,
            accelerator: AcceleratorUsage::TeeReeSharing,
            end_to_end_security: true,
            no_model_modification: true,
            quantization_support: true,
            memory_scaling: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_seven_rows_and_tzllm_is_the_only_full_row() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        let full: Vec<&ApproachRow> = rows
            .iter()
            .filter(|r| {
                r.end_to_end_security
                    && r.no_model_modification
                    && r.quantization_support
                    && r.memory_scaling
            })
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].approach, "TZ-LLM (ours)");
        assert_eq!(full[0].performance, Stars::Three);
        assert_eq!(full[0].accelerator, AcceleratorUsage::TeeReeSharing);
    }

    #[test]
    fn only_tzllm_supports_memory_scaling() {
        assert_eq!(table1().iter().filter(|r| r.memory_scaling).count(), 1);
    }

    #[test]
    fn renderers_are_total() {
        assert_eq!(Stars::Three.render(), "***");
        assert_eq!(AcceleratorUsage::TeeReeSharing.render(), "TEE-REE sharing");
        assert_eq!(AcceleratorUsage::No.render(), "No");
    }
}
