//! Serving-telemetry reports: TTFT waterfalls and critical-path
//! attribution.
//!
//! `sim_core::telemetry` owns the raw span store and the Perfetto export;
//! this module turns a finished [`ServingReport`] into the two textual
//! analyses the serving benchmarks print:
//!
//! * [`ttft_waterfall`] — one line per request tiling its end-to-end TTFT
//!   into queue / init / alloc / kv-unseal / pipeline / prefill segments
//!   (the same tiling the request's telemetry track records, so the
//!   segment sum reconciles with the recorded TTFT exactly);
//! * [`critical_path_report`] — for every *cold* request (one that
//!   restored parameters from flash), names the device lane that bounded
//!   its TTFT and attributes each breakdown component to a lane, so a
//!   fleet trace answers "what do we buy by making flash/decrypt/alloc/NPU
//!   faster?" (the paper's Figure 12 question, asked fleet-wide).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sim_core::SimDuration;

use crate::serving::{RequestRecord, ServingReport};

/// One request's TTFT tiled into named segments.
///
/// The segments are exactly the request-track telemetry phases: laid end
/// to end they cover `[arrival, first_token]` without gap or overlap, so
/// their sum equals [`RequestRecord::ttft_e2e`] by construction.
pub fn lifecycle_segments(record: &RequestRecord) -> Vec<(&'static str, SimDuration)> {
    let report = &record.report;
    let b = &report.breakdown;
    let mut out = Vec::with_capacity(6);
    out.push(("queued", record.queue_wait()));
    // The exclusive NPU hold sits at the tail of the service TTFT; the
    // breakdown components fill the pre-NPU window and are clipped to it,
    // with the pipelined-restoration residue absorbing what remains.
    let npu_hold = (report.npu_busy + b.npu_overhead).min(report.ttft);
    let service = record.service_ttft();
    let pre_npu = report.ttft.saturating_sub(npu_hold).min(service);
    let mut used = SimDuration::ZERO;
    for (name, d) in [
        ("framework-init", b.framework_init),
        ("working-alloc", b.working_alloc),
        ("kv-unseal", b.kv_restore),
    ] {
        let take = d.min(pre_npu.saturating_sub(used));
        if take > SimDuration::ZERO {
            out.push((name, take));
            used += take;
        }
    }
    let residue = pre_npu.saturating_sub(used);
    if residue > SimDuration::ZERO {
        out.push(("restore-pipeline", residue));
    }
    let prefill = service.saturating_sub(pre_npu);
    if prefill > SimDuration::ZERO {
        out.push(("prefill", prefill));
    }
    out
}

/// Renders one line per request tiling its end-to-end TTFT into the
/// lifecycle segments, in arrival order.  Each line ends with the segment
/// sum and the recorded TTFT — always equal, which the telemetry tests
/// assert — so the waterfall doubles as a visual reconciliation check.
pub fn ttft_waterfall(report: &ServingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "req",
        "model",
        "queue",
        "init",
        "alloc",
        "unseal",
        "pipeline",
        "prefill",
        "sum_ms",
        "ttft_ms"
    );
    let mut records: Vec<&RequestRecord> = report.records.iter().collect();
    records.sort_by_key(|r| (r.arrival, r.request.id));
    for r in records {
        let segs = lifecycle_segments(r);
        let get = |name: &str| {
            segs.iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, d)| d.as_millis_f64())
                .unwrap_or(0.0)
        };
        let sum: f64 = segs.iter().map(|&(_, d)| d.as_millis_f64()).sum();
        let _ = writeln!(
            out,
            "{:>6} {:<14} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10.3} {:>10.3}",
            r.request.id,
            r.request.model,
            get("queued"),
            get("framework-init"),
            get("working-alloc"),
            get("kv-unseal"),
            get("restore-pipeline"),
            get("prefill"),
            sum,
            r.ttft_e2e().as_millis_f64(),
        );
    }
    out
}

/// The lane attribution of one cold request's device-side TTFT.
#[derive(Debug, Clone)]
pub struct LaneAttribution {
    /// The request.
    pub request_id: u64,
    /// Its device-side (dispatch → first token) TTFT.
    pub ttft: SimDuration,
    /// The lane whose critical path bounded the restoration pipeline:
    /// `"flash"` (I/O path), `"decrypt"` (CPU path) or `"npu"` (compute
    /// path).
    pub bounding_lane: &'static str,
    /// TTFT attributed to named lanes (everything except pipeline slack).
    pub attributed: SimDuration,
    /// Pipeline makespan beyond the bounding path's length — scheduling
    /// slack no single lane explains.
    pub slack: SimDuration,
}

/// Fleet-wide critical-path attribution over the cold requests.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Per-request attributions, in request-id order.
    pub per_request: Vec<LaneAttribution>,
    /// Total TTFT attributed to each lane across the cold fleet.
    pub lane_totals: BTreeMap<&'static str, SimDuration>,
    /// Sum of cold device-side TTFTs.
    pub total_ttft: SimDuration,
    /// Of which attributed to a named lane.
    pub total_attributed: SimDuration,
}

impl CriticalPathReport {
    /// Fraction of cold TTFT attributed to named lanes (1.0 when there
    /// were no cold requests).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_ttft == SimDuration::ZERO {
            return 1.0;
        }
        self.total_attributed.as_secs_f64() / self.total_ttft.as_secs_f64()
    }

    /// A compact textual summary: lane totals, the attribution fraction,
    /// and the dominant lane.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical-path attribution over {} cold requests ({:.3} s cold TTFT):",
            self.per_request.len(),
            self.total_ttft.as_secs_f64()
        );
        for (lane, total) in &self.lane_totals {
            let share = if self.total_ttft > SimDuration::ZERO {
                total.as_secs_f64() / self.total_ttft.as_secs_f64() * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {lane:<8} {:>10.3} s  {share:>5.1}%",
                total.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "  attributed {:.1}% of cold TTFT to named lanes",
            self.attributed_fraction() * 100.0
        );
        out
    }
}

/// Attributes every cold request's device-side TTFT to named lanes.
///
/// The breakdown components map directly — `framework_init` → `init`,
/// `working_alloc` → `alloc`, `kv_restore` → `decrypt`, `npu_overhead` →
/// `npu` — and the pipeline makespan goes to the lane whose critical path
/// bounded it ([`crate::restore::CriticalPaths::lower_bound`]): the I/O
/// path is the flash lane, the CPU path the decrypt threads, the compute
/// path the NPU.  Only the makespan's slack beyond the bounding path
/// stays unattributed, so the attributed fraction is a direct measure of
/// how completely the three-path model explains cold latency.
pub fn critical_path_report(report: &ServingReport) -> CriticalPathReport {
    let mut out = CriticalPathReport::default();
    for r in &report.records {
        if r.report.restored_bytes == 0 {
            continue; // warm dispatch: nothing restored, no cold path
        }
        let b = &r.report.breakdown;
        let paths = &r.report.critical_paths;
        let bound = paths.lower_bound();
        let bounding_lane = if bound == paths.io {
            "flash"
        } else if bound == paths.cpu {
            "decrypt"
        } else {
            "npu"
        };
        let pipeline_attr = b.pipeline.min(bound);
        let slack = b.pipeline.saturating_sub(bound);
        let ttft = r.service_ttft();
        let mut add = |lane: &'static str, d: SimDuration| {
            if d > SimDuration::ZERO {
                *out.lane_totals.entry(lane).or_insert(SimDuration::ZERO) += d;
                out.total_attributed += d;
            }
        };
        add("init", b.framework_init);
        add("alloc", b.working_alloc);
        add("decrypt", b.kv_restore);
        add("npu", b.npu_overhead);
        add(bounding_lane, pipeline_attr);
        // Under continuous batching the chunked prefill interleaves with
        // decode steps, so the realised dispatch→first-token window
        // exceeds the plan's TTFT by the interleave wait — NPU sharing by
        // construction.
        add("npu", r.prefill_stall);
        out.total_ttft += ttft;
        out.per_request.push(LaneAttribution {
            request_id: r.request.id,
            ttft,
            bounding_lane,
            attributed: ttft.saturating_sub(slack),
            slack,
        });
    }
    out.per_request.sort_by_key(|a| a.request_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{Server, ServingConfig};
    use llm::ModelSpec;
    use tz_hal::PlatformProfile;

    fn report() -> ServingReport {
        let mut config = ServingConfig::paper_default(PlatformProfile::rk3588());
        config.telemetry = true;
        let mut server = Server::new(config, vec![ModelSpec::qwen2_5_3b()]);
        for i in 0..4 {
            server.submit_at(
                sim_core::SimTime::from_millis(i * 400),
                i,
                "qwen2.5-3b",
                128,
                16,
            );
        }
        server.run()
    }

    #[test]
    fn waterfall_segments_reconcile_with_ttft() {
        let report = report();
        for r in &report.records {
            let sum: SimDuration = lifecycle_segments(r).iter().map(|&(_, d)| d).sum();
            assert_eq!(
                sum,
                r.ttft_e2e(),
                "request {} segments must tile its TTFT",
                r.request.id
            );
        }
        let text = ttft_waterfall(&report);
        assert!(text.contains("qwen2.5-3b"));
        assert_eq!(text.lines().count(), report.records.len() + 1);
    }

    #[test]
    fn cold_ttft_attributes_to_named_lanes() {
        let report = report();
        let cp = critical_path_report(&report);
        assert!(
            !cp.per_request.is_empty(),
            "a cold fleet must have cold requests"
        );
        assert!(
            cp.attributed_fraction() >= 0.90,
            "only {:.1}% of cold TTFT attributed",
            cp.attributed_fraction() * 100.0
        );
        let text = cp.render_text();
        assert!(text.contains("attributed"));
    }
}
