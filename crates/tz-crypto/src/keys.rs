//! Model-key hierarchy.
//!
//! §6 of the paper: "the model key in flash is encrypted with a
//! hardware-protected TEE key.  It can only be decrypted by the TEE OS.  The
//! TEE OS only allows the LLM TA to access the model key."
//!
//! This module implements that hierarchy:
//!
//! * [`HardwareUniqueKey`] — the device-unique root key, modelled as fused at
//!   secure boot and never leaving the TEE.
//! * [`ModelKey`] — a per-model AES-256 key used to encrypt the parameter blob
//!   (CTR mode) and authenticate it (HMAC).
//! * [`WrappedModelKey`] — the encrypted+authenticated form of a model key
//!   that may safely live in the REE file system.

use crate::ctr::AesCtr;
use crate::hmac::{derive_key, hmac_sha256, hmac_verify};
use crate::sha256::DIGEST_SIZE;

/// Length of all symmetric keys in the hierarchy (AES-256 / HMAC-SHA256).
pub const KEY_LEN: usize = 32;
/// Length of the CTR nonce stored alongside wrapped keys and blobs.
pub const NONCE_LEN: usize = 16;

/// Errors from key wrapping / unwrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// The HMAC over a wrapped key did not verify — the blob was corrupted or
    /// forged by the REE.
    IntegrityFailure,
    /// A caller outside the TEE attempted to unwrap a key.
    NotAuthorised,
    /// Malformed wrapped-key blob.
    Malformed,
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::IntegrityFailure => write!(f, "wrapped key failed integrity verification"),
            KeyError::NotAuthorised => {
                write!(f, "caller is not authorised to unwrap the model key")
            }
            KeyError::Malformed => write!(f, "malformed wrapped key blob"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Secret bytes that are zeroed on drop and never printed by `Debug`.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Wraps raw secret bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        SecretBytes(bytes)
    }

    /// Read access to the secret material.
    pub fn expose(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the secret is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Drop for SecretBytes {
    fn drop(&mut self) {
        // Best-effort scrubbing; mirrors the TEE OS clearing sensitive data
        // before releasing secure memory (§4.2).
        for b in &mut self.0 {
            // volatile-ish write; the optimiser keeping it is acceptable for
            // the simulation, the intent is documented behaviour.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl std::fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretBytes({} bytes, redacted)", self.0.len())
    }
}

/// The device-unique hardware key, provisioned at manufacturing time and only
/// readable from the secure world.
#[derive(Debug, Clone)]
pub struct HardwareUniqueKey {
    root: SecretBytes,
}

impl HardwareUniqueKey {
    /// Derives the hardware-unique key of a simulated device from its serial
    /// number.  Real hardware fuses this; the simulation derives it so tests
    /// are reproducible.
    pub fn provision(device_serial: &str) -> Self {
        HardwareUniqueKey {
            root: SecretBytes::new(derive_key(device_serial.as_bytes(), "tz-llm-huk", KEY_LEN)),
        }
    }

    /// Derives the key-wrapping key used to protect model keys.
    pub fn key_wrapping_key(&self) -> SecretBytes {
        SecretBytes::new(derive_key(self.root.expose(), "model-key-wrap", KEY_LEN))
    }

    /// Derives the key protecting the framework-state checkpoint (§3.2,
    /// "Other techniques for efficient inference").
    pub fn checkpoint_key(&self) -> SecretBytes {
        SecretBytes::new(derive_key(
            self.root.expose(),
            "framework-checkpoint",
            KEY_LEN,
        ))
    }
}

/// A per-model AES-256 key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelKey {
    key: SecretBytes,
}

impl ModelKey {
    /// Creates a model key from explicit bytes (used by the model packer and
    /// by tests).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        ModelKey {
            key: SecretBytes::new(bytes.to_vec()),
        }
    }

    /// Deterministically derives a model key from a provider secret and the
    /// model name — stands in for the provider generating a random key.
    pub fn derive(provider_secret: &[u8], model_name: &str) -> Self {
        ModelKey {
            key: SecretBytes::new(derive_key(
                provider_secret,
                &format!("model:{model_name}"),
                KEY_LEN,
            )),
        }
    }

    /// Raw key bytes (TEE-internal use only).
    pub fn expose(&self) -> &[u8] {
        self.key.expose()
    }

    /// Builds the CTR cipher for the parameter blob of this model.
    pub fn blob_cipher(&self, nonce: &[u8; NONCE_LEN]) -> AesCtr {
        AesCtr::new(self.key.expose(), nonce).expect("model key has a valid AES length")
    }

    /// Computes the HMAC tag over arbitrary model metadata.
    pub fn authenticate(&self, data: &[u8]) -> [u8; DIGEST_SIZE] {
        hmac_sha256(self.key.expose(), data)
    }

    /// Verifies an HMAC tag produced by [`ModelKey::authenticate`].
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        hmac_verify(self.key.expose(), data, tag)
    }
}

/// The wrapped (encrypted + authenticated) form of a [`ModelKey`], safe to
/// store in the untrusted REE file system next to the model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedModelKey {
    /// CTR nonce used for the wrap.
    pub nonce: [u8; NONCE_LEN],
    /// Encrypted key bytes.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over `nonce || ciphertext` under the wrapping key.
    pub tag: [u8; DIGEST_SIZE],
}

impl WrappedModelKey {
    /// Wraps `model_key` under the device's hardware-derived wrapping key.
    pub fn wrap(huk: &HardwareUniqueKey, model_key: &ModelKey, nonce: [u8; NONCE_LEN]) -> Self {
        let kwk = huk.key_wrapping_key();
        let mut ciphertext = model_key.expose().to_vec();
        AesCtr::new(kwk.expose(), &nonce)
            .expect("wrapping key has a valid AES length")
            .apply(&mut ciphertext);
        let mut mac_input = nonce.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        let tag = hmac_sha256(kwk.expose(), &mac_input);
        WrappedModelKey {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Unwraps the model key.  `caller_is_llm_ta` models the TEE OS policy
    /// that only the LLM TA may obtain the model key.
    pub fn unwrap(
        &self,
        huk: &HardwareUniqueKey,
        caller_is_llm_ta: bool,
    ) -> Result<ModelKey, KeyError> {
        if !caller_is_llm_ta {
            return Err(KeyError::NotAuthorised);
        }
        if self.ciphertext.len() != KEY_LEN {
            return Err(KeyError::Malformed);
        }
        let kwk = huk.key_wrapping_key();
        let mut mac_input = self.nonce.to_vec();
        mac_input.extend_from_slice(&self.ciphertext);
        if !hmac_verify(kwk.expose(), &mac_input, &self.tag) {
            return Err(KeyError::IntegrityFailure);
        }
        let mut plaintext = self.ciphertext.clone();
        AesCtr::new(kwk.expose(), &self.nonce)
            .expect("wrapping key has a valid AES length")
            .apply(&mut plaintext);
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&plaintext);
        Ok(ModelKey::from_bytes(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn huk() -> HardwareUniqueKey {
        HardwareUniqueKey::provision("orangepi-5-plus-0001")
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let mk = ModelKey::derive(b"provider-secret", "llama-3-8b");
        let wrapped = WrappedModelKey::wrap(&huk(), &mk, [7u8; NONCE_LEN]);
        let unwrapped = wrapped.unwrap(&huk(), true).unwrap();
        assert_eq!(unwrapped.expose(), mk.expose());
    }

    #[test]
    fn unwrap_requires_llm_ta() {
        let mk = ModelKey::derive(b"provider-secret", "qwen2.5-3b");
        let wrapped = WrappedModelKey::wrap(&huk(), &mk, [1u8; NONCE_LEN]);
        assert_eq!(
            wrapped.unwrap(&huk(), false).unwrap_err(),
            KeyError::NotAuthorised
        );
    }

    #[test]
    fn tampered_wrap_is_rejected() {
        let mk = ModelKey::derive(b"provider-secret", "phi-3-3.8b");
        let mut wrapped = WrappedModelKey::wrap(&huk(), &mk, [2u8; NONCE_LEN]);
        wrapped.ciphertext[0] ^= 0xff;
        assert_eq!(
            wrapped.unwrap(&huk(), true).unwrap_err(),
            KeyError::IntegrityFailure
        );
    }

    #[test]
    fn wrong_device_cannot_unwrap() {
        let mk = ModelKey::derive(b"provider-secret", "tinyllama-1.1b");
        let wrapped = WrappedModelKey::wrap(&huk(), &mk, [3u8; NONCE_LEN]);
        let other = HardwareUniqueKey::provision("some-other-device");
        assert_eq!(
            wrapped.unwrap(&other, true).unwrap_err(),
            KeyError::IntegrityFailure
        );
    }

    #[test]
    fn malformed_length_rejected() {
        let mk = ModelKey::derive(b"s", "m");
        let mut wrapped = WrappedModelKey::wrap(&huk(), &mk, [4u8; NONCE_LEN]);
        wrapped.ciphertext.pop();
        assert_eq!(
            wrapped.unwrap(&huk(), true).unwrap_err(),
            KeyError::Malformed
        );
    }

    #[test]
    fn different_models_get_different_keys() {
        let a = ModelKey::derive(b"provider", "model-a");
        let b = ModelKey::derive(b"provider", "model-b");
        assert_ne!(a.expose(), b.expose());
    }

    #[test]
    fn model_key_authenticates_metadata() {
        let mk = ModelKey::derive(b"provider", "model-a");
        let tag = mk.authenticate(b"metadata");
        assert!(mk.verify(b"metadata", &tag));
        assert!(!mk.verify(b"metadata2", &tag));
    }

    #[test]
    fn secret_bytes_debug_is_redacted() {
        let s = SecretBytes::new(vec![1, 2, 3]);
        assert_eq!(format!("{s:?}"), "SecretBytes(3 bytes, redacted)");
    }
}
