//! AES block cipher (FIPS-197), supporting 128- and 256-bit keys.
//!
//! TZ-LLM stores model files encrypted at rest; the LLM TA decrypts parameter
//! tensors inside the TEE during pipelined restoration (§4.1).  The paper uses
//! OpenSSL; since no external crypto crate is on the offline allow-list, this
//! module implements AES from scratch.  It is a straightforward table-free
//! byte-oriented implementation: clear, portable and fast enough for the
//! functional tests (the *timing* of bulk decryption in the simulation comes
//! from the calibrated device profile, not from this code's wall-clock speed).

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// Errors returned by the AES layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AesError {
    /// Key length was not 16 or 32 bytes.
    InvalidKeyLength(usize),
    /// Input that must be block-aligned was not.
    NotBlockAligned(usize),
}

impl std::fmt::Display for AesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesError::InvalidKeyLength(n) => write!(f, "invalid AES key length: {n} bytes"),
            AesError::NotBlockAligned(n) => write!(f, "input length {n} is not a multiple of 16"),
        }
    }
}

impl std::error::Error for AesError {}

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

#[inline]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Key size of an AES key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key (10 rounds).
    Aes128,
    /// 256-bit key (14 rounds).
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key ready for block encryption/decryption.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes {{ rounds: {} }}", self.rounds)
    }
}

impl Aes {
    /// Expands `key` (16 or 32 bytes) into round keys.
    pub fn new(key: &[u8]) -> Result<Self, AesError> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            n => return Err(AesError::InvalidKeyLength(n)),
        };
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);

        let mut words: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            words.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = words[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = words[i - nk];
            words.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(Aes { round_keys, rounds })
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4*c + r].
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[r]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[self.rounds]);
        for r in (1..self.rounds).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[r]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_aes128_ecb_vector() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, first block
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex("6bc1bee22e409f96e93d7e117393172a"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn invalid_key_length_rejected() {
        assert_eq!(
            Aes::new(&[0u8; 15]).unwrap_err(),
            AesError::InvalidKeyLength(15)
        );
        assert_eq!(
            Aes::new(&[0u8; 24]).unwrap_err(),
            AesError::InvalidKeyLength(24)
        );
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips_random_blocks() {
        let key = [7u8; 32];
        let aes = Aes::new(&key).unwrap();
        let mut state = 0x1234_5678_u64;
        for _ in 0..64 {
            let mut block = [0u8; 16];
            for b in &mut block {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 32) as u8;
            }
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let aes = Aes::new(&[0xAA; 16]).unwrap();
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("170")); // 0xAA
        assert!(dbg.contains("rounds"));
    }
}
