//! HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF-style key derivation.
//!
//! The model-key hierarchy (§6) wraps the per-model key with a
//! hardware-protected TEE key.  The wrapping uses AES-CTR for confidentiality
//! plus an HMAC tag for integrity, and per-purpose sub-keys are derived with
//! an HKDF-expand-like construction so the same TEE root key can protect
//! multiple models and the framework-state checkpoint.

use crate::sha256::{constant_time_eq, Sha256, DIGEST_SIZE};

const BLOCK_SIZE: usize = 64;

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let digest = Sha256::digest(key);
        key_block[..DIGEST_SIZE].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_SIZE];
    let mut opad = [0x5cu8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies an HMAC tag in constant time.
pub fn hmac_verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    constant_time_eq(&hmac_sha256(key, data), tag)
}

/// Derives `len` bytes of key material from `root` bound to a textual
/// `purpose` label (HKDF-expand with SHA-256, single-info form).
pub fn derive_key(root: &[u8], purpose: &str, len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_SIZE, "derive_key output too long");
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = previous.clone();
        msg.extend_from_slice(purpose.as_bytes());
        msg.push(counter);
        let block = hmac_sha256(root, &msg);
        previous = block.to_vec();
        out.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3_long_key_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_test_case_6_oversized_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_verify(b"k", b"m", &bad));
        assert!(!hmac_verify(b"k2", b"m", &tag));
    }

    #[test]
    fn derive_key_is_deterministic_and_purpose_separated() {
        let root = [0x11u8; 32];
        let a1 = derive_key(&root, "model-key-wrap", 32);
        let a2 = derive_key(&root, "model-key-wrap", 32);
        let b = derive_key(&root, "checkpoint", 32);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), 32);
        let long = derive_key(&root, "long", 100);
        assert_eq!(long.len(), 100);
        assert_eq!(&long[..32], &derive_key(&root, "long", 32)[..]);
    }
}
