//! # tz-crypto
//!
//! Cryptographic primitives for the TZ-LLM reproduction, implemented from
//! scratch (no external crypto crates are available in the offline build
//! environment):
//!
//! * [`aes`] — AES-128/256 block cipher (FIPS-197) with test vectors.
//! * [`ctr`] — AES-CTR streaming mode with random-access decryption, used for
//!   the encrypted parameter blob so individual tensors can be decrypted
//!   during pipelined restoration.
//! * [`sha256`] — SHA-256 and constant-time comparison, used for the
//!   chunk checksums that defend model loading against Iago attacks.
//! * [`hmac`] — HMAC-SHA256 and HKDF-style key derivation.
//! * [`keys`] — the model-key hierarchy (hardware unique key → key-wrapping
//!   key → per-model key) described in §6 of the paper.
//! * [`seal`](mod@seal) — authenticated sealing (AES-CTR + HMAC, encrypt-then-MAC) for
//!   secure state spilled into normal-world memory, used by the KV-cache
//!   page spill path.

pub mod aes;
pub mod ctr;
pub mod hmac;
pub mod keys;
pub mod seal;
pub mod sha256;

pub use aes::{Aes, AesError};
pub use ctr::AesCtr;
pub use hmac::{derive_key, hmac_sha256, hmac_verify};
pub use keys::{
    HardwareUniqueKey, KeyError, ModelKey, SecretBytes, WrappedModelKey, KEY_LEN, NONCE_LEN,
};
pub use seal::{open, seal, SealAad, SealError, SealKey, SealedBlob, SEAL_NONCE_LEN, SEAL_TAG_LEN};
pub use sha256::{constant_time_eq, Sha256, DIGEST_SIZE};
