//! AES-CTR streaming encryption.
//!
//! Model files are encrypted with AES-256-CTR so that arbitrary byte ranges
//! (individual parameter tensors) can be decrypted independently during
//! pipelined restoration, without needing the preceding ciphertext.  CTR also
//! makes encryption and decryption the same operation, which keeps the
//! model-packing tool and the TA decryption path symmetric.

use crate::aes::{Aes, AesError, BLOCK_SIZE};

/// A CTR-mode cipher bound to a key and a 16-byte nonce/IV.
#[derive(Clone)]
pub struct AesCtr {
    aes: Aes,
    nonce: [u8; BLOCK_SIZE],
}

impl std::fmt::Debug for AesCtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AesCtr {{ .. }}")
    }
}

impl AesCtr {
    /// Creates a CTR cipher from a 16- or 32-byte key and a 16-byte nonce.
    pub fn new(key: &[u8], nonce: &[u8; BLOCK_SIZE]) -> Result<Self, AesError> {
        Ok(AesCtr {
            aes: Aes::new(key)?,
            nonce: *nonce,
        })
    }

    /// Computes the counter block for block index `block_index`.
    fn counter_block(&self, block_index: u64) -> [u8; BLOCK_SIZE] {
        // Standard big-endian counter in the last 8 bytes, added to the nonce
        // counter so that nonces with a non-zero initial counter still work.
        let mut block = self.nonce;
        let mut carry = block_index;
        for i in (0..BLOCK_SIZE).rev() {
            if carry == 0 {
                break;
            }
            let sum = block[i] as u64 + (carry & 0xff);
            block[i] = sum as u8;
            carry = (carry >> 8) + (sum >> 8);
        }
        block
    }

    /// Encrypts or decrypts `data` in place as if it started at byte offset
    /// `offset` of the stream.
    ///
    /// Supporting arbitrary offsets is what lets the restoration pipeline
    /// decrypt one tensor at a time: each tensor knows its byte offset within
    /// the encrypted parameter blob.
    pub fn apply_at(&self, offset: u64, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let mut pos = 0usize;
        let mut block_index = offset / BLOCK_SIZE as u64;
        let mut in_block = (offset % BLOCK_SIZE as u64) as usize;
        while pos < data.len() {
            let mut keystream = self.counter_block(block_index);
            self.aes.encrypt_block(&mut keystream);
            let take = (BLOCK_SIZE - in_block).min(data.len() - pos);
            for i in 0..take {
                data[pos + i] ^= keystream[in_block + i];
            }
            pos += take;
            in_block = 0;
            block_index += 1;
        }
    }

    /// Encrypts or decrypts a whole buffer starting at offset zero.
    pub fn apply(&self, data: &mut [u8]) {
        self.apply_at(0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_ctr_aes128_vector() {
        // SP 800-38A F.5.1 CTR-AES128.Encrypt
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"));
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        ctr.apply(&mut data);
        let expected = hex(concat!(
            "874d6191b620e3261bef6864990db6ce",
            "9806f66b7970fdff8617187bb9fffdff",
            "5ae4df3edbd5d35e5b4f09020db03eab",
            "1e031dda2fbe03d1792170a0f3009cee"
        ));
        assert_eq!(data, expected);
    }

    #[test]
    fn apply_at_matches_full_stream() {
        let key = [3u8; 32];
        let nonce = [9u8; 16];
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let mut full: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        let reference = full.clone();
        ctr.apply(&mut full);

        // Decrypt a middle slice independently via apply_at.
        let (lo, hi) = (123usize, 611usize);
        let mut slice = full[lo..hi].to_vec();
        ctr.apply_at(lo as u64, &mut slice);
        assert_eq!(&slice[..], &reference[lo..hi]);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = [0x42u8; 16];
        let nonce = [0u8; 16];
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let original = data.clone();
        ctr.apply(&mut data);
        assert_ne!(data, original);
        ctr.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_carries_across_byte_boundaries() {
        let key = [1u8; 16];
        let mut nonce = [0xffu8; 16];
        nonce[0] = 0; // avoid full overflow
        let ctr = AesCtr::new(&key, &nonce).unwrap();
        let mut a = vec![0u8; 64];
        ctr.apply(&mut a);
        // Block 1 computed directly must equal bytes 16..32 of the stream.
        let mut b = vec![0u8; 16];
        ctr.apply_at(16, &mut b);
        assert_eq!(&a[16..32], &b[..]);
    }

    #[test]
    fn empty_input_is_noop() {
        let ctr = AesCtr::new(&[0u8; 16], &[0u8; 16]).unwrap();
        let mut data: Vec<u8> = vec![];
        ctr.apply(&mut data);
        assert!(data.is_empty());
    }
}
