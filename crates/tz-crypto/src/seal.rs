//! Authenticated sealing of secure data spilled to the normal world.
//!
//! When the TEE evicts state (e.g. cold KV-cache pages) into REE-visible
//! memory, confidentiality and integrity must survive a fully compromised
//! normal world.  This module provides the encrypt-then-MAC construction the
//! KV spill path uses: AES-256-CTR under a derived encryption key, then
//! HMAC-SHA256 over the nonce, the caller's associated data (the page's
//! identity header) and the ciphertext under an *independent* derived MAC
//! key.  Opening verifies the tag in constant time before any decryption.

use crate::ctr::AesCtr;
use crate::hmac::{derive_key, hmac_sha256};
use crate::sha256::constant_time_eq;

/// Length of the authentication tag (HMAC-SHA256).
pub const SEAL_TAG_LEN: usize = 32;

/// Length of the CTR nonce.
pub const SEAL_NONCE_LEN: usize = 16;

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The tag did not verify: the blob, its nonce or its associated data
    /// were tampered with (or the wrong key was used).
    IntegrityFailure,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::IntegrityFailure => write!(f, "sealed blob failed integrity verification"),
        }
    }
}

impl std::error::Error for SealError {}

/// A sealed blob as it sits in normal-world memory: everything here is
/// observable by (and writable from) a compromised REE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// CTR nonce (unique per seal under one key).
    pub nonce: [u8; SEAL_NONCE_LEN],
    /// The encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over nonce ‖ aad-length ‖ aad ‖ ciphertext.
    pub tag: [u8; SEAL_TAG_LEN],
}

impl SealedBlob {
    /// The blob exactly as the normal world sees it, serialised to bytes
    /// (nonce ‖ ciphertext ‖ tag) — what an attacker scanning CMA memory
    /// observes.
    pub fn observable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEAL_NONCE_LEN + self.ciphertext.len() + SEAL_TAG_LEN);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.tag);
        out
    }
}

/// Builder for structured associated data: a domain label plus tagged,
/// length-prefixed fields.
///
/// Sealing callers used to concatenate identity fields by hand, which is
/// fine while every field is fixed-width — but the quantized KV spill format
/// authenticates a *variable* set of facts (model, chain hash, quant format,
/// plaintext and sealed lengths), and raw concatenation of variable-length
/// fields is ambiguous (`"ab" ‖ "c"` = `"a" ‖ "bc"`).  Every field here is
/// encoded as `tag-len ‖ tag ‖ value-len ‖ value`, so two distinct field
/// sequences can never serialise to the same AAD bytes.
#[derive(Debug, Clone, Default)]
pub struct SealAad {
    bytes: Vec<u8>,
}

impl SealAad {
    /// Starts an AAD in the given domain (e.g. `"kv-page"`); blobs sealed
    /// under different domains never verify against each other even with
    /// identical fields.
    pub fn new(domain: &str) -> SealAad {
        let mut aad = SealAad { bytes: Vec::new() };
        aad.push_chunk(domain.as_bytes());
        aad
    }

    fn push_chunk(&mut self, chunk: &[u8]) {
        self.bytes
            .extend_from_slice(&(chunk.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(chunk);
    }

    /// Appends a tagged byte-string field.
    #[must_use]
    pub fn field(mut self, tag: &str, value: &[u8]) -> SealAad {
        self.push_chunk(tag.as_bytes());
        self.push_chunk(value);
        self
    }

    /// Appends a tagged `u64` field (little-endian).
    #[must_use]
    pub fn u64(self, tag: &str, value: u64) -> SealAad {
        self.field(tag, &value.to_le_bytes())
    }

    /// Appends a tagged `u32` field (little-endian).
    #[must_use]
    pub fn u32(self, tag: &str, value: u32) -> SealAad {
        self.field(tag, &value.to_le_bytes())
    }

    /// Appends a tagged single-byte field.
    #[must_use]
    pub fn u8(self, tag: &str, value: u8) -> SealAad {
        self.field(tag, &[value])
    }

    /// The serialised AAD, ready for [`seal`] / [`open`].
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// The pair of independent sub-keys one sealing domain uses.
#[derive(Clone)]
pub struct SealKey {
    enc: Vec<u8>,
    mac: Vec<u8>,
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SealKey {{ .. }}")
    }
}

impl SealKey {
    /// Derives the encryption and MAC sub-keys from a root key, bound to a
    /// textual purpose label (different purposes never share key material).
    pub fn derive(root: &[u8], purpose: &str) -> SealKey {
        SealKey {
            enc: derive_key(root, &format!("{purpose}/enc"), 32),
            mac: derive_key(root, &format!("{purpose}/mac"), 32),
        }
    }
}

fn tag_for(
    key: &SealKey,
    nonce: &[u8; SEAL_NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; SEAL_TAG_LEN] {
    let mut msg = Vec::with_capacity(SEAL_NONCE_LEN + 8 + aad.len() + ciphertext.len());
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    msg.extend_from_slice(aad);
    msg.extend_from_slice(ciphertext);
    hmac_sha256(&key.mac, &msg)
}

/// Seals `plaintext` with associated data `aad` under `key` and `nonce`.
///
/// The nonce must be unique per seal under one key (the KV pool uses a
/// monotonic counter); `aad` is authenticated but not encrypted — the page
/// identity header lives there so a swapped blob fails verification.
pub fn seal(
    key: &SealKey,
    nonce: &[u8; SEAL_NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
) -> SealedBlob {
    let ctr = AesCtr::new(&key.enc, nonce).expect("derived key has a valid AES length");
    let mut ciphertext = plaintext.to_vec();
    ctr.apply(&mut ciphertext);
    let tag = tag_for(key, nonce, aad, &ciphertext);
    SealedBlob {
        nonce: *nonce,
        ciphertext,
        tag,
    }
}

/// Verifies and opens a sealed blob, returning the plaintext.
///
/// The tag is checked (in constant time) over the nonce, `aad` and the
/// ciphertext *before* decryption; any bit flipped anywhere is rejected.
pub fn open(key: &SealKey, aad: &[u8], blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
    let expected = tag_for(key, &blob.nonce, aad, &blob.ciphertext);
    if !constant_time_eq(&expected, &blob.tag) {
        return Err(SealError::IntegrityFailure);
    }
    let ctr = AesCtr::new(&key.enc, &blob.nonce).expect("derived key has a valid AES length");
    let mut plaintext = blob.ciphertext.clone();
    ctr.apply(&mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SealKey {
        SealKey::derive(&[0x42u8; 32], "test-seal")
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let k = key();
        let aad = b"session=7 seq=3";
        let blob = seal(&k, &[1u8; 16], aad, b"attention keys and values");
        assert_eq!(open(&k, aad, &blob).unwrap(), b"attention keys and values");
    }

    #[test]
    fn ciphertext_never_equals_plaintext_blocks() {
        let k = key();
        let plaintext: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let blob = seal(&k, &[9u8; 16], b"", &plaintext);
        assert_eq!(blob.ciphertext.len(), plaintext.len());
        for (c, p) in blob.ciphertext.chunks(16).zip(plaintext.chunks(16)) {
            assert_ne!(c, p, "a keystream block left plaintext exposed");
        }
    }

    #[test]
    fn any_tampering_is_rejected() {
        let k = key();
        let aad = b"page-header";
        let blob = seal(&k, &[5u8; 16], aad, b"secret kv bytes");

        let mut bad = blob.clone();
        bad.ciphertext[0] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        let mut bad = blob.clone();
        bad.tag[31] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        let mut bad = blob.clone();
        bad.nonce[3] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        // Same blob under different associated data (a swapped page id).
        assert_eq!(
            open(&k, b"other-header", &blob),
            Err(SealError::IntegrityFailure)
        );

        // And the original still opens.
        assert!(open(&k, aad, &blob).is_ok());
    }

    #[test]
    fn tagged_aads_are_unambiguous() {
        // Raw concatenation would make these two collide ("ab"‖"c" vs
        // "a"‖"bc"); the tagged encoding must not.
        let a = SealAad::new("d").field("x", b"ab").field("y", b"c");
        let b = SealAad::new("d").field("x", b"a").field("y", b"bc");
        assert_ne!(a.into_bytes(), b.into_bytes());
        // Domains separate identical field sets.
        let c = SealAad::new("d1").u64("len", 7);
        let d = SealAad::new("d2").u64("len", 7);
        assert_ne!(c.into_bytes(), d.into_bytes());
        // A sealed blob only opens under the exact AAD it was sealed with.
        let k = key();
        let aad = SealAad::new("kv")
            .u32("model", 3)
            .u8("format", 1)
            .into_bytes();
        let blob = seal(&k, &[2u8; 16], &aad, b"payload");
        assert!(open(&k, &aad, &blob).is_ok());
        let other = SealAad::new("kv")
            .u32("model", 3)
            .u8("format", 2)
            .into_bytes();
        assert_eq!(open(&k, &other, &blob), Err(SealError::IntegrityFailure));
    }

    #[test]
    fn distinct_purposes_use_distinct_keys() {
        let a = SealKey::derive(&[7u8; 32], "kv-pages");
        let b = SealKey::derive(&[7u8; 32], "checkpoints");
        let blob = seal(&a, &[0u8; 16], b"", b"payload");
        assert_eq!(open(&b, b"", &blob), Err(SealError::IntegrityFailure));
    }
}
