//! Authenticated sealing of secure data spilled to the normal world.
//!
//! When the TEE evicts state (e.g. cold KV-cache pages) into REE-visible
//! memory, confidentiality and integrity must survive a fully compromised
//! normal world.  This module provides the encrypt-then-MAC construction the
//! KV spill path uses: AES-256-CTR under a derived encryption key, then
//! HMAC-SHA256 over the nonce, the caller's associated data (the page's
//! identity header) and the ciphertext under an *independent* derived MAC
//! key.  Opening verifies the tag in constant time before any decryption.

use crate::ctr::AesCtr;
use crate::hmac::{derive_key, hmac_sha256};
use crate::sha256::constant_time_eq;

/// Length of the authentication tag (HMAC-SHA256).
pub const SEAL_TAG_LEN: usize = 32;

/// Length of the CTR nonce.
pub const SEAL_NONCE_LEN: usize = 16;

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The tag did not verify: the blob, its nonce or its associated data
    /// were tampered with (or the wrong key was used).
    IntegrityFailure,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::IntegrityFailure => write!(f, "sealed blob failed integrity verification"),
        }
    }
}

impl std::error::Error for SealError {}

/// A sealed blob as it sits in normal-world memory: everything here is
/// observable by (and writable from) a compromised REE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// CTR nonce (unique per seal under one key).
    pub nonce: [u8; SEAL_NONCE_LEN],
    /// The encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over nonce ‖ aad-length ‖ aad ‖ ciphertext.
    pub tag: [u8; SEAL_TAG_LEN],
}

impl SealedBlob {
    /// The blob exactly as the normal world sees it, serialised to bytes
    /// (nonce ‖ ciphertext ‖ tag) — what an attacker scanning CMA memory
    /// observes.
    pub fn observable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEAL_NONCE_LEN + self.ciphertext.len() + SEAL_TAG_LEN);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.tag);
        out
    }
}

/// The pair of independent sub-keys one sealing domain uses.
#[derive(Clone)]
pub struct SealKey {
    enc: Vec<u8>,
    mac: Vec<u8>,
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SealKey {{ .. }}")
    }
}

impl SealKey {
    /// Derives the encryption and MAC sub-keys from a root key, bound to a
    /// textual purpose label (different purposes never share key material).
    pub fn derive(root: &[u8], purpose: &str) -> SealKey {
        SealKey {
            enc: derive_key(root, &format!("{purpose}/enc"), 32),
            mac: derive_key(root, &format!("{purpose}/mac"), 32),
        }
    }
}

fn tag_for(
    key: &SealKey,
    nonce: &[u8; SEAL_NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; SEAL_TAG_LEN] {
    let mut msg = Vec::with_capacity(SEAL_NONCE_LEN + 8 + aad.len() + ciphertext.len());
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    msg.extend_from_slice(aad);
    msg.extend_from_slice(ciphertext);
    hmac_sha256(&key.mac, &msg)
}

/// Seals `plaintext` with associated data `aad` under `key` and `nonce`.
///
/// The nonce must be unique per seal under one key (the KV pool uses a
/// monotonic counter); `aad` is authenticated but not encrypted — the page
/// identity header lives there so a swapped blob fails verification.
pub fn seal(
    key: &SealKey,
    nonce: &[u8; SEAL_NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
) -> SealedBlob {
    let ctr = AesCtr::new(&key.enc, nonce).expect("derived key has a valid AES length");
    let mut ciphertext = plaintext.to_vec();
    ctr.apply(&mut ciphertext);
    let tag = tag_for(key, nonce, aad, &ciphertext);
    SealedBlob {
        nonce: *nonce,
        ciphertext,
        tag,
    }
}

/// Verifies and opens a sealed blob, returning the plaintext.
///
/// The tag is checked (in constant time) over the nonce, `aad` and the
/// ciphertext *before* decryption; any bit flipped anywhere is rejected.
pub fn open(key: &SealKey, aad: &[u8], blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
    let expected = tag_for(key, &blob.nonce, aad, &blob.ciphertext);
    if !constant_time_eq(&expected, &blob.tag) {
        return Err(SealError::IntegrityFailure);
    }
    let ctr = AesCtr::new(&key.enc, &blob.nonce).expect("derived key has a valid AES length");
    let mut plaintext = blob.ciphertext.clone();
    ctr.apply(&mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SealKey {
        SealKey::derive(&[0x42u8; 32], "test-seal")
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let k = key();
        let aad = b"session=7 seq=3";
        let blob = seal(&k, &[1u8; 16], aad, b"attention keys and values");
        assert_eq!(open(&k, aad, &blob).unwrap(), b"attention keys and values");
    }

    #[test]
    fn ciphertext_never_equals_plaintext_blocks() {
        let k = key();
        let plaintext: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let blob = seal(&k, &[9u8; 16], b"", &plaintext);
        assert_eq!(blob.ciphertext.len(), plaintext.len());
        for (c, p) in blob.ciphertext.chunks(16).zip(plaintext.chunks(16)) {
            assert_ne!(c, p, "a keystream block left plaintext exposed");
        }
    }

    #[test]
    fn any_tampering_is_rejected() {
        let k = key();
        let aad = b"page-header";
        let blob = seal(&k, &[5u8; 16], aad, b"secret kv bytes");

        let mut bad = blob.clone();
        bad.ciphertext[0] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        let mut bad = blob.clone();
        bad.tag[31] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        let mut bad = blob.clone();
        bad.nonce[3] ^= 1;
        assert_eq!(open(&k, aad, &bad), Err(SealError::IntegrityFailure));

        // Same blob under different associated data (a swapped page id).
        assert_eq!(
            open(&k, b"other-header", &blob),
            Err(SealError::IntegrityFailure)
        );

        // And the original still opens.
        assert!(open(&k, aad, &blob).is_ok());
    }

    #[test]
    fn distinct_purposes_use_distinct_keys() {
        let a = SealKey::derive(&[7u8; 32], "kv-pages");
        let b = SealKey::derive(&[7u8; 32], "checkpoints");
        let blob = seal(&a, &[0u8; 16], b"", b"payload");
        assert_eq!(open(&b, b"", &blob), Err(SealError::IntegrityFailure));
    }
}
