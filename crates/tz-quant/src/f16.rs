//! Software IEEE 754 binary16 ("half") codec.
//!
//! The KV cache stores K/V activations as f16 on device; the quantizer needs
//! to read those values and to store per-block scales in the same format, and
//! the offline build has no `half` crate — so the conversion lives here.
//! Round-trips are exact for every representable f16 value, conversion from
//! f32 rounds to nearest-even, overflow saturates to ±∞ and NaN is preserved
//! as a quiet NaN.

/// Converts an f32 to its nearest f16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mantissa = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN; keep NaN quiet (non-zero mantissa).
        return if mantissa == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    // Unbiased exponent; f16 bias is 15, f32 bias is 127.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow saturates to infinity
    }
    if unbiased >= -14 {
        // Normal f16: 10 mantissa bits survive; round to nearest-even on the
        // 13 discarded bits.
        let mut m = mantissa >> 13;
        let rest = mantissa & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let e = (unbiased + 15) as u32;
        // A mantissa carry bumps the exponent (and can round up to infinity).
        return sign | (((e << 10) + m) as u16);
    }
    if unbiased >= -25 {
        // Subnormal f16: shift the implicit leading 1 into the mantissa.
        let m = mantissa | 0x0080_0000;
        let shift = (-1 - unbiased) as u32; // 14 for the largest subnormal, up to 24
        let mut half_m = m >> shift;
        let rest = m & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rest > halfway || (rest == halfway && (half_m & 1) == 1) {
            half_m += 1;
        }
        return sign | half_m as u16;
    }
    sign // underflow to signed zero
}

/// Converts an f16 bit pattern to the f32 it denotes (always exact).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mantissa = (bits & 0x03ff) as u32;
    let out = match (exp, mantissa) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: normalise into an f32.
            let shift = m.leading_zeros() - 21; // 10 − (position of the leading bit)
            let m = (m << shift) & 0x03ff; // drop the now-implicit leading 1
            let e = 127 - 14 - shift;
            sign | (e << 23) | (m << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(out)
}

/// Reads the f16 at element index `idx` of a little-endian byte buffer.
pub fn read_f16(bytes: &[u8], idx: usize) -> f32 {
    f16_to_f32(u16::from_le_bytes([bytes[2 * idx], bytes[2 * idx + 1]]))
}

/// Writes `value` as a little-endian f16 at element index `idx`.
pub fn write_f16(bytes: &mut [u8], idx: usize, value: f32) {
    bytes[2 * idx..2 * idx + 2].copy_from_slice(&f32_to_f16(value).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_f16_value_roundtrips_exactly() {
        for bits in 0..=u16::MAX {
            let f = f16_to_f32(bits);
            if f.is_nan() {
                assert!(f16_to_f32(f32_to_f16(f)).is_nan());
            } else {
                assert_eq!(f32_to_f16(f), bits, "bits {bits:#06x} -> {f} diverged");
            }
        }
    }

    #[test]
    fn known_values_convert_correctly() {
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xc000), -2.0);
        assert_eq!(f16_to_f32(0x7bff), 65504.0); // largest finite f16
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(1e6), 0x7c00, "overflow saturates to +inf");
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(6e-8) & 0x7c00, 0, "tiny values go subnormal");
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next f16; ties go even.
        let halfway = 1.0 + f32::powi(2.0, -11);
        assert_eq!(f32_to_f16(halfway), 0x3c00);
        let above = 1.0 + f32::powi(2.0, -11) * 1.5;
        assert_eq!(f32_to_f16(above), 0x3c01);
    }

    #[test]
    fn buffer_accessors_are_little_endian() {
        let mut buf = [0u8; 4];
        write_f16(&mut buf, 0, 1.5);
        write_f16(&mut buf, 1, -0.25);
        assert_eq!(read_f16(&buf, 0), 1.5);
        assert_eq!(read_f16(&buf, 1), -0.25);
        assert_eq!(buf[0..2], f32_to_f16(1.5).to_le_bytes());
    }
}
