//! # tz-quant
//!
//! Block quantization for sealed KV-cache spill: the layer between the KV
//! managers and the sealing primitive that decides *how many bytes cross the
//! world boundary*.
//!
//! TZ-LLM's secure memory is the scarcest resource on device, and sealed KV
//! pages used to ship their f16 K/V verbatim — so a fixed normal-world CMA
//! spill budget bought half the tokens it could.  This crate quantizes pages
//! to INT8 or INT4 (per-block f16 scales, [`BLOCK_ELEMS`] elements per
//! block) on the way out and dequantizes them on the way back in:
//!
//! * [`f16`](mod@f16) — a software IEEE binary16 codec (the offline build has no
//!   `half` crate);
//! * [`quant`] — [`SpillFormat`] (F16 / Int8 / Int4), the packed layout,
//!   [`quantize`] / [`dequantize`], exact [`SpillFormat::sealed_len`]
//!   arithmetic shared by the byte-exact and accounting halves of the KV
//!   manager, and the modelled quality knob
//!   ([`SpillFormat::modelled_rms_noise`] /
//!   [`SpillFormat::for_noise_budget`]).
//!
//! The crate is deliberately dependency-free and deterministic: the
//! byte-exact sealing path (`tee-kernel`) and the serving-layer accounting
//! (`tzllm`) both call the same functions, so simulated spill budgets match
//! the bytes a compromised REE would actually observe.

pub mod f16;
pub mod quant;

pub use f16::{f16_to_f32, f32_to_f16, read_f16, write_f16};
pub use quant::{dequantize, quantize, QuantError, SpillFormat, BLOCK_ELEMS};
