//! Per-block quantization of f16 KV pages for sealed spill.
//!
//! A page is quantized in independent blocks of [`BLOCK_ELEMS`] f16 elements.
//! Each block stores one f16 *scale* (the block's max-magnitude divided by
//! the code range) followed by the signed integer codes — 8-bit codes for
//! [`SpillFormat::Int8`], two 4-bit codes per byte for [`SpillFormat::Int4`].
//! Dequantization is `code × scale`, so the worst-case per-element error is
//! bounded by one scale step ([`SpillFormat::error_bound`]); the property
//! tests in `tests/security.rs` assert that bound across random pages.
//!
//! [`SpillFormat::F16`] is the identity: no transform, no scales, byte-for-
//! byte the PR-4 spill payload — quantization off must be invisible.

use crate::f16::{f32_to_f16, read_f16, write_f16};

/// Elements per quantization block (one f16 scale is stored per block).
///
/// 64 keeps the scale overhead at 1/64th of an element per element: an INT8
/// page compresses to `(1 + 2/64) / 2 ≈ 0.516` of its f16 size, so a fixed
/// normal-world spill budget holds ~1.94× the pages — the "≥ 1.9×" the
/// acceptance benchmarks gate on.
pub const BLOCK_ELEMS: usize = 64;

/// How sealed KV pages are encoded in normal-world spill memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SpillFormat {
    /// Verbatim f16 (the PR-4 behaviour; quantization off).
    #[default]
    F16,
    /// 8-bit block quantization with per-block f16 scales (~1.94× denser).
    Int8,
    /// 4-bit block quantization with per-block f16 scales (~3.77× denser).
    Int4,
}

/// Errors from [`dequantize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// The packed payload's length does not match the format's layout for
    /// the claimed plaintext length.
    BadLength {
        /// What the layout requires.
        expected: usize,
        /// What the caller provided.
        got: usize,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::BadLength { expected, got } => {
                write!(
                    f,
                    "quantized payload is {got} bytes, layout needs {expected}"
                )
            }
        }
    }
}

impl std::error::Error for QuantError {}

impl SpillFormat {
    /// Every format, densest last.
    pub const ALL: [SpillFormat; 3] = [SpillFormat::F16, SpillFormat::Int8, SpillFormat::Int4];

    /// Stable wire identifier, bound into the seal's MAC so a blob cannot be
    /// relabelled across formats.
    pub fn id(self) -> u8 {
        match self {
            SpillFormat::F16 => 0,
            SpillFormat::Int8 => 1,
            SpillFormat::Int4 => 2,
        }
    }

    /// The format with wire identifier `id`.
    pub fn from_id(id: u8) -> Option<SpillFormat> {
        match id {
            0 => Some(SpillFormat::F16),
            1 => Some(SpillFormat::Int8),
            2 => Some(SpillFormat::Int4),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            SpillFormat::F16 => "f16",
            SpillFormat::Int8 => "int8",
            SpillFormat::Int4 => "int4",
        }
    }

    /// Largest code magnitude, `None` for the identity format.
    pub fn levels(self) -> Option<i32> {
        match self {
            SpillFormat::F16 => None,
            SpillFormat::Int8 => Some(127),
            SpillFormat::Int4 => Some(7),
        }
    }

    /// Whether restoring a page of this format needs a dequantization pass.
    pub fn is_quantized(self) -> bool {
        self != SpillFormat::F16
    }

    /// Sealed payload size for a `plain_len`-byte f16 page.  Exact layout
    /// arithmetic — the seal MAC binds both lengths, and the accounting half
    /// of the KV manager uses the same function so simulated spill budgets
    /// match the byte-exact path.
    pub fn sealed_len(self, plain_len: usize) -> usize {
        let elems = plain_len / 2;
        let odd = plain_len % 2;
        match self {
            SpillFormat::F16 => plain_len,
            SpillFormat::Int8 => elems.div_ceil(BLOCK_ELEMS) * 2 + elems + odd,
            SpillFormat::Int4 => elems.div_ceil(BLOCK_ELEMS) * 2 + elems.div_ceil(2) + odd,
        }
    }

    /// How many plaintext bytes each sealed byte stands for
    /// (`plain / sealed`, ≥ 1): the factor a fixed spill budget stretches by.
    pub fn expansion(self, plain_len: usize) -> f64 {
        if plain_len == 0 {
            return 1.0;
        }
        plain_len as f64 / self.sealed_len(plain_len) as f64
    }

    /// Worst-case per-element absolute reconstruction error for a block whose
    /// max magnitude is `max_abs`: one scale step (rounding contributes half
    /// a step, f16 scale storage and the clamp the rest).
    pub fn error_bound(self, max_abs: f32) -> f32 {
        match self.levels() {
            None => 0.0,
            Some(levels) => {
                let scale = f16_scale(max_abs, levels);
                if scale == 0.0 {
                    max_abs // an all-zero (or denormal-max) block reconstructs to zero
                } else {
                    scale
                }
            }
        }
    }

    /// Modelled quantization noise as a fraction of the block's full scale:
    /// the RMS of a uniform rounding error of one step, `1 / (levels · √12)`.
    /// This is the quality knob's currency — a serving policy picks the
    /// densest format whose modelled noise fits its budget rather than
    /// reasoning about formats directly.
    pub fn modelled_rms_noise(self) -> f64 {
        match self.levels() {
            None => 0.0,
            Some(levels) => 1.0 / (levels as f64 * 12f64.sqrt()),
        }
    }

    /// The densest format whose modelled RMS noise stays within
    /// `noise_budget` (fraction of full scale).  `0.0` always picks
    /// [`SpillFormat::F16`]; `≥ 0.042` admits INT4.
    pub fn for_noise_budget(noise_budget: f64) -> SpillFormat {
        Self::ALL
            .iter()
            .rev()
            .copied()
            .find(|f| f.modelled_rms_noise() <= noise_budget)
            .unwrap_or(SpillFormat::F16)
    }
}

/// The f16-rounded scale a block with max magnitude `max_abs` quantizes by.
fn f16_scale(max_abs: f32, levels: i32) -> f32 {
    crate::f16::f16_to_f32(f32_to_f16(max_abs / levels as f32))
}

/// Quantizes a little-endian f16 page into the format's packed layout.
///
/// Non-finite elements (NaN/±∞ never appear in healthy KV state, but random
/// test pages can contain their bit patterns) are treated as zero so the
/// output is always well-defined.  A trailing odd byte is carried verbatim.
pub fn quantize(format: SpillFormat, plain: &[u8]) -> Vec<u8> {
    if format == SpillFormat::F16 {
        return plain.to_vec();
    }
    let levels = format.levels().expect("quantized format");
    let elems = plain.len() / 2;
    let mut out = Vec::with_capacity(format.sealed_len(plain.len()));
    let mut block_vals = [0f32; BLOCK_ELEMS];
    let mut idx = 0;
    while idx < elems {
        let n = (elems - idx).min(BLOCK_ELEMS);
        let mut max_abs = 0f32;
        for (i, v) in block_vals[..n].iter_mut().enumerate() {
            let x = read_f16(plain, idx + i);
            *v = if x.is_finite() { x } else { 0.0 };
            max_abs = max_abs.max(v.abs());
        }
        let scale = f16_scale(max_abs, levels);
        out.extend_from_slice(&f32_to_f16(scale).to_le_bytes());
        let code = |x: f32| -> i32 {
            if scale == 0.0 {
                0
            } else {
                (x / scale).round().clamp(-levels as f32, levels as f32) as i32
            }
        };
        match format {
            SpillFormat::Int8 => {
                for &v in &block_vals[..n] {
                    out.push(code(v) as i8 as u8);
                }
            }
            SpillFormat::Int4 => {
                for pair in block_vals[..n].chunks(2) {
                    let lo = (code(pair[0]) & 0xf) as u8;
                    let hi = if pair.len() == 2 {
                        (code(pair[1]) & 0xf) as u8
                    } else {
                        0
                    };
                    out.push(lo | (hi << 4));
                }
            }
            SpillFormat::F16 => unreachable!(),
        }
        idx += n;
    }
    if plain.len() % 2 == 1 {
        out.push(plain[plain.len() - 1]);
    }
    debug_assert_eq!(out.len(), format.sealed_len(plain.len()));
    out
}

fn sign_extend_4(nibble: u8) -> i32 {
    ((nibble as i8) << 4 >> 4) as i32
}

/// Reconstructs the f16 page a packed payload encodes.
///
/// `plain_len` is the authenticated plaintext length from the seal header;
/// a payload whose length disagrees with the format's layout for that length
/// is rejected before any decoding.
pub fn dequantize(
    format: SpillFormat,
    packed: &[u8],
    plain_len: usize,
) -> Result<Vec<u8>, QuantError> {
    let expected = format.sealed_len(plain_len);
    if packed.len() != expected {
        return Err(QuantError::BadLength {
            expected,
            got: packed.len(),
        });
    }
    if format == SpillFormat::F16 {
        return Ok(packed.to_vec());
    }
    let elems = plain_len / 2;
    let mut out = vec![0u8; plain_len];
    let mut pos = 0usize; // read cursor in `packed`
    let mut idx = 0usize; // element cursor in `out`
    while idx < elems {
        let n = (elems - idx).min(BLOCK_ELEMS);
        let scale = crate::f16::f16_to_f32(u16::from_le_bytes([packed[pos], packed[pos + 1]]));
        pos += 2;
        match format {
            SpillFormat::Int8 => {
                for i in 0..n {
                    let q = packed[pos + i] as i8 as i32;
                    write_f16(&mut out, idx + i, q as f32 * scale);
                }
                pos += n;
            }
            SpillFormat::Int4 => {
                for i in 0..n {
                    let byte = packed[pos + i / 2];
                    let nibble = if i % 2 == 0 { byte & 0xf } else { byte >> 4 };
                    let q = sign_extend_4(nibble);
                    write_f16(&mut out, idx + i, q as f32 * scale);
                }
                pos += n.div_ceil(2);
            }
            SpillFormat::F16 => unreachable!(),
        }
        idx += n;
    }
    if plain_len % 2 == 1 {
        out[plain_len - 1] = packed[packed.len() - 1];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic page of finite f16 values in roughly ±8.
    fn f16_page(seed: u64, bytes: usize) -> Vec<u8> {
        let mut out = vec![0u8; bytes];
        let mut state = seed | 1;
        for i in 0..bytes / 2 {
            state = state
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            let unit = (state >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
            write_f16(&mut out, i, (unit - 0.5) * 16.0);
        }
        out
    }

    #[test]
    fn sealed_len_matches_the_hand_computed_layout() {
        // 2 MiB page: 1 Mi elements, 16384 blocks.
        let plain = 2 * 1024 * 1024;
        assert_eq!(SpillFormat::F16.sealed_len(plain), plain);
        assert_eq!(SpillFormat::Int8.sealed_len(plain), 16384 * 2 + 1024 * 1024);
        assert_eq!(SpillFormat::Int4.sealed_len(plain), 16384 * 2 + 512 * 1024);
        assert!(SpillFormat::Int8.expansion(plain) > 1.9);
        assert!(SpillFormat::Int4.expansion(plain) > 3.7);
        // Odd and tiny sizes stay consistent.
        for len in [0usize, 1, 2, 3, 127, 129] {
            for f in SpillFormat::ALL {
                let q = quantize(f, &f16_page(9, len));
                assert_eq!(q.len(), f.sealed_len(len), "{f:?} at {len}");
            }
        }
    }

    #[test]
    fn f16_format_is_the_identity() {
        let page = f16_page(1, 4096);
        let q = quantize(SpillFormat::F16, &page);
        assert_eq!(q, page);
        assert_eq!(dequantize(SpillFormat::F16, &q, 4096).unwrap(), page);
    }

    #[test]
    fn roundtrip_error_stays_within_one_scale_step() {
        for format in [SpillFormat::Int8, SpillFormat::Int4] {
            let page = f16_page(42, 8192);
            let packed = quantize(format, &page);
            let restored = dequantize(format, &packed, page.len()).unwrap();
            let elems = page.len() / 2;
            for block in 0..elems.div_ceil(BLOCK_ELEMS) {
                let lo = block * BLOCK_ELEMS;
                let hi = (lo + BLOCK_ELEMS).min(elems);
                let max_abs = (lo..hi)
                    .map(|i| read_f16(&page, i).abs())
                    .fold(0f32, f32::max);
                let bound = format.error_bound(max_abs);
                for i in lo..hi {
                    let err = (read_f16(&page, i) - read_f16(&restored, i)).abs();
                    assert!(
                        err <= bound,
                        "{format:?} elem {i}: err {err} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let page = f16_page(7, 4096);
        let rms = |format: SpillFormat| {
            let restored = dequantize(format, &quantize(format, &page), page.len()).unwrap();
            let elems = page.len() / 2;
            let sum: f64 = (0..elems)
                .map(|i| {
                    let d = (read_f16(&page, i) - read_f16(&restored, i)) as f64;
                    d * d
                })
                .sum();
            (sum / elems as f64).sqrt()
        };
        let (e8, e4) = (rms(SpillFormat::Int8), rms(SpillFormat::Int4));
        assert!(e8 > 0.0, "int8 is lossy");
        assert!(e4 > 4.0 * e8, "int4 must be markedly coarser: {e4} vs {e8}");
    }

    #[test]
    fn non_finite_and_zero_blocks_are_handled() {
        let mut page = f16_page(3, 256);
        page[0..2].copy_from_slice(&0x7c00u16.to_le_bytes()); // +inf
        page[2..4].copy_from_slice(&0x7e00u16.to_le_bytes()); // NaN
        for i in 64..128 {
            write_f16(&mut page, i, 0.0); // an all-zero block
        }
        for format in [SpillFormat::Int8, SpillFormat::Int4] {
            let restored = dequantize(format, &quantize(format, &page), page.len()).unwrap();
            assert_eq!(read_f16(&restored, 0), 0.0, "inf sanitised to zero");
            assert_eq!(read_f16(&restored, 1), 0.0, "nan sanitised to zero");
            assert_eq!(read_f16(&restored, 64), 0.0);
        }
    }

    #[test]
    fn wrong_length_payloads_are_rejected() {
        let page = f16_page(5, 512);
        let packed = quantize(SpillFormat::Int8, &page);
        // Claimed plaintext length disagrees with the payload layout.
        assert!(matches!(
            dequantize(SpillFormat::Int8, &packed, 1024),
            Err(QuantError::BadLength { .. })
        ));
        // An INT4 payload fed to the INT8 decoder has the wrong layout too.
        let packed4 = quantize(SpillFormat::Int4, &page);
        assert!(matches!(
            dequantize(SpillFormat::Int8, &packed4, 512),
            Err(QuantError::BadLength { .. })
        ));
    }

    #[test]
    fn quality_knob_picks_the_densest_admissible_format() {
        assert_eq!(SpillFormat::for_noise_budget(0.0), SpillFormat::F16);
        assert_eq!(SpillFormat::for_noise_budget(0.003), SpillFormat::Int8);
        assert_eq!(SpillFormat::for_noise_budget(0.05), SpillFormat::Int4);
        assert!(SpillFormat::Int4.modelled_rms_noise() > SpillFormat::Int8.modelled_rms_noise());
        assert_eq!(SpillFormat::F16.modelled_rms_noise(), 0.0);
    }

    #[test]
    fn format_ids_roundtrip_and_stay_stable() {
        for f in SpillFormat::ALL {
            assert_eq!(SpillFormat::from_id(f.id()), Some(f));
        }
        assert_eq!(SpillFormat::from_id(3), None);
        assert_eq!(
            (
                SpillFormat::F16.id(),
                SpillFormat::Int8.id(),
                SpillFormat::Int4.id()
            ),
            (0, 1, 2),
            "wire ids are part of the sealed AAD and must never change"
        );
    }
}
