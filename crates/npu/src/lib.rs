//! # npu
//!
//! Model of the Rockchip-like NPU that TZ-LLM time-shares between the REE and
//! the TEE:
//!
//! * [`job`] — job descriptors, execution contexts (command buffer, I/O page
//!   table, input/output buffers), secure/non-secure/shadow job kinds.
//! * [`iommu`] — the NPU's I/O page table.
//! * [`device`] — the device itself: MMIO gate (TZPC), DMA filtering (TZASC),
//!   single-queue execution, completion interrupts (GIC).
//!
//! The REE control-plane driver lives in `ree-kernel::npu_driver` and the TEE
//! data-plane driver in `tee-kernel::npu_data_plane`, mirroring the paper's
//! co-driver split (§4.3).

pub mod device;
pub mod iommu;
pub mod job;

pub use device::{Completion, LaunchError, NpuDevice};
pub use iommu::{IoPageTable, IommuError, Iova};
pub use job::{ExecutionContext, JobId, JobKind, NpuJob};
