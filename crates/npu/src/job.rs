//! NPU job descriptors and execution contexts.
//!
//! §4.3 of the paper: the data plane of the NPU driver prepares, for each
//! job, an *execution context* consisting of the I/O page table, the register
//! commands (the "job code"), and the input/output buffers.  For secure jobs
//! all of these live in secure memory; for non-secure jobs they live in
//! normal memory.  The TEE driver additionally stamps secure jobs with a
//! monotonic sequence number to defeat replay and reordering attacks.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use tz_hal::{PhysRange, World};

/// Unique identifier of an NPU job within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// The memory footprint of one NPU job: everything the NPU will touch by DMA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionContext {
    /// Register command buffer (the compiled job).
    pub command_buffer: PhysRange,
    /// The I/O page table the NPU's IOMMU walks for this job.
    pub io_page_table: PhysRange,
    /// Input buffers (model parameters, activations).
    pub inputs: Vec<PhysRange>,
    /// Output buffers (activations, logits).
    pub outputs: Vec<PhysRange>,
}

impl ExecutionContext {
    /// An empty context (used by shadow jobs, which carry no real work).
    pub fn empty() -> Self {
        ExecutionContext {
            command_buffer: PhysRange::EMPTY,
            io_page_table: PhysRange::EMPTY,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Whether the context references no memory at all.
    pub fn is_empty(&self) -> bool {
        self.command_buffer.is_empty()
            && self.io_page_table.is_empty()
            && self.inputs.is_empty()
            && self.outputs.is_empty()
    }

    /// Iterates over every physical range the job will access via DMA.
    pub fn dma_ranges(&self) -> impl Iterator<Item = &PhysRange> {
        std::iter::once(&self.command_buffer)
            .chain(std::iter::once(&self.io_page_table))
            .chain(self.inputs.iter())
            .chain(self.outputs.iter())
            .filter(|r| !r.is_empty())
    }
}

/// The security class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// A normal REE job (object detection, OCR, photo refinement, ...).
    NonSecure,
    /// A secure job issued by the LLM TA through the TEE data-plane driver.
    Secure,
    /// A shadow job: the placeholder the TEE driver enqueues into the REE
    /// scheduler for each secure job.  It has an empty execution context and
    /// is never launched on the hardware itself.
    Shadow {
        /// The secure job this shadow represents.
        paired_secure_job: JobId,
    },
}

impl JobKind {
    /// The world whose driver launches this job on the hardware.
    pub fn launch_world(self) -> World {
        match self {
            JobKind::NonSecure => World::NonSecure,
            JobKind::Secure => World::Secure,
            // The shadow job itself is handled by the REE scheduler.
            JobKind::Shadow { .. } => World::NonSecure,
        }
    }
}

/// A complete NPU job descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpuJob {
    /// Unique job identifier.
    pub id: JobId,
    /// Security class.
    pub kind: JobKind,
    /// Memory the job touches.
    pub context: ExecutionContext,
    /// How long the job occupies the NPU (derived from the operator cost
    /// model for LLM jobs, or from the NN-application profile for REE jobs).
    pub duration: SimDuration,
    /// Monotonic sequence number assigned by the TEE driver to secure jobs;
    /// zero for non-secure and shadow jobs.
    pub sequence: u64,
    /// Short human-readable label for traces.
    pub label: String,
}

impl NpuJob {
    /// Creates a non-secure job.
    pub fn non_secure(
        id: JobId,
        context: ExecutionContext,
        duration: SimDuration,
        label: impl Into<String>,
    ) -> Self {
        NpuJob {
            id,
            kind: JobKind::NonSecure,
            context,
            duration,
            sequence: 0,
            label: label.into(),
        }
    }

    /// Creates a secure job (sequence number assigned later by the TEE driver).
    pub fn secure(
        id: JobId,
        context: ExecutionContext,
        duration: SimDuration,
        label: impl Into<String>,
    ) -> Self {
        NpuJob {
            id,
            kind: JobKind::Secure,
            context,
            duration,
            sequence: 0,
            label: label.into(),
        }
    }

    /// Creates the shadow counterpart of a secure job.
    pub fn shadow(id: JobId, secure_job: JobId) -> Self {
        NpuJob {
            id,
            kind: JobKind::Shadow {
                paired_secure_job: secure_job,
            },
            context: ExecutionContext::empty(),
            duration: SimDuration::ZERO,
            sequence: 0,
            label: format!("shadow-of-{}", secure_job.0),
        }
    }

    /// Whether this is a secure job.
    pub fn is_secure(&self) -> bool {
        matches!(self.kind, JobKind::Secure)
    }

    /// Whether this is a shadow job.
    pub fn is_shadow(&self) -> bool {
        matches!(self.kind, JobKind::Shadow { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tz_hal::PhysAddr;

    fn range(start: u64, size: u64) -> PhysRange {
        PhysRange::new(PhysAddr::new(start), size)
    }

    #[test]
    fn dma_ranges_cover_all_buffers() {
        let ctx = ExecutionContext {
            command_buffer: range(0x1000, 0x1000),
            io_page_table: range(0x2000, 0x1000),
            inputs: vec![range(0x10000, 0x4000), range(0x20000, 0x4000)],
            outputs: vec![range(0x30000, 0x4000)],
        };
        assert_eq!(ctx.dma_ranges().count(), 5);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn empty_context_has_no_dma_ranges() {
        let ctx = ExecutionContext::empty();
        assert!(ctx.is_empty());
        assert_eq!(ctx.dma_ranges().count(), 0);
    }

    #[test]
    fn shadow_jobs_reference_their_secure_job() {
        let shadow = NpuJob::shadow(JobId(7), JobId(3));
        assert!(shadow.is_shadow());
        assert!(!shadow.is_secure());
        assert_eq!(shadow.duration, SimDuration::ZERO);
        match shadow.kind {
            JobKind::Shadow { paired_secure_job } => assert_eq!(paired_secure_job, JobId(3)),
            _ => panic!("expected shadow"),
        }
        assert_eq!(shadow.kind.launch_world(), World::NonSecure);
    }

    #[test]
    fn launch_worlds() {
        assert_eq!(JobKind::Secure.launch_world(), World::Secure);
        assert_eq!(JobKind::NonSecure.launch_world(), World::NonSecure);
    }
}
