//! The NPU device model.
//!
//! Models the Rockchip RK3588 NPU at the level TZ-LLM interacts with it: an
//! MMIO register block guarded by the TZPC, a DMA engine whose accesses are
//! filtered by the TZASC, three compute cores that run one job at a time (the
//! driver schedules jobs sequentially, matching the Rockchip driver's single
//! hardware queue), and a completion interrupt routed by the GIC.
//!
//! The device itself is *mode-less*: whether a launch succeeds depends
//! entirely on the current TZPC/TZASC/GIC configuration, which is exactly the
//! property the co-driver switch protocol (§4.3) manipulates.

use sim_core::{SimDuration, SimTime};
use tz_hal::{DeviceId, Platform, World, NPU_IRQ};

use crate::job::{JobId, NpuJob};

/// Why the NPU refused to launch a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The launching world cannot access the NPU MMIO registers (TZPC).
    MmioBlocked {
        /// The world that attempted the launch.
        world: World,
    },
    /// A DMA range in the execution context is not accessible to the NPU
    /// under the current TZASC configuration.
    DmaBlocked {
        /// The offending range index (in `dma_ranges()` order).
        range_index: usize,
    },
    /// Another job is still running.
    Busy {
        /// The running job.
        running: JobId,
    },
    /// Shadow jobs carry no work and must never be launched on hardware.
    ShadowJobNotLaunchable,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::MmioBlocked { world } => {
                write!(f, "NPU MMIO access from {world} world blocked by TZPC")
            }
            LaunchError::DmaBlocked { range_index } => {
                write!(
                    f,
                    "NPU DMA to execution-context range #{range_index} blocked by TZASC"
                )
            }
            LaunchError::Busy { running } => write!(f, "NPU busy running job {}", running.0),
            LaunchError::ShadowJobNotLaunchable => {
                write!(f, "shadow jobs cannot be launched on the NPU")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// A completed NPU job execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The job that completed.
    pub job: JobId,
    /// When it started on the hardware.
    pub started: SimTime,
    /// When the completion interrupt fired.
    pub finished: SimTime,
    /// The world the completion interrupt was delivered to.
    pub interrupt_world: World,
}

/// The running-job register state.
#[derive(Debug, Clone)]
struct Running {
    job: NpuJob,
    started: SimTime,
    finishes: SimTime,
}

/// The NPU device.
#[derive(Debug)]
pub struct NpuDevice {
    cores: usize,
    running: Option<Running>,
    completions: Vec<Completion>,
    launches: u64,
}

impl NpuDevice {
    /// Creates an idle NPU with the given number of cores.
    pub fn new(cores: usize) -> Self {
        NpuDevice {
            cores,
            running: None,
            completions: Vec::new(),
            launches: 0,
        }
    }

    /// Number of NPU cores (jobs use all cores; the RK3588 driver dispatches
    /// one multi-core job at a time).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Whether a job is currently executing at instant `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        matches!(&self.running, Some(r) if r.finishes > now)
    }

    /// When the current job (if any) will finish.
    pub fn busy_until(&self) -> Option<SimTime> {
        self.running.as_ref().map(|r| r.finishes)
    }

    /// Total number of successful launches.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// All completions recorded so far (the device retires a completion when
    /// [`NpuDevice::poll_completion`] observes that its finish time passed).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Launches `job` from `world` at time `now`.
    ///
    /// The launch performs the same checks the hardware + TrustZone
    /// controllers would:
    /// 1. the launching world must be able to touch the NPU MMIO block (TZPC);
    /// 2. every DMA range of the execution context must be accessible to the
    ///    NPU under the current TZASC configuration;
    /// 3. the device must be idle.
    ///
    /// On success returns the time at which the job will complete.
    pub fn launch(
        &mut self,
        platform: &Platform,
        world: World,
        job: NpuJob,
        now: SimTime,
    ) -> Result<SimTime, LaunchError> {
        if job.is_shadow() {
            return Err(LaunchError::ShadowJobNotLaunchable);
        }
        platform
            .with_tzpc(|tzpc| tzpc.check_mmio_access(world, DeviceId::Npu))
            .map_err(|v| LaunchError::MmioBlocked { world: v.world })?;

        // Retire a finished job before checking business.
        self.poll_completion(platform, now);
        if let Some(running) = &self.running {
            if running.finishes > now {
                return Err(LaunchError::Busy {
                    running: running.job.id,
                });
            }
        }

        for (i, range) in job.context.dma_ranges().enumerate() {
            if platform
                .with_tzasc(|tzasc| tzasc.check_dma_access(DeviceId::Npu, *range))
                .is_err()
            {
                return Err(LaunchError::DmaBlocked { range_index: i });
            }
        }

        let finishes = now + job.duration;
        self.running = Some(Running {
            job,
            started: now,
            finishes,
        });
        self.launches += 1;
        Ok(finishes)
    }

    /// Checks whether the running job has finished by `now`; if so, raises the
    /// completion interrupt through the GIC and records the completion.
    pub fn poll_completion(&mut self, platform: &Platform, now: SimTime) -> Option<Completion> {
        let finished = matches!(&self.running, Some(r) if r.finishes <= now);
        if !finished {
            return None;
        }
        let r = self.running.take().expect("checked above");
        let delivered = platform.with_gic(|gic| gic.raise(NPU_IRQ));
        let completion = Completion {
            job: r.job.id,
            started: r.started,
            finished: r.finishes,
            interrupt_world: delivered.target,
        };
        self.completions.push(completion.clone());
        Some(completion)
    }

    /// Blocks (in simulated time) until the running job finishes, returning
    /// the drain duration.  Used by the world-switch protocol's "wait for the
    /// ongoing non-secure NPU job" step (§4.3).
    pub fn drain(&mut self, platform: &Platform, now: SimTime) -> (SimTime, SimDuration) {
        match self.busy_until() {
            Some(finishes) if finishes > now => {
                let waited = finishes - now;
                self.poll_completion(platform, finishes);
                (finishes, waited)
            }
            _ => {
                self.poll_completion(platform, now);
                (now, SimDuration::ZERO)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ExecutionContext, JobId};
    use tz_hal::{PhysAddr, PhysRange};

    fn ctx(start: u64, size: u64) -> ExecutionContext {
        ExecutionContext {
            command_buffer: PhysRange::new(PhysAddr::new(start), 0x1000),
            io_page_table: PhysRange::new(PhysAddr::new(start + 0x1000), 0x1000),
            inputs: vec![PhysRange::new(PhysAddr::new(start + 0x2000), size)],
            outputs: vec![PhysRange::new(PhysAddr::new(start + 0x2000 + size), 0x1000)],
        }
    }

    #[test]
    fn non_secure_job_runs_when_npu_is_non_secure() {
        let platform = Platform::rk3588();
        let mut npu = NpuDevice::new(3);
        let job = NpuJob::non_secure(
            JobId(1),
            ctx(0x8000_0000, 0x10000),
            SimDuration::from_millis(4),
            "yolo",
        );
        let done = npu
            .launch(&platform, World::NonSecure, job, SimTime::ZERO)
            .unwrap();
        assert_eq!(done, SimTime::from_millis(4));
        assert!(npu.is_busy(SimTime::from_millis(2)));
        let completion = npu
            .poll_completion(&platform, SimTime::from_millis(5))
            .unwrap();
        assert_eq!(completion.job, JobId(1));
        assert_eq!(completion.interrupt_world, World::NonSecure);
        assert_eq!(npu.launches(), 1);
    }

    #[test]
    fn ree_launch_blocked_when_npu_secured() {
        let platform = Platform::rk3588();
        platform.with_tzpc(|t| t.set_secure(World::Secure, DeviceId::Npu, true).unwrap());
        let mut npu = NpuDevice::new(3);
        let job = NpuJob::non_secure(
            JobId(1),
            ctx(0x8000_0000, 0x1000),
            SimDuration::from_millis(1),
            "ree",
        );
        let err = npu
            .launch(&platform, World::NonSecure, job, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::MmioBlocked {
                world: World::NonSecure
            }
        );
    }

    #[test]
    fn dma_into_secure_memory_requires_allowlist() {
        let platform = Platform::rk3588();
        // Protect a region but do NOT allow the NPU.
        platform.with_tzasc(|t| {
            t.configure_region(
                World::Secure,
                PhysRange::new(PhysAddr::new(0x9000_0000), 0x100000),
                [],
            )
            .unwrap()
        });
        let mut npu = NpuDevice::new(3);
        let job = NpuJob::secure(
            JobId(2),
            ctx(0x9000_0000, 0x10000),
            SimDuration::from_millis(1),
            "llm",
        );
        let err = npu
            .launch(&platform, World::Secure, job, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, LaunchError::DmaBlocked { .. }));

        // Now allow the NPU on that region: the launch succeeds.
        platform.with_tzasc(|t| {
            t.set_device_access(World::Secure, tz_hal::RegionId(0), DeviceId::Npu, true)
                .unwrap()
        });
        let job = NpuJob::secure(
            JobId(3),
            ctx(0x9000_0000, 0x10000),
            SimDuration::from_millis(1),
            "llm",
        );
        assert!(npu
            .launch(&platform, World::Secure, job, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn busy_device_rejects_second_launch_until_drained() {
        let platform = Platform::rk3588();
        let mut npu = NpuDevice::new(3);
        let a = NpuJob::non_secure(
            JobId(1),
            ctx(0x8000_0000, 0x1000),
            SimDuration::from_millis(10),
            "a",
        );
        let b = NpuJob::non_secure(
            JobId(2),
            ctx(0x8800_0000, 0x1000),
            SimDuration::from_millis(1),
            "b",
        );
        npu.launch(&platform, World::NonSecure, a, SimTime::ZERO)
            .unwrap();
        let err = npu
            .launch(
                &platform,
                World::NonSecure,
                b.clone(),
                SimTime::from_millis(3),
            )
            .unwrap_err();
        assert_eq!(err, LaunchError::Busy { running: JobId(1) });
        // Drain, then the second launch succeeds.
        let (now, waited) = npu.drain(&platform, SimTime::from_millis(3));
        assert_eq!(now, SimTime::from_millis(10));
        assert_eq!(waited, SimDuration::from_millis(7));
        assert!(npu.launch(&platform, World::NonSecure, b, now).is_ok());
    }

    #[test]
    fn secure_completion_interrupt_goes_to_tee_when_rerouted() {
        let platform = Platform::rk3588();
        platform.with_gic(|g| g.route(World::Secure, NPU_IRQ, World::Secure).unwrap());
        platform.with_tzasc(|t| {
            t.configure_region(
                World::Secure,
                PhysRange::new(PhysAddr::new(0x9000_0000), 0x100000),
                [DeviceId::Npu],
            )
            .unwrap()
        });
        let mut npu = NpuDevice::new(3);
        let job = NpuJob::secure(
            JobId(9),
            ctx(0x9000_0000, 0x10000),
            SimDuration::from_millis(2),
            "secure",
        );
        npu.launch(&platform, World::Secure, job, SimTime::ZERO)
            .unwrap();
        let completion = npu
            .poll_completion(&platform, SimTime::from_millis(2))
            .unwrap();
        assert_eq!(completion.interrupt_world, World::Secure);
    }

    #[test]
    fn shadow_jobs_cannot_be_launched() {
        let platform = Platform::rk3588();
        let mut npu = NpuDevice::new(3);
        let err = npu
            .launch(
                &platform,
                World::NonSecure,
                NpuJob::shadow(JobId(5), JobId(4)),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, LaunchError::ShadowJobNotLaunchable);
    }
}
