//! NPU IOMMU (I/O page table) model.
//!
//! The NPU accesses memory through an IOMMU whose page table is part of each
//! job's execution context.  For secure jobs the TEE data-plane driver builds
//! the table in secure memory so the REE cannot tamper with the translation;
//! for non-secure jobs the REE driver builds it in normal memory.  The model
//! keeps a flat IOVA → physical mapping and validates translations.

use std::collections::BTreeMap;

use tz_hal::{PhysAddr, PhysRange, PAGE_SIZE};

/// An I/O virtual address as seen by the NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Iova(pub u64);

/// Errors raised by the IOMMU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IommuError {
    /// The IOVA is not mapped.
    NotMapped(Iova),
    /// The mapping would overlap an existing mapping.
    AlreadyMapped(Iova),
    /// Addresses must be page-aligned.
    Misaligned,
}

impl std::fmt::Display for IommuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IommuError::NotMapped(iova) => write!(f, "IOVA {:#x} is not mapped", iova.0),
            IommuError::AlreadyMapped(iova) => write!(f, "IOVA {:#x} is already mapped", iova.0),
            IommuError::Misaligned => write!(f, "IOMMU mappings must be page aligned"),
        }
    }
}

impl std::error::Error for IommuError {}

/// A flat I/O page table: page-granular IOVA → physical translations.
#[derive(Debug, Clone, Default)]
pub struct IoPageTable {
    entries: BTreeMap<u64, PhysAddr>, // iova page number -> phys page start
}

impl IoPageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        IoPageTable::default()
    }

    /// Maps `size` bytes at `iova` to the physical range starting at `phys`.
    pub fn map(&mut self, iova: Iova, phys: PhysAddr, size: u64) -> Result<(), IommuError> {
        if !iova.0.is_multiple_of(PAGE_SIZE)
            || !phys.as_u64().is_multiple_of(PAGE_SIZE)
            || !size.is_multiple_of(PAGE_SIZE)
        {
            return Err(IommuError::Misaligned);
        }
        let pages = size / PAGE_SIZE;
        // Validate first so a failed map leaves the table unchanged.
        for i in 0..pages {
            let vpn = iova.0 / PAGE_SIZE + i;
            if self.entries.contains_key(&vpn) {
                return Err(IommuError::AlreadyMapped(Iova(vpn * PAGE_SIZE)));
            }
        }
        for i in 0..pages {
            let vpn = iova.0 / PAGE_SIZE + i;
            self.entries
                .insert(vpn, PhysAddr::new(phys.as_u64() + i * PAGE_SIZE));
        }
        Ok(())
    }

    /// Unmaps `size` bytes at `iova`.  Unmapped pages are ignored.
    pub fn unmap(&mut self, iova: Iova, size: u64) -> Result<(), IommuError> {
        if !iova.0.is_multiple_of(PAGE_SIZE) || !size.is_multiple_of(PAGE_SIZE) {
            return Err(IommuError::Misaligned);
        }
        for i in 0..size / PAGE_SIZE {
            self.entries.remove(&(iova.0 / PAGE_SIZE + i));
        }
        Ok(())
    }

    /// Translates a single IOVA to a physical address.
    pub fn translate(&self, iova: Iova) -> Result<PhysAddr, IommuError> {
        let vpn = iova.0 / PAGE_SIZE;
        let offset = iova.0 % PAGE_SIZE;
        self.entries
            .get(&vpn)
            .map(|p| PhysAddr::new(p.as_u64() + offset))
            .ok_or(IommuError::NotMapped(iova))
    }

    /// Translates an IOVA range into the physical ranges it maps to
    /// (coalescing physically contiguous pages).
    pub fn translate_range(&self, iova: Iova, size: u64) -> Result<Vec<PhysRange>, IommuError> {
        if size == 0 {
            return Ok(Vec::new());
        }
        let mut out: Vec<PhysRange> = Vec::new();
        let first_page = iova.0 / PAGE_SIZE;
        let last_page = (iova.0 + size - 1) / PAGE_SIZE;
        for vpn in first_page..=last_page {
            let phys = self
                .entries
                .get(&vpn)
                .ok_or(IommuError::NotMapped(Iova(vpn * PAGE_SIZE)))?;
            match out.last_mut() {
                Some(last) if last.end() == *phys => {
                    last.size += PAGE_SIZE;
                }
                _ => out.push(PhysRange::new(*phys, PAGE_SIZE)),
            }
        }
        Ok(out)
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0x10000), PhysAddr::new(0x8000_0000), 4 * PAGE_SIZE)
            .unwrap();
        assert_eq!(
            pt.translate(Iova(0x10000)).unwrap(),
            PhysAddr::new(0x8000_0000)
        );
        assert_eq!(
            pt.translate(Iova(0x10000 + PAGE_SIZE + 17)).unwrap(),
            PhysAddr::new(0x8000_0000 + PAGE_SIZE + 17)
        );
        assert!(pt.translate(Iova(0x20000)).is_err());
        assert_eq!(pt.mapped_pages(), 4);
    }

    #[test]
    fn translate_range_coalesces_contiguous_pages() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0), PhysAddr::new(0x1000_0000), 2 * PAGE_SIZE)
            .unwrap();
        pt.map(Iova(2 * PAGE_SIZE), PhysAddr::new(0x2000_0000), PAGE_SIZE)
            .unwrap();
        let ranges = pt.translate_range(Iova(0), 3 * PAGE_SIZE).unwrap();
        assert_eq!(ranges.len(), 2);
        assert_eq!(
            ranges[0],
            PhysRange::new(PhysAddr::new(0x1000_0000), 2 * PAGE_SIZE)
        );
        assert_eq!(
            ranges[1],
            PhysRange::new(PhysAddr::new(0x2000_0000), PAGE_SIZE)
        );
    }

    #[test]
    fn double_map_rejected_atomically() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(PAGE_SIZE), PhysAddr::new(0x1000_0000), PAGE_SIZE)
            .unwrap();
        let err = pt
            .map(Iova(0), PhysAddr::new(0x3000_0000), 2 * PAGE_SIZE)
            .unwrap_err();
        assert_eq!(err, IommuError::AlreadyMapped(Iova(PAGE_SIZE)));
        // The failed map must not have left a partial mapping of page 0.
        assert!(pt.translate(Iova(0)).is_err());
    }

    #[test]
    fn unmap_removes_translations() {
        let mut pt = IoPageTable::new();
        pt.map(Iova(0), PhysAddr::new(0x1000_0000), 4 * PAGE_SIZE)
            .unwrap();
        pt.unmap(Iova(PAGE_SIZE), 2 * PAGE_SIZE).unwrap();
        assert!(pt.translate(Iova(0)).is_ok());
        assert!(pt.translate(Iova(PAGE_SIZE)).is_err());
        assert!(pt.translate(Iova(3 * PAGE_SIZE)).is_ok());
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn misaligned_operations_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(
            pt.map(Iova(123), PhysAddr::new(0x1000), PAGE_SIZE),
            Err(IommuError::Misaligned)
        );
        assert_eq!(pt.unmap(Iova(0), 100), Err(IommuError::Misaligned));
    }
}
