//! REE neural-network applications sharing the NPU with the LLM (§7.3).
//!
//! Figure 15 runs YOLOv5 (object detection) and MobileNet (image
//! classification) concurrently with LLM inference.  For the sharing
//! simulation each application is characterised by the NPU time of one
//! inference; the throughputs under exclusive use follow directly, and the
//! throughputs under sharing come out of the co-driver simulation.

use sim_core::SimDuration;

/// An REE application that submits NPU jobs back to back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnApp {
    /// YOLOv5 object detection (≈10 ms of NPU time per frame on the RK3588).
    YoloV5,
    /// MobileNet image classification (≈4.3 ms per image).
    MobileNet,
}

impl NnApp {
    /// Both applications, figure order.
    pub fn all() -> [NnApp; 2] {
        [NnApp::YoloV5, NnApp::MobileNet]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NnApp::YoloV5 => "YOLOv5",
            NnApp::MobileNet => "MobileNet",
        }
    }

    /// NPU time of one inference.
    pub fn job_time(self) -> SimDuration {
        match self {
            NnApp::YoloV5 => SimDuration::from_micros(10_000),
            NnApp::MobileNet => SimDuration::from_micros(4_300),
        }
    }

    /// Throughput when the application owns the NPU exclusively (ops/s),
    /// ignoring scheduling overhead.
    pub fn exclusive_ops_per_sec(self) -> f64 {
        1.0 / self.job_time().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_throughputs_match_figure_15_scale() {
        // Figure 15: YOLOv5 ~100 ops/s, MobileNet ~230 ops/s when exclusive.
        assert!((NnApp::YoloV5.exclusive_ops_per_sec() - 100.0).abs() < 1.0);
        assert!((NnApp::MobileNet.exclusive_ops_per_sec() - 232.6).abs() < 3.0);
        assert!(NnApp::MobileNet.exclusive_ops_per_sec() > NnApp::YoloV5.exclusive_ops_per_sec());
    }

    #[test]
    fn names_and_order() {
        let all = NnApp::all();
        assert_eq!(all[0].name(), "YOLOv5");
        assert_eq!(all[1].name(), "MobileNet");
    }
}
