//! Heterogeneous device-mix assignment for sharded fleet simulation.
//!
//! A fleet of millions of devices is not a fleet of identical devices: the
//! population spans flagship, midrange and entry-level SoCs.  [`DeviceMix`]
//! assigns one calibrated [`PlatformProfile`] to each device shard as a pure
//! function of the shard index — deterministic round-robin over a weighted
//! slot list — so the assignment depends only on `(mix, shard_id)`, never on
//! which worker thread runs the shard or in what order shards complete.
//! That makes the mix safe to use inside the parallel fleet runner without
//! perturbing its byte-stable-per-seed guarantee.

use tz_hal::PlatformProfile;

/// A weighted population of device calibrations, assignable per shard.
#[derive(Debug, Clone)]
pub struct DeviceMix {
    /// The expanded slot list round-robin assignment walks; weighted mixes
    /// repeat a profile in proportion to its weight.
    slots: Vec<PlatformProfile>,
}

impl DeviceMix {
    /// A homogeneous fleet: every shard runs the same calibration.
    pub fn homogeneous(profile: PlatformProfile) -> Self {
        DeviceMix {
            slots: vec![profile],
        }
    }

    /// A mix with integer weights: `(profile, copies)` pairs expand into a
    /// slot list that shard assignment cycles through, so a weight-2 profile
    /// covers twice the shards of a weight-1 profile.
    ///
    /// # Panics
    /// Panics if the expanded mix is empty.
    pub fn weighted(entries: &[(PlatformProfile, usize)]) -> Self {
        let slots: Vec<PlatformProfile> = entries
            .iter()
            .flat_map(|(p, copies)| std::iter::repeat_n(p.clone(), *copies))
            .collect();
        assert!(!slots.is_empty(), "a device mix needs at least one slot");
        DeviceMix { slots }
    }

    /// The default heterogeneous fleet: one flagship RK3588 to two midrange
    /// RK3576 to one entry-level RK3566 — a plausible installed-base shape
    /// that exercises all three calibrations in every 4-shard window.
    pub fn heterogeneous_default() -> Self {
        Self::weighted(&[
            (PlatformProfile::rk3588(), 1),
            (PlatformProfile::rk3576(), 2),
            (PlatformProfile::rk3566(), 1),
        ])
    }

    /// The calibration of device shard `shard`: deterministic round-robin
    /// over the slot list, independent of thread scheduling.
    pub fn profile_for_shard(&self, shard: u64) -> &PlatformProfile {
        &self.slots[(shard % self.slots.len() as u64) as usize]
    }

    /// Number of distinct slots in the expanded mix.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_a_pure_function_of_the_shard_index() {
        let mix = DeviceMix::heterogeneous_default();
        for shard in 0..32u64 {
            assert_eq!(
                mix.profile_for_shard(shard).soc,
                mix.profile_for_shard(shard).soc
            );
            assert_eq!(
                mix.profile_for_shard(shard).soc,
                mix.slots[(shard % 4) as usize].soc
            );
        }
    }

    #[test]
    fn weights_shape_the_population() {
        let mix = DeviceMix::heterogeneous_default();
        assert_eq!(mix.slot_count(), 4);
        let socs: Vec<&str> = (0..8).map(|s| mix.profile_for_shard(s).soc).collect();
        let count = |name| socs.iter().filter(|s| **s == name).count();
        assert_eq!(count("rk3588"), 2);
        assert_eq!(count("rk3576"), 4);
        assert_eq!(count("rk3566"), 2);
    }

    #[test]
    fn homogeneous_mix_always_returns_its_profile() {
        let mix = DeviceMix::homogeneous(PlatformProfile::rk3588());
        for shard in [0u64, 1, 17, 9999] {
            assert_eq!(mix.profile_for_shard(shard).soc, "rk3588");
        }
    }

    #[test]
    #[should_panic]
    fn an_empty_mix_is_rejected() {
        let _ = DeviceMix::weighted(&[]);
    }
}
