//! A Geekbench-like REE application suite.
//!
//! Figures 2 and 16 measure how the two candidate protection designs perturb
//! ordinary REE applications: stage-2 translation imposes a *continuous*
//! walk overhead (Figure 2), while TZ-LLM's CMA migration steals CPU time
//! only while the prefill-stage restoration runs (Figure 16).
//!
//! Each subtest carries two calibrated coefficients:
//! * `tlb_sensitivity` — how much of the paper's worst-case 9.8 % slowdown the
//!   subtest suffers under 4 KiB stage-2 mappings (calibrated from Figure 2);
//! * `cpu_sensitivity` — how strongly its score degrades when a fraction of
//!   CPU time is stolen by migration threads (Figure 16 shows up to 6.7 %).

use ree_kernel::StageTwoConfig;

/// One Geekbench-like subtest.
#[derive(Debug, Clone)]
pub struct Subtest {
    /// Subtest name (as in the figures).
    pub name: &'static str,
    /// Baseline score on the unperturbed system.
    pub base_score: f64,
    /// Stage-2 walk sensitivity in `[0, 1]` (1.0 = the 9.8 % worst case).
    pub tlb_sensitivity: f64,
    /// Sensitivity to stolen CPU time in `[0, 1]`.
    pub cpu_sensitivity: f64,
}

impl Subtest {
    /// Score under a stage-2 configuration (Figure 2).
    ///
    /// Geekbench scores are throughput-like, so the score drop equals the
    /// fraction of time added by the two-dimensional walks.
    pub fn score_under_s2pt(&self, cfg: &StageTwoConfig) -> f64 {
        if !cfg.enabled {
            return self.base_score;
        }
        let drop = self.tlb_sensitivity * 0.098 * cfg.granularity.walk_cost_factor();
        self.base_score * (1.0 - drop)
    }

    /// Score when `steal_fraction` of CPU time is consumed by concurrent CMA
    /// migration / restoration work (Figure 16).
    pub fn score_under_cpu_steal(&self, steal_fraction: f64) -> f64 {
        let s = steal_fraction.clamp(0.0, 1.0) * self.cpu_sensitivity;
        self.base_score * (1.0 - s)
    }
}

/// The sixteen subtests of Figures 2 and 16 with sensitivities calibrated so
/// the S2PT column reproduces the paper's per-subtest overheads
/// (4.3, 9.8, 0.6, 3.7, 1.3, 1.4, 1.8, 0.2, 0.6, 0.9, 5.2, 0.8, 1.7, 0.2, 0.3, −0.1 %).
pub fn suite() -> Vec<Subtest> {
    let data: [(&'static str, f64, f64); 16] = [
        ("File Comp.", 1510.0, 4.3),
        ("Navigation", 1190.0, 9.8),
        ("HTML5", 1410.0, 0.6),
        ("PDF Rend.", 1530.0, 3.7),
        ("Photo Lib.", 1340.0, 1.3),
        ("Clang", 1450.0, 1.4),
        ("Text Proc.", 1290.0, 1.8),
        ("Asset Comp.", 1560.0, 0.2),
        ("Obj. Detect.", 1480.0, 0.6),
        ("Back. Blur", 1350.0, 0.9),
        ("Obj. Remover", 1230.0, 5.2),
        ("HDR", 1600.0, 0.8),
        ("Photo Filter", 1440.0, 1.7),
        ("Ray Tracer", 1700.0, 0.2),
        ("Motion", 1370.0, 0.3),
        ("Horizon", 1420.0, -0.1),
    ];
    data.iter()
        .map(|&(name, base_score, overhead_pct)| Subtest {
            name,
            base_score,
            tlb_sensitivity: (overhead_pct / 9.8).clamp(-0.05, 1.0),
            // Memory-heavy subtests are also the ones most affected by
            // migration stealing CPU/memory bandwidth.
            cpu_sensitivity: 0.03 + (overhead_pct.max(0.0) / 9.8) * 0.04,
        })
        .collect()
}

/// Mean relative overhead (fraction) of a perturbed score set versus baseline.
pub fn mean_overhead(baseline: &[f64], perturbed: &[f64]) -> f64 {
    assert_eq!(baseline.len(), perturbed.len());
    let per: Vec<f64> = baseline
        .iter()
        .zip(perturbed)
        .map(|(b, p)| (b - p) / b)
        .collect();
    per.iter().sum::<f64>() / per.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2pt_4k_reproduces_figure_2() {
        let suite = suite();
        let disabled = StageTwoConfig::disabled();
        let enabled = StageTwoConfig::enabled_4k();
        let mut overheads = Vec::new();
        for t in &suite {
            let base = t.score_under_s2pt(&disabled);
            let with = t.score_under_s2pt(&enabled);
            overheads.push((base - with) / base * 100.0);
        }
        // Worst case ~9.8 %, average ~2.0 % (paper values).
        let max = overheads.iter().cloned().fold(f64::MIN, f64::max);
        let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
        assert!((max - 9.8).abs() < 0.5, "max = {max}");
        assert!((avg - 2.0).abs() < 0.5, "avg = {avg}");
        // The Navigation subtest is the worst affected.
        let nav_idx = suite.iter().position(|t| t.name == "Navigation").unwrap();
        assert!((overheads[nav_idx] - max).abs() < 1e-9);
    }

    #[test]
    fn cpu_steal_overhead_is_transient_and_bounded() {
        let suite = suite();
        // Worst-case Figure 16 steal fraction during Llama-3-8B prefill.
        let steal = 0.9;
        let worst = suite
            .iter()
            .map(|t| 1.0 - t.score_under_cpu_steal(steal) / t.base_score)
            .fold(f64::MIN, f64::max);
        assert!(worst < 0.08, "worst = {worst}");
        assert!(worst > 0.03);
        // No steal, no overhead.
        for t in &suite {
            assert_eq!(t.score_under_cpu_steal(0.0), t.base_score);
        }
    }

    #[test]
    fn suite_has_sixteen_named_subtests() {
        let s = suite();
        assert_eq!(s.len(), 16);
        let names: std::collections::BTreeSet<&str> = s.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn mean_overhead_helper() {
        let base = vec![100.0, 200.0];
        let pert = vec![90.0, 190.0];
        let m = mean_overhead(&base, &pert);
        assert!((m - 0.075).abs() < 1e-9);
    }
}
