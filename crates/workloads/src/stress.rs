//! A stress-ng-like memory-pressure generator.
//!
//! §7 uses stress-ng to dirty a configurable amount of movable memory so CMA
//! allocation has to migrate pages (the worst-case pressures are 13 / 11 / 10
//! / 6 GB for the four models).  The generator produces the pressure figure
//! and a deterministic page-touch schedule; the actual effect on allocation
//! latency is modelled by [`ree_kernel::CmaRegion::set_memory_pressure`].

use sim_core::{DetRng, GIB};

/// The memory-stress configuration for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStress {
    /// Bytes of movable memory the stressor keeps mapped and dirty.
    pub pressure_bytes: u64,
    /// Number of stressor threads (pinned away from the LLM cores).
    pub workers: usize,
}

impl MemoryStress {
    /// No pressure at all.
    pub fn none() -> Self {
        MemoryStress {
            pressure_bytes: 0,
            workers: 0,
        }
    }

    /// The paper's worst-case pressure for a given model name
    /// (13 / 11 / 10 / 6 GB for the four catalogue models).
    pub fn worst_case_for(model_name: &str) -> Self {
        let gib = match model_name {
            "tinyllama-1.1b" => 13,
            "qwen2.5-3b" => 11,
            "phi-3-3.8b" => 10,
            "llama-3-8b" => 6,
            _ => 8,
        };
        MemoryStress {
            pressure_bytes: gib * GIB,
            workers: 4,
        }
    }

    /// A deterministic schedule of page indices the stressor touches, used by
    /// tests that want a concrete access pattern rather than just a byte count.
    pub fn touch_schedule(&self, pages: usize, rng: &mut DetRng) -> Vec<u64> {
        let total_pages = (self.pressure_bytes / 4096).max(1);
        (0..pages).map(|_| rng.gen_range(0, total_pages)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_pressures_match_the_paper() {
        assert_eq!(
            MemoryStress::worst_case_for("tinyllama-1.1b").pressure_bytes,
            13 * GIB
        );
        assert_eq!(
            MemoryStress::worst_case_for("llama-3-8b").pressure_bytes,
            6 * GIB
        );
        assert_eq!(
            MemoryStress::worst_case_for("unknown").pressure_bytes,
            8 * GIB
        );
        assert_eq!(MemoryStress::none().pressure_bytes, 0);
    }

    #[test]
    fn touch_schedule_is_deterministic_and_in_bounds() {
        let stress = MemoryStress::worst_case_for("qwen2.5-3b");
        let a = stress.touch_schedule(100, &mut DetRng::new(5));
        let b = stress.touch_schedule(100, &mut DetRng::new(5));
        assert_eq!(a, b);
        let max_page = stress.pressure_bytes / 4096;
        assert!(a.iter().all(|&p| p < max_page));
    }
}
