//! # workloads
//!
//! Workload generators for the evaluation:
//!
//! * [`benchmarks`] — UltraChat / PersonaChat / DroidTask prompt-length
//!   distributions and synthetic prompt text.
//! * [`geekbench`] — a 16-subtest Geekbench-like REE application suite with
//!   calibrated stage-2 and CPU-steal sensitivities (Figures 2 and 16).
//! * [`nn_apps`] — YOLOv5 / MobileNet NPU job profiles (Figure 15).
//! * [`stress`] — the stress-ng-like memory-pressure generator.
//! * [`traffic`] — serving arrival processes (Poisson / bursty / closed-loop
//!   session patterns) over the benchmark prompt distributions.
//! * [`fleet`] — heterogeneous device-mix assignment for sharded
//!   fleet-scale simulation (which SoC calibration each shard runs).

pub mod benchmarks;
pub mod fleet;
pub mod geekbench;
pub mod nn_apps;
pub mod stress;
pub mod traffic;

pub use benchmarks::Benchmark;
pub use fleet::DeviceMix;
pub use geekbench::{mean_overhead, suite as geekbench_suite, Subtest};
pub use nn_apps::NnApp;
pub use stress::MemoryStress;
pub use traffic::{ArrivalProcess, ScriptedRequest, SessionScript, SessionStyle, WorkloadSpec};
