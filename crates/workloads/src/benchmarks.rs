//! The three real-world benchmarks of §7: UltraChat, PersonaChat, DroidTask.
//!
//! The figures only consume the *prompt length distribution* of each
//! benchmark (and §7.1.1 explains the differences between them by prompt
//! length: UltraChat's multi-turn dialogues are short, PersonaChat's
//! summarisation prompts are medium, DroidTask's UI-automation prompts are
//! long).  The generator is deterministic per seed, and also produces
//! synthetic prompt *text* so the examples can run the tokenizer end to end.

use sim_core::DetRng;

/// The three benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Multi-turn dialogues (short prompts).
    UltraChat,
    /// Persona-based chat summarisation (medium prompts).
    PersonaChat,
    /// LLM-powered UI automation (long prompts).
    DroidTask,
}

impl Benchmark {
    /// All benchmarks in the order the figures plot them.
    pub fn all() -> [Benchmark; 3] {
        [
            Benchmark::UltraChat,
            Benchmark::PersonaChat,
            Benchmark::DroidTask,
        ]
    }

    /// Short label used in figures (UC / PC / DT).
    pub fn short_label(self) -> &'static str {
        match self {
            Benchmark::UltraChat => "UC",
            Benchmark::PersonaChat => "PC",
            Benchmark::DroidTask => "DT",
        }
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::UltraChat => "UltraChat",
            Benchmark::PersonaChat => "PersonaChat",
            Benchmark::DroidTask => "DroidTask",
        }
    }

    /// Prompt-length distribution parameters (mean, standard deviation,
    /// minimum) in tokens.
    fn length_distribution(self) -> (f64, f64, u64) {
        match self {
            Benchmark::UltraChat => (72.0, 28.0, 16),
            Benchmark::PersonaChat => (256.0, 64.0, 96),
            Benchmark::DroidTask => (420.0, 90.0, 192),
        }
    }

    /// Typical output length in tokens (decode phase).
    pub fn output_len(self) -> usize {
        match self {
            Benchmark::UltraChat => 96,
            Benchmark::PersonaChat => 64,
            Benchmark::DroidTask => 32,
        }
    }

    /// Samples `count` prompt lengths.
    pub fn sample_prompt_lengths(self, count: usize, rng: &mut DetRng) -> Vec<usize> {
        let (mean, std, min) = self.length_distribution();
        (0..count)
            .map(|_| rng.gen_normal(mean, std).max(min as f64).round() as usize)
            .collect()
    }

    /// Generates synthetic prompt text of roughly `tokens` tokens for the
    /// examples (a few words per token with the default tokenizer merges).
    pub fn synthetic_prompt(self, tokens: usize, rng: &mut DetRng) -> String {
        let fragments: &[&str] = match self {
            Benchmark::UltraChat => &[
                "what do you think about this",
                "can you explain it again",
                "that is interesting, tell me more",
                "how would you do it",
            ],
            Benchmark::PersonaChat => &[
                "please summarize the conversation between the two speakers",
                "the first speaker enjoys hiking and photography",
                "the second speaker talks about their new job in the city",
                "both agree to meet for coffee next week",
            ],
            Benchmark::DroidTask => &[
                "open the settings application and tap on the display entry",
                "scroll down until the dark mode toggle is visible",
                "tap the toggle and verify the theme changed",
                "return to the home screen and open the clock app",
            ],
        };
        let mut out = String::new();
        // ~4 tokens per fragment word group with the default merges.
        while out.split_whitespace().count() < tokens {
            let fragment = *rng.choose(fragments);
            out.push_str(fragment);
            out.push_str(". ");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_ordering_matches_the_paper() {
        let mut rng = DetRng::new(1);
        let mut mean = |b: Benchmark| {
            let v = b.sample_prompt_lengths(500, &mut rng);
            v.iter().sum::<usize>() as f64 / v.len() as f64
        };
        let uc = mean(Benchmark::UltraChat);
        let pc = mean(Benchmark::PersonaChat);
        let dt = mean(Benchmark::DroidTask);
        assert!(uc < pc && pc < dt, "uc {uc}, pc {pc}, dt {dt}");
        assert!(uc < 120.0 && dt > 300.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = Benchmark::PersonaChat.sample_prompt_lengths(20, &mut DetRng::new(7));
        let b = Benchmark::PersonaChat.sample_prompt_lengths(20, &mut DetRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn prompts_respect_minimums() {
        let mut rng = DetRng::new(3);
        for b in Benchmark::all() {
            for len in b.sample_prompt_lengths(200, &mut rng) {
                assert!(len >= 16);
            }
        }
    }

    #[test]
    fn synthetic_prompts_have_roughly_requested_length() {
        let mut rng = DetRng::new(9);
        let text = Benchmark::DroidTask.synthetic_prompt(100, &mut rng);
        let words = text.split_whitespace().count();
        assert!((100..140).contains(&words), "words = {words}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Benchmark::UltraChat.short_label(), "UC");
        assert_eq!(Benchmark::DroidTask.name(), "DroidTask");
    }
}
