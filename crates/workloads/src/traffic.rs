//! Serving traffic generators.
//!
//! The paper evaluates TZ-LLM one inference at a time; the serving layer
//! (`tzllm::serving`) instead drives the device with a *stream* of requests.
//! This module turns the existing benchmark prompt distributions
//! ([`Benchmark`]) into arrival processes:
//!
//! * [`ArrivalProcess::Poisson`] — open-loop, exponentially distributed
//!   inter-arrival times (independent users hitting the device);
//! * [`ArrivalProcess::Bursty`] — open-loop, Poisson-spaced *bursts* of
//!   back-to-back requests (notification fan-outs, screen-on surges);
//! * [`ArrivalProcess::ClosedLoop`] — a fixed population of sessions, each
//!   submitting its next request one think-time after the previous response
//!   finished (interactive chat users).
//!
//! All randomness is drawn up-front from a [`DetRng`] seeded explicitly, so a
//! workload is fully described by `(spec, seed)`: generating it twice yields
//! byte-identical session scripts, which the serving layer's deterministic
//! replay test relies on.
//!
//! # Example
//!
//! ```
//! use workloads::{Benchmark, traffic::{ArrivalProcess, SessionStyle, WorkloadSpec}};
//!
//! let spec = WorkloadSpec {
//!     process: ArrivalProcess::Poisson { rate_per_sec: 0.5 },
//!     requests: 20,
//!     models: vec!["qwen2.5-3b".into()],
//!     mix: vec![(Benchmark::UltraChat, 0.7), (Benchmark::PersonaChat, 0.3)],
//!     style: SessionStyle::Independent,
//! };
//! let a = spec.generate(42);
//! let b = spec.generate(42);
//! assert_eq!(a, b); // same seed, same traffic
//! assert_eq!(a.iter().map(|s| s.requests.len()).sum::<usize>(), 20);
//! ```

use sim_core::{DetRng, SimDuration, SimTime};

use crate::benchmarks::Benchmark;

/// How request arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_per_sec` requests per second.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// Open-loop bursts: burst *starts* are Poisson at `bursts_per_sec`, and
    /// each burst delivers `burst_size` requests spaced `intra_gap` apart.
    Bursty {
        /// Mean burst arrival rate in bursts per second.
        bursts_per_sec: f64,
        /// Requests per burst.
        burst_size: usize,
        /// Gap between consecutive requests inside one burst.
        intra_gap: SimDuration,
    },
    /// Closed-loop: `sessions` concurrent users, each waiting a think time
    /// (exponential with mean `mean_think`) after a response before sending
    /// the next request.
    ClosedLoop {
        /// Number of concurrent sessions.
        sessions: usize,
        /// Mean think time between a response and the next request.
        mean_think: SimDuration,
    },
}

/// How the requests of one multi-request session relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStyle {
    /// Every request is drawn independently (separate tasks per turn) —
    /// follow-up prompts share nothing with earlier context.
    Independent,
    /// A conversation: each follow-up prompt is the session's previous
    /// context (prompt + response) extended by a freshly drawn user turn, so
    /// prompts *grow* and each turn shares its prefix with the last.  When
    /// the context would exceed `max_context` tokens the conversation resets
    /// (a new chat starts; nothing is shared).
    Conversation {
        /// Context cap in tokens; conversations reset beyond it.
        max_context: usize,
    },
}

/// A complete workload description: arrival process, request budget, and what
/// each request looks like (model, benchmark-derived prompt/output lengths).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Total number of requests across all sessions.
    pub requests: usize,
    /// Catalogue model names to draw from, uniformly. Must be non-empty.
    pub models: Vec<String>,
    /// Benchmark mix with relative weights. Must be non-empty; weights are
    /// normalised internally.
    pub mix: Vec<(Benchmark, f64)>,
    /// Whether multi-request sessions are independent tasks or growing
    /// conversations (only closed-loop sessions have several requests).
    pub style: SessionStyle,
}

/// One scripted request of a session: everything the serving layer needs to
/// know, decided ahead of time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedRequest {
    /// Delay before this request is issued: for the first request of a
    /// session, measured from simulation start; for subsequent requests,
    /// from the completion of the session's previous response (think time).
    pub delay: SimDuration,
    /// Catalogue model name this request targets.
    pub model: String,
    /// Benchmark the prompt was drawn from.
    pub benchmark: Benchmark,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Leading prompt tokens identical to the session's previous context
    /// (prompt + response of the last turn); zero for independent requests
    /// and for the first turn of a conversation.
    pub shared_prefix_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
}

/// The scripted lifetime of one session.
///
/// Open-loop processes produce one single-request session per arrival (each
/// request is an independent user); the closed-loop process produces
/// `sessions` scripts with many requests each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript {
    /// Session identifier, dense from zero.
    pub session: u64,
    /// The session's requests in order.
    pub requests: Vec<ScriptedRequest>,
}

impl WorkloadSpec {
    /// Generates the deterministic session scripts for this workload.
    ///
    /// # Panics
    /// Panics if `models` or `mix` is empty, or if a rate is non-positive.
    pub fn generate(&self, seed: u64) -> Vec<SessionScript> {
        assert!(!self.models.is_empty(), "workload needs at least one model");
        assert!(!self.mix.is_empty(), "workload needs a benchmark mix");
        let mut rng = DetRng::new(seed);
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
                let mut at = 0.0f64;
                (0..self.requests)
                    .map(|i| {
                        at += rng.gen_exp(1.0 / rate_per_sec);
                        let mut req = self.draw_request(&mut rng);
                        req.delay = SimDuration::from_secs_f64(at);
                        SessionScript {
                            session: i as u64,
                            requests: vec![req],
                        }
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                bursts_per_sec,
                burst_size,
                intra_gap,
            } => {
                assert!(bursts_per_sec > 0.0, "burst rate must be positive");
                assert!(burst_size > 0, "bursts must contain requests");
                let mut scripts = Vec::with_capacity(self.requests);
                let mut burst_start = 0.0f64;
                while scripts.len() < self.requests {
                    burst_start += rng.gen_exp(1.0 / bursts_per_sec);
                    for k in 0..burst_size {
                        if scripts.len() >= self.requests {
                            break;
                        }
                        let mut req = self.draw_request(&mut rng);
                        req.delay = SimDuration::from_secs_f64(burst_start) + intra_gap * k as u64;
                        scripts.push(SessionScript {
                            session: scripts.len() as u64,
                            requests: vec![req],
                        });
                    }
                }
                scripts
            }
            ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            } => {
                assert!(sessions > 0, "closed loop needs at least one session");
                let per_session = self.requests.div_ceil(sessions);
                (0..sessions)
                    .map(|s| {
                        let budget = per_session.min(self.requests.saturating_sub(s * per_session));
                        // Running conversation context (previous prompt +
                        // response) when the style is `Conversation`.
                        let mut context = 0usize;
                        let requests = (0..budget)
                            .map(|i| {
                                let mut req = self.draw_request(&mut rng);
                                if let SessionStyle::Conversation { max_context } = self.style {
                                    // The freshly drawn prompt is this turn's
                                    // *user utterance*; the full prompt is the
                                    // conversation so far plus the utterance.
                                    let grown = context + req.prompt_len;
                                    if i > 0 && grown + req.output_len <= max_context {
                                        req.shared_prefix_len = context;
                                        req.prompt_len = grown;
                                    }
                                    // On a fresh (or reset) chat the prompt
                                    // stays the bare utterance and nothing is
                                    // shared.
                                    context = req.prompt_len + req.output_len;
                                }
                                req.delay = if i == 0 {
                                    // Stagger session starts a little so the
                                    // opening stampede is not a single instant.
                                    SimDuration::from_secs_f64(
                                        rng.gen_exp(mean_think.as_secs_f64().max(1e-9) / 4.0),
                                    )
                                } else {
                                    SimDuration::from_secs_f64(
                                        rng.gen_exp(mean_think.as_secs_f64().max(1e-9)),
                                    )
                                };
                                req
                            })
                            .collect();
                        SessionScript {
                            session: s as u64,
                            requests,
                        }
                    })
                    .collect()
            }
        }
    }

    /// Draws one request (model, benchmark, prompt/output lengths); the
    /// caller fills in `delay`.
    fn draw_request(&self, rng: &mut DetRng) -> ScriptedRequest {
        let model = rng.choose(&self.models).clone();
        let benchmark = self.pick_benchmark(rng);
        let prompt_len = benchmark.sample_prompt_lengths(1, rng)[0];
        ScriptedRequest {
            delay: SimDuration::ZERO,
            model,
            benchmark,
            prompt_len,
            shared_prefix_len: 0,
            output_len: benchmark.output_len(),
        }
    }

    fn pick_benchmark(&self, rng: &mut DetRng) -> Benchmark {
        let total: f64 = self.mix.iter().map(|&(_, w)| w.max(0.0)).sum();
        let mut draw = rng.next_f64() * total;
        for &(b, w) in &self.mix {
            draw -= w.max(0.0);
            if draw <= 0.0 {
                return b;
            }
        }
        self.mix.last().expect("mix is non-empty").0
    }

    /// An equal-weight UltraChat/PersonaChat/DroidTask mix over one model —
    /// the default fleet workload of the serving benchmarks.
    pub fn standard(process: ArrivalProcess, requests: usize, model: &str) -> WorkloadSpec {
        WorkloadSpec {
            process,
            requests,
            models: vec![model.to_string()],
            mix: Benchmark::all().iter().map(|&b| (b, 1.0)).collect(),
            style: SessionStyle::Independent,
        }
    }

    /// The standard benchmark mix over *several* models drawn uniformly per
    /// request.  Alternating models keeps every dispatch's working set
    /// partially evicted, which makes this the cold-heavy traffic shape the
    /// restore-ahead benchmarks and regression tests sweep.
    pub fn standard_multi(
        process: ArrivalProcess,
        requests: usize,
        models: &[&str],
    ) -> WorkloadSpec {
        WorkloadSpec {
            process,
            requests,
            models: models.iter().map(|m| m.to_string()).collect(),
            mix: Benchmark::all().iter().map(|&b| (b, 1.0)).collect(),
            style: SessionStyle::Independent,
        }
    }

    /// The chat-heavy workload: `sessions` closed-loop users holding growing
    /// UltraChat conversations on one model — each follow-up turn's prompt
    /// extends the previous context, which is exactly the shape the secure
    /// KV-cache manager's prefix reuse accelerates.
    pub fn chat(
        sessions: usize,
        requests: usize,
        mean_think: SimDuration,
        model: &str,
    ) -> WorkloadSpec {
        WorkloadSpec {
            process: ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            },
            requests,
            models: vec![model.to_string()],
            mix: vec![(Benchmark::UltraChat, 1.0)],
            style: SessionStyle::Conversation { max_context: 2048 },
        }
    }
}

/// Flattens open-loop scripts into `(arrival, request)` pairs sorted by
/// arrival time — convenient for tests and for plotting arrival traces.
/// Closed-loop sessions only have a defined arrival for their *first*
/// request (later arrivals depend on response times), so those are skipped
/// beyond the first.
pub fn open_arrivals(scripts: &[SessionScript]) -> Vec<(SimTime, &ScriptedRequest)> {
    let mut out: Vec<(SimTime, &ScriptedRequest)> = scripts
        .iter()
        .filter_map(|s| s.requests.first().map(|r| (SimTime::ZERO + r.delay, r)))
        .collect();
    out.sort_by_key(|&(t, _)| t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(process: ArrivalProcess) -> WorkloadSpec {
        WorkloadSpec::standard(process, 100, "qwen2.5-3b")
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let s = spec(ArrivalProcess::Poisson { rate_per_sec: 2.0 });
        let scripts = s.generate(7);
        assert_eq!(scripts.len(), 100);
        let last = open_arrivals(&scripts).last().unwrap().0;
        // 100 requests at 2 req/s should span ~50 s.
        let span = last.as_secs_f64();
        assert!(span > 30.0 && span < 75.0, "span = {span}");
    }

    #[test]
    fn bursty_produces_back_to_back_clusters() {
        let s = spec(ArrivalProcess::Bursty {
            bursts_per_sec: 0.2,
            burst_size: 5,
            intra_gap: SimDuration::from_millis(50),
        });
        let scripts = s.generate(3);
        let arrivals = open_arrivals(&scripts);
        assert_eq!(arrivals.len(), 100);
        // Inside a burst the gap is exactly 50 ms.
        let gap = arrivals[1].0.saturating_since(arrivals[0].0);
        assert_eq!(gap, SimDuration::from_millis(50));
    }

    #[test]
    fn closed_loop_splits_budget_across_sessions() {
        let s = spec(ArrivalProcess::ClosedLoop {
            sessions: 8,
            mean_think: SimDuration::from_secs(4),
        });
        let scripts = s.generate(11);
        assert_eq!(scripts.len(), 8);
        let total: usize = scripts.iter().map(|x| x.requests.len()).sum();
        assert_eq!(total, 100);
        // Every non-first request has a positive think delay.
        for script in &scripts {
            for r in &script.requests[1..] {
                assert!(r.delay > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            ArrivalProcess::ClosedLoop {
                sessions: 4,
                mean_think: SimDuration::from_secs(2),
            },
        ] {
            let s = spec(process);
            assert_eq!(s.generate(42), s.generate(42));
            assert_ne!(s.generate(42), s.generate(43));
        }
    }

    #[test]
    fn conversations_grow_and_share_prefixes() {
        let s = WorkloadSpec::chat(4, 40, SimDuration::from_secs(10), "qwen2.5-3b");
        let scripts = s.generate(13);
        assert_eq!(scripts.len(), 4);
        let mut followups = 0usize;
        for script in &scripts {
            let mut context = 0usize;
            for (i, r) in script.requests.iter().enumerate() {
                if i == 0 {
                    assert_eq!(r.shared_prefix_len, 0, "first turn shares nothing");
                }
                if r.shared_prefix_len > 0 {
                    followups += 1;
                    assert_eq!(
                        r.shared_prefix_len, context,
                        "a follow-up's shared prefix is exactly the prior context"
                    );
                    assert!(r.prompt_len > r.shared_prefix_len, "new tokens every turn");
                }
                context = r.prompt_len + r.output_len;
                assert!(context <= 2048, "conversations reset at the context cap");
            }
        }
        assert!(
            followups > 20,
            "most turns should be follow-ups: {followups}"
        );
    }

    #[test]
    fn conversation_generation_is_deterministic() {
        let s = WorkloadSpec::chat(3, 30, SimDuration::from_secs(5), "qwen2.5-3b");
        assert_eq!(s.generate(99), s.generate(99));
        assert_ne!(s.generate(99), s.generate(100));
    }

    #[test]
    fn independent_sessions_never_share_prefixes() {
        let s = spec(ArrivalProcess::ClosedLoop {
            sessions: 5,
            mean_think: SimDuration::from_secs(3),
        });
        for script in s.generate(21) {
            for r in &script.requests {
                assert_eq!(r.shared_prefix_len, 0);
            }
        }
    }

    #[test]
    fn mix_weights_bias_the_draw() {
        let s = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            requests: 300,
            models: vec!["m".into()],
            mix: vec![(Benchmark::UltraChat, 0.9), (Benchmark::DroidTask, 0.1)],
            style: SessionStyle::Independent,
        };
        let scripts = s.generate(5);
        let uc = scripts
            .iter()
            .filter(|x| x.requests[0].benchmark == Benchmark::UltraChat)
            .count();
        assert!(uc > 220, "uc = {uc}");
    }
}
