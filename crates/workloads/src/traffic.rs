//! Serving traffic generators.
//!
//! The paper evaluates TZ-LLM one inference at a time; the serving layer
//! (`tzllm::serving`) instead drives the device with a *stream* of requests.
//! This module turns the existing benchmark prompt distributions
//! ([`Benchmark`]) into arrival processes:
//!
//! * [`ArrivalProcess::Poisson`] — open-loop, exponentially distributed
//!   inter-arrival times (independent users hitting the device);
//! * [`ArrivalProcess::Bursty`] — open-loop, Poisson-spaced *bursts* of
//!   back-to-back requests (notification fan-outs, screen-on surges);
//! * [`ArrivalProcess::ClosedLoop`] — a fixed population of sessions, each
//!   submitting its next request one think-time after the previous response
//!   finished (interactive chat users).
//!
//! All randomness is drawn up-front from a [`DetRng`] seeded explicitly, so a
//! workload is fully described by `(spec, seed)`: generating it twice yields
//! byte-identical session scripts, which the serving layer's deterministic
//! replay test relies on.
//!
//! # Example
//!
//! ```
//! use workloads::{Benchmark, traffic::{ArrivalProcess, SessionStyle, WorkloadSpec}};
//!
//! let spec = WorkloadSpec {
//!     process: ArrivalProcess::Poisson { rate_per_sec: 0.5 },
//!     requests: 20,
//!     models: vec!["qwen2.5-3b".into()],
//!     mix: vec![(Benchmark::UltraChat, 0.7), (Benchmark::PersonaChat, 0.3)],
//!     style: SessionStyle::Independent,
//! };
//! let a = spec.generate(42);
//! let b = spec.generate(42);
//! assert_eq!(a, b); // same seed, same traffic
//! assert_eq!(a.iter().map(|s| s.requests.len()).sum::<usize>(), 20);
//! ```

use llm::PromptContent;
use sim_core::{DetRng, SimDuration, SimTime};

use crate::benchmarks::Benchmark;

/// How request arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_per_sec` requests per second.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// Open-loop bursts: burst *starts* are Poisson at `bursts_per_sec`, and
    /// each burst delivers `burst_size` requests spaced `intra_gap` apart.
    Bursty {
        /// Mean burst arrival rate in bursts per second.
        bursts_per_sec: f64,
        /// Requests per burst.
        burst_size: usize,
        /// Gap between consecutive requests inside one burst.
        intra_gap: SimDuration,
    },
    /// Closed-loop: `sessions` concurrent users, each waiting a think time
    /// (exponential with mean `mean_think`) after a response before sending
    /// the next request.
    ClosedLoop {
        /// Number of concurrent sessions.
        sessions: usize,
        /// Mean think time between a response and the next request.
        mean_think: SimDuration,
    },
    /// Open-loop Poisson arrivals at `rate_per_sec` whose rate is multiplied
    /// by `surge_x` inside `[spike_start, spike_start + spike_len)` — a
    /// notification storm landing on steady background traffic.  This is the
    /// overload shape the SLO burn-rate monitor exists to localise: the
    /// spike's windows should light up, the surrounding ones should not.
    PoissonSpike {
        /// Mean background arrival rate in requests per second.
        rate_per_sec: f64,
        /// Rate multiplier inside the spike window.
        surge_x: f64,
        /// When the surge begins.
        spike_start: SimDuration,
        /// How long the surge lasts.
        spike_len: SimDuration,
    },
}

/// How the requests of one multi-request session relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStyle {
    /// Every request is drawn independently (separate tasks per turn) —
    /// follow-up prompts share nothing with earlier context.
    Independent,
    /// A conversation: each follow-up prompt is the session's previous
    /// context (prompt + response) extended by a freshly drawn user turn, so
    /// prompts *grow* and each turn shares its prefix with the last.  When
    /// the context would exceed `max_context` tokens the conversation resets
    /// (a new chat starts; nothing is shared).
    Conversation {
        /// Context cap in tokens; conversations reset beyond it.
        max_context: usize,
    },
    /// An assistant fleet: every session's prompt opens with the *same*
    /// `system_prompt_len`-token system prompt (one shared template across
    /// the whole workload), followed by that session's own conversation.
    /// Within a session turns grow exactly like [`SessionStyle::Conversation`];
    /// *across* sessions the common head is identical content, which is the
    /// shape content-addressed KV-prefix sharing dedups.  Conversation resets
    /// re-open with the same system prompt.
    SharedSystemPrompt {
        /// Tokens of the workload-wide shared system prompt.
        system_prompt_len: usize,
        /// Context cap in tokens; conversations reset beyond it.
        max_context: usize,
    },
}

impl SessionStyle {
    /// Base rate, in permille, at which a small draft model's proposed token
    /// matches the target's choice for this style's text.  Agent-style
    /// independent turns (tool calls, UI scripts, structured output) are the
    /// most predictable and accept best; free-form conversation accepts
    /// worst; assistant fleets with a shared system prompt sit in between.
    pub fn accept_base_permille(&self) -> u16 {
        match self {
            SessionStyle::Independent => 870,
            SessionStyle::Conversation { .. } => 780,
            SessionStyle::SharedSystemPrompt { .. } => 820,
        }
    }

    /// Short tag naming the style, carried into telemetry span labels (the
    /// serving layer tags each request track `"req <id> <model> (<style>)"`).
    pub fn label(&self) -> &'static str {
        match self {
            SessionStyle::Independent => "independent",
            SessionStyle::Conversation { .. } => "conversation",
            SessionStyle::SharedSystemPrompt { .. } => "assistant",
        }
    }
}

/// A complete workload description: arrival process, request budget, and what
/// each request looks like (model, benchmark-derived prompt/output lengths).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Total number of requests across all sessions.
    pub requests: usize,
    /// Catalogue model names to draw from, uniformly. Must be non-empty.
    pub models: Vec<String>,
    /// Benchmark mix with relative weights. Must be non-empty; weights are
    /// normalised internally.
    pub mix: Vec<(Benchmark, f64)>,
    /// Whether multi-request sessions are independent tasks or growing
    /// conversations (only closed-loop sessions have several requests).
    pub style: SessionStyle,
}

/// One scripted request of a session: everything the serving layer needs to
/// know, decided ahead of time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedRequest {
    /// Delay before this request is issued: for the first request of a
    /// session, measured from simulation start; for subsequent requests,
    /// from the completion of the session's previous response (think time).
    pub delay: SimDuration,
    /// Catalogue model name this request targets.
    pub model: String,
    /// Benchmark the prompt was drawn from.
    pub benchmark: Benchmark,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Leading prompt tokens identical to the session's previous context
    /// (prompt + response of the last turn); zero for independent requests
    /// and for the first turn of a conversation.
    pub shared_prefix_len: usize,
    /// Leading prompt tokens drawn from a *workload-wide* shared stream (the
    /// system prompt of [`SessionStyle::SharedSystemPrompt`]); zero
    /// otherwise.  Unlike `shared_prefix_len` this declares content other
    /// sessions also start with, so a session's very first turn can hit
    /// KV state another session produced.
    pub system_prefix_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
    /// The content identity of the prompt's token stream (see
    /// [`llm::PromptContent`]): equal prefixes here mean byte-equal KV
    /// prefixes, which is what content-addressed sharing keys on.
    pub content: PromptContent,
    /// Content seed of the response this request will generate; the
    /// follow-up turn's context is `content` extended by
    /// `(output_seed, output_len)` and then the next user utterance.
    pub output_seed: u64,
    /// Per-mille probability that a speculative-decoding draft token for
    /// this request's response is accepted by the target: keyed on the
    /// session style's text shape (see
    /// [`SessionStyle::accept_base_permille`]) with per-request jitter.
    /// Stored in permille so the request stays `Eq`.
    pub accept_permille: u16,
    /// Seed of the request's private acceptance stream: the serving layer
    /// draws its leading-accept trials from `DetRng::new(accept_seed)`, so
    /// accepted-token traces are reproducible from `(spec, seed)` alone.
    pub accept_seed: u64,
    /// The session style's telemetry tag (see [`SessionStyle::label`]):
    /// carried into span labels, never branched on.
    pub style_label: &'static str,
}

/// The scripted lifetime of one session.
///
/// Open-loop processes produce one single-request session per arrival (each
/// request is an independent user); the closed-loop process produces
/// `sessions` scripts with many requests each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript {
    /// Session identifier, dense from zero.
    pub session: u64,
    /// The session's requests in order.
    pub requests: Vec<ScriptedRequest>,
}

impl WorkloadSpec {
    /// Generates the deterministic session scripts for this workload.
    ///
    /// # Panics
    /// Panics if `models` or `mix` is empty, or if a rate is non-positive.
    pub fn generate(&self, seed: u64) -> Vec<SessionScript> {
        assert!(!self.models.is_empty(), "workload needs at least one model");
        assert!(!self.mix.is_empty(), "workload needs a benchmark mix");
        // One shared system-prompt stream for the whole workload: every
        // session (and every conversation reset) opens with the same content.
        let system_seed = llm::derive_seed(seed, 0x5357);
        let mut rng = DetRng::new(seed);
        let mut scripts = match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
                let mut at = 0.0f64;
                (0..self.requests)
                    .map(|i| {
                        at += rng.gen_exp(1.0 / rate_per_sec);
                        let mut req = self.draw_request(&mut rng);
                        self.apply_shared_system(&mut req, system_seed);
                        req.delay = SimDuration::from_secs_f64(at);
                        SessionScript {
                            session: i as u64,
                            requests: vec![req],
                        }
                    })
                    .collect()
            }
            ArrivalProcess::PoissonSpike {
                rate_per_sec,
                surge_x,
                spike_start,
                spike_len,
            } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
                assert!(surge_x > 0.0, "surge multiplier must be positive");
                let spike = (
                    spike_start.as_secs_f64(),
                    (spike_start + spike_len).as_secs_f64(),
                );
                let mut at = 0.0f64;
                (0..self.requests)
                    .map(|i| {
                        // Piecewise-constant rate: the gap after an arrival is
                        // drawn at the rate in force where that arrival sits.
                        let rate = if at >= spike.0 && at < spike.1 {
                            rate_per_sec * surge_x
                        } else {
                            rate_per_sec
                        };
                        at += rng.gen_exp(1.0 / rate);
                        let mut req = self.draw_request(&mut rng);
                        self.apply_shared_system(&mut req, system_seed);
                        req.delay = SimDuration::from_secs_f64(at);
                        SessionScript {
                            session: i as u64,
                            requests: vec![req],
                        }
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                bursts_per_sec,
                burst_size,
                intra_gap,
            } => {
                assert!(bursts_per_sec > 0.0, "burst rate must be positive");
                assert!(burst_size > 0, "bursts must contain requests");
                let mut scripts = Vec::with_capacity(self.requests);
                let mut burst_start = 0.0f64;
                while scripts.len() < self.requests {
                    burst_start += rng.gen_exp(1.0 / bursts_per_sec);
                    for k in 0..burst_size {
                        if scripts.len() >= self.requests {
                            break;
                        }
                        let mut req = self.draw_request(&mut rng);
                        self.apply_shared_system(&mut req, system_seed);
                        req.delay = SimDuration::from_secs_f64(burst_start) + intra_gap * k as u64;
                        scripts.push(SessionScript {
                            session: scripts.len() as u64,
                            requests: vec![req],
                        });
                    }
                }
                scripts
            }
            ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            } => {
                assert!(sessions > 0, "closed loop needs at least one session");
                let per_session = self.requests.div_ceil(sessions);
                (0..sessions)
                    .map(|s| {
                        let budget = per_session.min(self.requests.saturating_sub(s * per_session));
                        // Running conversation context (previous prompt +
                        // response) for the conversational styles, as a token
                        // count and as content identity.
                        let mut context = 0usize;
                        let mut context_content = PromptContent::empty();
                        let requests = (0..budget)
                            .map(|i| {
                                let mut req = self.draw_request(&mut rng);
                                if let SessionStyle::Conversation { max_context }
                                | SessionStyle::SharedSystemPrompt { max_context, .. } =
                                    self.style
                                {
                                    // The freshly drawn prompt is this turn's
                                    // *user utterance*; the full prompt is the
                                    // conversation so far plus the utterance.
                                    let utterance_len = req.prompt_len;
                                    let utterance_seed = req.content.segments()[0].seed;
                                    let grown = context + utterance_len;
                                    if i > 0 && grown + req.output_len <= max_context {
                                        req.shared_prefix_len = context;
                                        req.prompt_len = grown;
                                        req.content =
                                            context_content.extended(utterance_seed, utterance_len);
                                        if let SessionStyle::SharedSystemPrompt {
                                            system_prompt_len,
                                            ..
                                        } = self.style
                                        {
                                            req.system_prefix_len =
                                                system_prompt_len.min(req.prompt_len);
                                        }
                                    } else {
                                        // A fresh (or reset) chat: the prompt
                                        // is the bare utterance — re-opened
                                        // with the workload-wide system prompt
                                        // when the style shares one — and
                                        // nothing of the *own* context is
                                        // shared.
                                        self.apply_shared_system(&mut req, system_seed);
                                    }
                                    context = req.prompt_len + req.output_len;
                                    context_content =
                                        req.content.extended(req.output_seed, req.output_len);
                                }
                                req.delay = if i == 0 {
                                    // Stagger session starts a little so the
                                    // opening stampede is not a single instant.
                                    SimDuration::from_secs_f64(
                                        rng.gen_exp(mean_think.as_secs_f64().max(1e-9) / 4.0),
                                    )
                                } else {
                                    SimDuration::from_secs_f64(
                                        rng.gen_exp(mean_think.as_secs_f64().max(1e-9)),
                                    )
                                };
                                req
                            })
                            .collect();
                        SessionScript {
                            session: s as u64,
                            requests,
                        }
                    })
                    .collect()
            }
        };
        self.assign_acceptance(&mut scripts, seed);
        scripts
    }

    /// Fills in the per-request draft-acceptance model: the style's base
    /// rate plus ±30 ‰ of per-request jitter, and a private
    /// acceptance-stream seed.  Drawn from a *derived* stream
    /// (`derive_seed(seed, 0xACCE)`) in a separate pass over the finished
    /// scripts, so adding speculative decoding perturbed no draw of the
    /// main generation stream — pre-speculation workloads replay
    /// byte-identically.
    fn assign_acceptance(&self, scripts: &mut [SessionScript], seed: u64) {
        let base = self.style.accept_base_permille() as i64;
        let mut rng = DetRng::new(llm::derive_seed(seed, 0xACCE));
        for script in scripts.iter_mut() {
            for req in &mut script.requests {
                let jitter = rng.gen_range(0, 61) as i64 - 30;
                req.accept_permille = (base + jitter).clamp(500, 980) as u16;
                req.accept_seed = rng.next_u64();
            }
        }
    }

    /// Draws one request (model, benchmark, prompt/output lengths, content
    /// seeds); the caller fills in `delay` and any conversational context.
    fn draw_request(&self, rng: &mut DetRng) -> ScriptedRequest {
        let model = rng.choose(&self.models).clone();
        let benchmark = self.pick_benchmark(rng);
        let prompt_len = benchmark.sample_prompt_lengths(1, rng)[0];
        let content_seed = rng.next_u64();
        let output_seed = rng.next_u64();
        ScriptedRequest {
            delay: SimDuration::ZERO,
            model,
            benchmark,
            prompt_len,
            shared_prefix_len: 0,
            system_prefix_len: 0,
            output_len: benchmark.output_len(),
            content: PromptContent::from_seed(content_seed, prompt_len),
            output_seed,
            accept_permille: 0,
            accept_seed: 0,
            style_label: self.style.label(),
        }
    }

    /// Re-opens `req` (a bare user utterance) with the workload-wide shared
    /// system prompt when the style carries one; a no-op otherwise.
    fn apply_shared_system(&self, req: &mut ScriptedRequest, system_seed: u64) {
        if let SessionStyle::SharedSystemPrompt {
            system_prompt_len, ..
        } = self.style
        {
            let utterance_len = req.prompt_len;
            let utterance_seed = req.content.segments()[0].seed;
            req.prompt_len = system_prompt_len + utterance_len;
            req.system_prefix_len = system_prompt_len;
            req.content = PromptContent::from_seed(system_seed, system_prompt_len)
                .extended(utterance_seed, utterance_len);
        }
    }

    fn pick_benchmark(&self, rng: &mut DetRng) -> Benchmark {
        let total: f64 = self.mix.iter().map(|&(_, w)| w.max(0.0)).sum();
        let mut draw = rng.next_f64() * total;
        for &(b, w) in &self.mix {
            draw -= w.max(0.0);
            if draw <= 0.0 {
                return b;
            }
        }
        self.mix.last().expect("mix is non-empty").0
    }

    /// Partitions this fleet-wide workload into `shards` per-device-shard
    /// sub-workloads.
    ///
    /// The request budget (and, for closed-loop traffic, the session
    /// population) is split as evenly as possible with the remainder going
    /// to the lowest shard indices; open-loop rates are divided by the
    /// shard count so each shard models its proportional slice of the
    /// fleet's traffic and all shards span a comparable horizon.  A 1-shard
    /// partition is exactly `self`, so shard 0 of a 1-shard fleet replays
    /// the unsharded workload bit-for-bit (paired with
    /// [`sim_core::shard_seed`]'s shard-0 identity).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn partition(&self, shards: usize) -> Vec<WorkloadSpec> {
        assert!(shards > 0, "a fleet needs at least one shard");
        let split =
            |total: usize, shard: usize| total / shards + usize::from(shard < total % shards);
        (0..shards)
            .map(|shard| {
                let process = match self.process {
                    ArrivalProcess::Poisson { rate_per_sec } => ArrivalProcess::Poisson {
                        rate_per_sec: rate_per_sec / shards as f64,
                    },
                    ArrivalProcess::PoissonSpike {
                        rate_per_sec,
                        surge_x,
                        spike_start,
                        spike_len,
                    } => ArrivalProcess::PoissonSpike {
                        rate_per_sec: rate_per_sec / shards as f64,
                        // The surge is a *multiplier*, and the spike window is
                        // wall-clock: every shard sees the same storm at the
                        // same simulated time, scaled to its traffic share.
                        surge_x,
                        spike_start,
                        spike_len,
                    },
                    ArrivalProcess::Bursty {
                        bursts_per_sec,
                        burst_size,
                        intra_gap,
                    } => ArrivalProcess::Bursty {
                        bursts_per_sec: bursts_per_sec / shards as f64,
                        burst_size,
                        intra_gap,
                    },
                    ArrivalProcess::ClosedLoop {
                        sessions,
                        mean_think,
                    } => ArrivalProcess::ClosedLoop {
                        // Never partition a shard down to zero sessions:
                        // `generate` needs a population even when the
                        // shard's request budget rounded to nothing.
                        sessions: split(sessions, shard).max(1),
                        mean_think,
                    },
                };
                WorkloadSpec {
                    process,
                    requests: split(self.requests, shard),
                    ..self.clone()
                }
            })
            .collect()
    }

    /// An equal-weight UltraChat/PersonaChat/DroidTask mix over one model —
    /// the default fleet workload of the serving benchmarks.
    pub fn standard(process: ArrivalProcess, requests: usize, model: &str) -> WorkloadSpec {
        WorkloadSpec {
            process,
            requests,
            models: vec![model.to_string()],
            mix: Benchmark::all().iter().map(|&b| (b, 1.0)).collect(),
            style: SessionStyle::Independent,
        }
    }

    /// The standard benchmark mix over *several* models drawn uniformly per
    /// request.  Alternating models keeps every dispatch's working set
    /// partially evicted, which makes this the cold-heavy traffic shape the
    /// restore-ahead benchmarks and regression tests sweep.
    pub fn standard_multi(
        process: ArrivalProcess,
        requests: usize,
        models: &[&str],
    ) -> WorkloadSpec {
        WorkloadSpec {
            process,
            requests,
            models: models.iter().map(|m| m.to_string()).collect(),
            mix: Benchmark::all().iter().map(|&b| (b, 1.0)).collect(),
            style: SessionStyle::Independent,
        }
    }

    /// The chat-heavy workload: `sessions` closed-loop users holding growing
    /// UltraChat conversations on one model — each follow-up turn's prompt
    /// extends the previous context, which is exactly the shape the secure
    /// KV-cache manager's prefix reuse accelerates.
    pub fn chat(
        sessions: usize,
        requests: usize,
        mean_think: SimDuration,
        model: &str,
    ) -> WorkloadSpec {
        Self::chat_with_context(sessions, requests, mean_think, model, 2048)
    }

    /// [`WorkloadSpec::chat`] with an explicit context cap: deeper
    /// conversations retain more KV per session, which is how the
    /// spill-quantization benchmarks drive a fixed normal-world spill budget
    /// into saturation.
    pub fn chat_with_context(
        sessions: usize,
        requests: usize,
        mean_think: SimDuration,
        model: &str,
        max_context: usize,
    ) -> WorkloadSpec {
        WorkloadSpec {
            process: ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            },
            requests,
            models: vec![model.to_string()],
            mix: vec![(Benchmark::UltraChat, 1.0)],
            style: SessionStyle::Conversation { max_context },
        }
    }

    /// The assistant-fleet workload: `sessions` closed-loop users of one
    /// assistant product, every conversation opening with the same
    /// `system_prompt_len`-token system prompt before the user's own turns —
    /// the shape content-addressed cross-session KV-prefix sharing dedups
    /// (all sessions store and prefill the common head once).
    pub fn assistant(
        sessions: usize,
        requests: usize,
        mean_think: SimDuration,
        system_prompt_len: usize,
        model: &str,
    ) -> WorkloadSpec {
        WorkloadSpec {
            process: ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            },
            requests,
            models: vec![model.to_string()],
            mix: vec![(Benchmark::UltraChat, 1.0)],
            style: SessionStyle::SharedSystemPrompt {
                system_prompt_len,
                max_context: 4096,
            },
        }
    }

    /// The agent-burst workload: many concurrent closed-loop sessions firing
    /// mostly short-prompt/long-decode turns (UltraChat) with an occasional
    /// long DroidTask prefill mixed in — many decodes are live when a long
    /// prefill lands, which is exactly the interleaving chunked prefill must
    /// survive without starving the decode batch.
    pub fn agent_burst(
        sessions: usize,
        requests: usize,
        mean_think: SimDuration,
        model: &str,
    ) -> WorkloadSpec {
        WorkloadSpec {
            process: ArrivalProcess::ClosedLoop {
                sessions,
                mean_think,
            },
            requests,
            models: vec![model.to_string()],
            mix: vec![(Benchmark::UltraChat, 0.85), (Benchmark::DroidTask, 0.15)],
            style: SessionStyle::Independent,
        }
    }
}

/// Flattens open-loop scripts into `(arrival, request)` pairs sorted by
/// arrival time — convenient for tests and for plotting arrival traces.
/// Closed-loop sessions only have a defined arrival for their *first*
/// request (later arrivals depend on response times), so those are skipped
/// beyond the first.
pub fn open_arrivals(scripts: &[SessionScript]) -> Vec<(SimTime, &ScriptedRequest)> {
    let mut out: Vec<(SimTime, &ScriptedRequest)> = scripts
        .iter()
        .filter_map(|s| s.requests.first().map(|r| (SimTime::ZERO + r.delay, r)))
        .collect();
    out.sort_by_key(|&(t, _)| t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(process: ArrivalProcess) -> WorkloadSpec {
        WorkloadSpec::standard(process, 100, "qwen2.5-3b")
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let s = spec(ArrivalProcess::Poisson { rate_per_sec: 2.0 });
        let scripts = s.generate(7);
        assert_eq!(scripts.len(), 100);
        let last = open_arrivals(&scripts).last().unwrap().0;
        // 100 requests at 2 req/s should span ~50 s.
        let span = last.as_secs_f64();
        assert!(span > 30.0 && span < 75.0, "span = {span}");
    }

    #[test]
    fn poisson_spike_concentrates_arrivals_in_the_surge_window() {
        let s = WorkloadSpec::standard(
            ArrivalProcess::PoissonSpike {
                rate_per_sec: 0.5,
                surge_x: 10.0,
                spike_start: SimDuration::from_secs(60),
                spike_len: SimDuration::from_secs(30),
            },
            200,
            "qwen2.5-3b",
        );
        let scripts = s.generate(17);
        assert_eq!(scripts.len(), 200);
        let arrivals = open_arrivals(&scripts);
        let in_spike = arrivals
            .iter()
            .filter(|(t, _)| {
                let s = t.as_secs_f64();
                (60.0..90.0).contains(&s)
            })
            .count();
        // 30 s of 5 rps surge ≈ 150 arrivals vs 0.5 rps background: the
        // spike window must dominate the trace.
        assert!(
            in_spike > arrivals.len() / 2,
            "{in_spike} of {} arrivals in the surge window",
            arrivals.len()
        );
        assert_eq!(s.generate(17), s.generate(17));
    }

    #[test]
    fn bursty_produces_back_to_back_clusters() {
        let s = spec(ArrivalProcess::Bursty {
            bursts_per_sec: 0.2,
            burst_size: 5,
            intra_gap: SimDuration::from_millis(50),
        });
        let scripts = s.generate(3);
        let arrivals = open_arrivals(&scripts);
        assert_eq!(arrivals.len(), 100);
        // Inside a burst the gap is exactly 50 ms.
        let gap = arrivals[1].0.saturating_since(arrivals[0].0);
        assert_eq!(gap, SimDuration::from_millis(50));
    }

    #[test]
    fn closed_loop_splits_budget_across_sessions() {
        let s = spec(ArrivalProcess::ClosedLoop {
            sessions: 8,
            mean_think: SimDuration::from_secs(4),
        });
        let scripts = s.generate(11);
        assert_eq!(scripts.len(), 8);
        let total: usize = scripts.iter().map(|x| x.requests.len()).sum();
        assert_eq!(total, 100);
        // Every non-first request has a positive think delay.
        for script in &scripts {
            for r in &script.requests[1..] {
                assert!(r.delay > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            ArrivalProcess::ClosedLoop {
                sessions: 4,
                mean_think: SimDuration::from_secs(2),
            },
        ] {
            let s = spec(process);
            assert_eq!(s.generate(42), s.generate(42));
            assert_ne!(s.generate(42), s.generate(43));
        }
    }

    #[test]
    fn agent_burst_mixes_short_decodes_with_occasional_long_prefills() {
        let s = WorkloadSpec::agent_burst(12, 200, SimDuration::from_secs(2), "qwen2.5-3b");
        let scripts = s.generate(21);
        assert_eq!(scripts.len(), 12);
        let requests: Vec<_> = scripts.iter().flat_map(|x| x.requests.iter()).collect();
        assert_eq!(requests.len(), 200);
        // UltraChat turns dominate (short prompts, long decodes)...
        let short = requests.iter().filter(|r| r.prompt_len < 256).count();
        assert!(short > requests.len() / 2, "short turns must dominate");
        // ...but long DroidTask prefills really occur, and their decodes are
        // short (prefill-heavy — the shape that used to preempt the batch).
        let long: Vec<_> = requests.iter().filter(|r| r.prompt_len >= 256).collect();
        assert!(!long.is_empty(), "some long prefills must occur");
        assert!(long.iter().all(|r| r.output_len < 128));
    }

    #[test]
    fn conversations_grow_and_share_prefixes() {
        let s = WorkloadSpec::chat(4, 40, SimDuration::from_secs(10), "qwen2.5-3b");
        let scripts = s.generate(13);
        assert_eq!(scripts.len(), 4);
        let mut followups = 0usize;
        for script in &scripts {
            let mut context = 0usize;
            for (i, r) in script.requests.iter().enumerate() {
                if i == 0 {
                    assert_eq!(r.shared_prefix_len, 0, "first turn shares nothing");
                }
                if r.shared_prefix_len > 0 {
                    followups += 1;
                    assert_eq!(
                        r.shared_prefix_len, context,
                        "a follow-up's shared prefix is exactly the prior context"
                    );
                    assert!(r.prompt_len > r.shared_prefix_len, "new tokens every turn");
                }
                context = r.prompt_len + r.output_len;
                assert!(context <= 2048, "conversations reset at the context cap");
            }
        }
        assert!(
            followups > 20,
            "most turns should be follow-ups: {followups}"
        );
    }

    #[test]
    fn conversation_generation_is_deterministic() {
        let s = WorkloadSpec::chat(3, 30, SimDuration::from_secs(5), "qwen2.5-3b");
        assert_eq!(s.generate(99), s.generate(99));
        assert_ne!(s.generate(99), s.generate(100));
    }

    #[test]
    fn shared_system_prompt_is_identical_across_sessions() {
        let s = WorkloadSpec::assistant(4, 24, SimDuration::from_secs(10), 256, "qwen2.5-3b");
        let scripts = s.generate(31);
        assert_eq!(scripts.len(), 4);
        // Every session's opening turn declares the shared head and carries
        // byte-identical content for it (equal page-hash chains).
        let head_keys: Vec<Vec<u64>> = scripts
            .iter()
            .map(|script| {
                let first = &script.requests[0];
                assert_eq!(first.system_prefix_len, 256);
                assert_eq!(first.shared_prefix_len, 0, "own context shares nothing yet");
                assert!(first.prompt_len > 256, "system prompt plus an utterance");
                first.content.page_keys(64)[..4].to_vec()
            })
            .collect();
        for keys in &head_keys[1..] {
            assert_eq!(keys, &head_keys[0], "all sessions share the same head");
        }
        // Follow-up turns grow like conversations and keep declaring the head.
        for script in &scripts {
            let mut context = 0usize;
            for (i, r) in script.requests.iter().enumerate() {
                if i > 0 && r.shared_prefix_len > 0 {
                    assert_eq!(r.shared_prefix_len, context);
                    assert_eq!(r.system_prefix_len, 256);
                    assert_eq!(
                        r.content.page_keys(64)[..4],
                        head_keys[0][..],
                        "the grown prompt still opens with the shared head"
                    );
                }
                context = r.prompt_len + r.output_len;
            }
        }
    }

    #[test]
    fn conversation_content_extends_the_previous_context() {
        let s = WorkloadSpec::chat(2, 12, SimDuration::from_secs(5), "qwen2.5-3b");
        for script in s.generate(77) {
            let mut prev: Option<(&ScriptedRequest, Vec<u64>)> = None;
            for r in &script.requests {
                assert_eq!(r.content.len(), r.prompt_len, "content covers the prompt");
                if let Some((p, prev_keys)) = prev {
                    if r.shared_prefix_len > 0 {
                        // The follow-up's content extends the previous full
                        // context (prompt + response): the page chains agree
                        // over every whole page of the prior context.
                        let full = p.content.extended(p.output_seed, p.output_len);
                        assert_eq!(r.shared_prefix_len, full.len());
                        let keys = r.content.page_keys(32);
                        assert_eq!(prev_keys[..], keys[..prev_keys.len()]);
                    }
                }
                let full = r.content.extended(r.output_seed, r.output_len);
                prev = Some((r, full.page_keys(32)));
            }
        }
    }

    #[test]
    fn independent_sessions_never_share_prefixes() {
        let s = spec(ArrivalProcess::ClosedLoop {
            sessions: 5,
            mean_think: SimDuration::from_secs(3),
        });
        for script in s.generate(21) {
            for r in &script.requests {
                assert_eq!(r.shared_prefix_len, 0);
            }
        }
    }

    #[test]
    fn acceptance_rates_are_keyed_on_session_style() {
        let agent = WorkloadSpec::agent_burst(6, 60, SimDuration::from_secs(1), "qwen2.5-3b");
        let chat = WorkloadSpec::chat(6, 60, SimDuration::from_secs(1), "qwen2.5-3b");
        let assistant =
            WorkloadSpec::assistant(6, 60, SimDuration::from_secs(1), 256, "qwen2.5-3b");
        let mean = |spec: &WorkloadSpec| -> f64 {
            let scripts = spec.generate(9);
            let reqs: Vec<_> = scripts.iter().flat_map(|s| s.requests.iter()).collect();
            reqs.iter().map(|r| r.accept_permille as f64).sum::<f64>() / reqs.len() as f64
        };
        let (a, c, s) = (mean(&agent), mean(&chat), mean(&assistant));
        // Styles separate: agent bursts accept best, chat worst; jitter is
        // only ±30 ‰ so the ordering is robust.
        assert!(a > s && s > c, "agent {a} vs assistant {s} vs chat {c}");
        for spec in [&agent, &chat, &assistant] {
            let base = spec.style.accept_base_permille() as i64;
            for script in spec.generate(9) {
                for r in &script.requests {
                    assert!((r.accept_permille as i64 - base).abs() <= 30);
                    assert_ne!(r.accept_seed, 0, "every request gets a private stream");
                }
            }
        }
    }

    #[test]
    fn acceptance_assignment_is_deterministic_and_decoupled() {
        let s = WorkloadSpec::agent_burst(4, 40, SimDuration::from_secs(2), "qwen2.5-3b");
        assert_eq!(s.generate(42), s.generate(42));
        // Different seeds re-jitter the acceptance fields too.
        let a = s.generate(42);
        let b = s.generate(43);
        let seeds = |scripts: &[SessionScript]| -> Vec<u64> {
            scripts
                .iter()
                .flat_map(|x| x.requests.iter().map(|r| r.accept_seed))
                .collect()
        };
        assert_ne!(seeds(&a), seeds(&b));
    }

    #[test]
    fn partition_conserves_the_request_budget() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 2.0 },
            ArrivalProcess::Bursty {
                bursts_per_sec: 0.5,
                burst_size: 4,
                intra_gap: SimDuration::from_millis(20),
            },
            ArrivalProcess::ClosedLoop {
                sessions: 10,
                mean_think: SimDuration::from_secs(3),
            },
        ] {
            let s = WorkloadSpec::standard(process, 103, "qwen2.5-3b");
            for shards in [1usize, 2, 3, 8, 16] {
                let parts = s.partition(shards);
                assert_eq!(parts.len(), shards);
                let total: usize = parts.iter().map(|p| p.requests).sum();
                assert_eq!(total, 103, "{shards} shards must conserve requests");
                // Even split: no shard more than one request above another.
                let max = parts.iter().map(|p| p.requests).max().unwrap();
                let min = parts.iter().map(|p| p.requests).min().unwrap();
                assert!(max - min <= 1);
                // Every shard really generates its budget.
                let generated: usize = parts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        p.generate(sim_core::shard_seed(9, i as u64))
                            .iter()
                            .map(|script| script.requests.len())
                            .sum::<usize>()
                    })
                    .sum();
                assert_eq!(generated, 103);
            }
        }
    }

    #[test]
    fn one_shard_partition_is_the_unsharded_spec() {
        let s = WorkloadSpec::chat(6, 60, SimDuration::from_secs(4), "qwen2.5-3b");
        let parts = s.partition(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], s);
        assert_eq!(parts[0].generate(77), s.generate(77));
    }

    #[test]
    fn partitioned_closed_loop_keeps_every_shard_populated() {
        let s = WorkloadSpec::chat(3, 30, SimDuration::from_secs(4), "qwen2.5-3b");
        // More shards than sessions: low shards carry the load, the rest
        // still satisfy generate()'s non-empty-population requirement.
        for (i, p) in s.partition(8).iter().enumerate() {
            if let ArrivalProcess::ClosedLoop { sessions, .. } = p.process {
                assert!(sessions >= 1, "shard {i} lost its population");
            } else {
                panic!("partition must preserve the process shape");
            }
            let _ = p.generate(1);
        }
    }

    #[test]
    fn mix_weights_bias_the_draw() {
        let s = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            requests: 300,
            models: vec!["m".into()],
            mix: vec![(Benchmark::UltraChat, 0.9), (Benchmark::DroidTask, 0.1)],
            style: SessionStyle::Independent,
        };
        let scripts = s.generate(5);
        let uc = scripts
            .iter()
            .filter(|x| x.requests[0].benchmark == Benchmark::UltraChat)
            .count();
        assert!(uc > 220, "uc = {uc}");
    }
}
