//! Deterministic random number generation.
//!
//! Workload generators (prompt lengths, REE NPU job arrivals, stress-ng
//! touch patterns) need randomness, but every experiment must be exactly
//! reproducible.  [`DetRng`] is a small splitmix64/xoshiro256**-based PRNG
//! seeded explicitly; it also supports deriving independent child streams so
//! that adding a new consumer does not perturb existing sequences.

/// A deterministic, seedable PRNG (xoshiro256** core, splitmix64 seeding).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// Splits a fleet-level seed into the seed of one device shard.
///
/// Shard seeds feed independent [`DetRng`] streams for per-shard workload
/// generation and serving, so a sharded fleet run is reproducible from
/// `(seed, shard_count)` alone, regardless of how many worker threads
/// execute the shards.  Two properties the fleet runner relies on:
///
/// * **shard 0 is the identity**: `shard_seed(seed, 0) == seed`, so shard 0
///   of a 1-shard fleet replays the unsharded serial trace bit-for-bit;
/// * **siblings decorrelate**: non-zero shards perturb the seed by a
///   golden-ratio multiple before it reaches [`DetRng::new`]'s splitmix64
///   expansion, so sibling streams never track each other (the property
///   test in this module draws 10⁶ values per stream to prove it).
pub fn shard_seed(seed: u64, shard: u64) -> u64 {
    seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Child streams with different identifiers produce uncorrelated
    /// sequences; the parent stream is not advanced.
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut s = self.state[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi, got {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64 requires lo < hi");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Approximately normally distributed value (Irwin–Hall sum of 12)
    /// with the given mean and standard deviation.
    pub fn gen_normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * stddev
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes such as REE NPU job submission).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.gen_range(0, slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_independent_of_parent_use() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(3);
        let mut parent2 = DetRng::new(7);
        let _ = parent2.next_u64();
        let mut c2 = parent2.derive(3);
        // Deriving does not depend on how much the parent has been used,
        // because derive() only reads the seeded state in this design.
        // (parent2 was advanced but derive uses state[0] which changed, so
        // streams may differ; the property we need is determinism from the
        // same parent value.)
        let mut c3 = parent.derive(3);
        assert_eq!(c1.next_u64(), c3.next_u64());
        let _ = c2.next_u64();
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DetRng::new(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_and_exp_have_sane_moments() {
        let mut rng = DetRng::new(123);
        let n = 20_000;
        let mean_n: f64 = (0..n).map(|_| rng.gen_normal(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean_n - 5.0).abs() < 0.1);
        let mean_e: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean_e - 3.0).abs() < 0.15);
    }

    #[test]
    fn shard_zero_reproduces_the_unsharded_stream_exactly() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(shard_seed(seed, 0), seed, "shard 0 must be the identity");
            let mut unsharded = DetRng::new(seed);
            let mut shard0 = DetRng::new(shard_seed(seed, 0));
            for _ in 0..10_000 {
                assert_eq!(unsharded.next_u64(), shard0.next_u64());
            }
        }
    }

    #[test]
    fn sibling_shard_streams_never_collide_over_a_million_draws() {
        // Positional collisions between independent u64 streams are ~2⁻⁶⁴
        // per draw; any observed collision over 10⁶ draws means the shard
        // seeds correlate through splitmix64 — exactly the failure mode the
        // golden-ratio perturbation exists to rule out.
        const DRAWS: usize = 1_000_000;
        let seed = 0x000F_1EE7_u64;
        let shards = [0u64, 1, 2, 3, 7];
        let streams: Vec<Vec<u64>> = shards
            .iter()
            .map(|&s| {
                let mut rng = DetRng::new(shard_seed(seed, s));
                (0..DRAWS).map(|_| rng.next_u64()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                let collisions = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    collisions, 0,
                    "shards {} and {} collided {collisions} times",
                    shards[a], shards[b]
                );
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
