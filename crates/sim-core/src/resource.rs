//! Hardware resources shared by the pipeline and concurrency simulations.
//!
//! The TZ-LLM pipeline schedules operators onto three kinds of hardware: a
//! pool of CPU cores, the NPU, and the flash I/O engine (§4.1 of the paper).
//! [`ServerPool`] models a pool of identical servers whose availability is
//! tracked as a "free-at" instant per server; the pipeline simulator asks the
//! pool when the next server becomes free and reserves busy intervals on it.

use crate::time::{SimDuration, SimTime};

/// A reservation returned by [`ServerPool::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Index of the server inside the pool that runs the work.
    pub server: usize,
    /// When the work actually starts (>= requested time).
    pub start: SimTime,
    /// When the work completes.
    pub end: SimTime,
}

/// A pool of `n` identical servers (CPU cores, NPU cores, I/O channels).
#[derive(Debug, Clone)]
pub struct ServerPool {
    name: String,
    free_at: Vec<SimTime>,
    busy_time: SimDuration,
}

impl ServerPool {
    /// Creates a pool with `servers` servers, all free at time zero.
    ///
    /// # Panics
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        ServerPool {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            busy_time: SimDuration::ZERO,
        }
    }

    /// The pool's human-readable name (used in traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the pool has no servers (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// The earliest instant at which at least one server is free, together
    /// with that server's index.
    pub fn earliest_free(&self) -> (usize, SimTime) {
        let mut best = (0, self.free_at[0]);
        for (i, &t) in self.free_at.iter().enumerate().skip(1) {
            if t < best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// The instant at which work requested at `at` could start.
    pub fn next_start(&self, at: SimTime) -> SimTime {
        let (_, free) = self.earliest_free();
        free.max(at)
    }

    /// Whether any server is idle at instant `at`.
    pub fn has_idle(&self, at: SimTime) -> bool {
        self.free_at.iter().any(|&t| t <= at)
    }

    /// Number of servers idle at instant `at`.
    pub fn idle_count(&self, at: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t <= at).count()
    }

    /// Reserves the earliest-available server for `duration`, starting no
    /// earlier than `at`, and returns the reservation.
    pub fn acquire(&mut self, at: SimTime, duration: SimDuration) -> Reservation {
        let (server, free) = self.earliest_free();
        let start = free.max(at);
        let end = start + duration;
        self.free_at[server] = end;
        self.busy_time += duration;
        Reservation { server, start, end }
    }

    /// Reserves a specific server for `[start, start + duration)`.
    ///
    /// The caller is responsible for choosing `start` no earlier than the
    /// server's current free instant; this is checked and panics otherwise
    /// because an overlapping reservation indicates a scheduler bug.
    pub fn acquire_on(
        &mut self,
        server: usize,
        start: SimTime,
        duration: SimDuration,
    ) -> Reservation {
        assert!(
            self.free_at[server] <= start,
            "server {server} of pool {} is busy until {} but reservation starts at {}",
            self.name,
            self.free_at[server],
            start
        );
        let end = start + duration;
        self.free_at[server] = end;
        self.busy_time += duration;
        Reservation { server, start, end }
    }

    /// Total busy time accumulated over all servers (for utilisation stats).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Utilisation of the pool over the horizon `[0, until)` in `[0, 1]`.
    pub fn utilisation(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        let capacity = until.as_secs_f64() * self.len() as f64;
        (self.busy_time.as_secs_f64() / capacity).min(1.0)
    }

    /// The instant at which every server has drained its queued work.
    pub fn all_free_at(&self) -> SimTime {
        self.free_at
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Resets all servers to free-at-zero, keeping the pool size.
    pub fn reset(&mut self) {
        for t in &mut self.free_at {
            *t = SimTime::ZERO;
        }
        self.busy_time = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_idle_server() {
        let mut pool = ServerPool::new("cpu", 2);
        let a = pool.acquire(SimTime::ZERO, SimDuration::from_millis(10));
        let b = pool.acquire(SimTime::ZERO, SimDuration::from_millis(4));
        assert_ne!(a.server, b.server);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        // Third job starts when the shorter job finishes.
        let c = pool.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(c.start, SimTime::from_millis(4));
        assert_eq!(c.server, b.server);
    }

    #[test]
    fn acquire_respects_request_time() {
        let mut pool = ServerPool::new("npu", 1);
        let r = pool.acquire(SimTime::from_millis(7), SimDuration::from_millis(1));
        assert_eq!(r.start, SimTime::from_millis(7));
    }

    #[test]
    fn utilisation_and_busy_time_accumulate() {
        let mut pool = ServerPool::new("io", 1);
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(pool.busy_time(), SimDuration::from_secs(2));
        assert!((pool.utilisation(SimTime::from_secs(4)) - 0.5).abs() < 1e-9);
        assert_eq!(pool.all_free_at(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic]
    fn overlapping_explicit_reservation_panics() {
        let mut pool = ServerPool::new("cpu", 1);
        pool.acquire_on(0, SimTime::ZERO, SimDuration::from_millis(5));
        pool.acquire_on(0, SimTime::from_millis(3), SimDuration::from_millis(5));
    }

    #[test]
    fn reset_clears_state() {
        let mut pool = ServerPool::new("cpu", 3);
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(3));
        pool.reset();
        assert_eq!(pool.all_free_at(), SimTime::ZERO);
        assert_eq!(pool.busy_time(), SimDuration::ZERO);
        assert_eq!(pool.idle_count(SimTime::ZERO), 3);
    }
}
