//! Hardware resources shared by the pipeline and concurrency simulations.
//!
//! The TZ-LLM pipeline schedules operators onto three kinds of hardware: a
//! pool of CPU cores, the NPU, and the flash I/O engine (§4.1 of the paper).
//! [`ServerPool`] models a pool of identical servers whose availability is
//! tracked as a "free-at" instant per server; the pipeline simulator asks the
//! pool when the next server becomes free and reserves busy intervals on it.
//!
//! [`CapacityLedger`] is the complementary view used by the serving layer's
//! overlapped dispatcher: instead of per-server free-at instants it tracks,
//! for a set of named lanes (CPU cores, the NPU, the flash channel), how many
//! units are in use *right now*, the peak ever in use, and the busy-time
//! integral — and it refuses over-subscription outright, so any scheduling
//! bug that would double-book a lane fails loudly instead of silently
//! overlapping work.

use crate::time::{SimDuration, SimTime};

/// A reservation returned by [`ServerPool::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Index of the server inside the pool that runs the work.
    pub server: usize,
    /// When the work actually starts (>= requested time).
    pub start: SimTime,
    /// When the work completes.
    pub end: SimTime,
}

/// A pool of `n` identical servers (CPU cores, NPU cores, I/O channels).
#[derive(Debug, Clone)]
pub struct ServerPool {
    name: String,
    free_at: Vec<SimTime>,
    busy_time: SimDuration,
}

impl ServerPool {
    /// Creates a pool with `servers` servers, all free at time zero.
    ///
    /// # Panics
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        ServerPool {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            busy_time: SimDuration::ZERO,
        }
    }

    /// The pool's human-readable name (used in traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the pool has no servers (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// The earliest instant at which at least one server is free, together
    /// with that server's index.
    pub fn earliest_free(&self) -> (usize, SimTime) {
        let mut best = (0, self.free_at[0]);
        for (i, &t) in self.free_at.iter().enumerate().skip(1) {
            if t < best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// The instant at which work requested at `at` could start.
    pub fn next_start(&self, at: SimTime) -> SimTime {
        let (_, free) = self.earliest_free();
        free.max(at)
    }

    /// Whether any server is idle at instant `at`.
    pub fn has_idle(&self, at: SimTime) -> bool {
        self.free_at.iter().any(|&t| t <= at)
    }

    /// Number of servers idle at instant `at`.
    pub fn idle_count(&self, at: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t <= at).count()
    }

    /// Reserves the earliest-available server for `duration`, starting no
    /// earlier than `at`, and returns the reservation.
    pub fn acquire(&mut self, at: SimTime, duration: SimDuration) -> Reservation {
        let (server, free) = self.earliest_free();
        let start = free.max(at);
        let end = start + duration;
        self.free_at[server] = end;
        self.busy_time += duration;
        Reservation { server, start, end }
    }

    /// Reserves a specific server for `[start, start + duration)`.
    ///
    /// The caller is responsible for choosing `start` no earlier than the
    /// server's current free instant; this is checked and panics otherwise
    /// because an overlapping reservation indicates a scheduler bug.
    pub fn acquire_on(
        &mut self,
        server: usize,
        start: SimTime,
        duration: SimDuration,
    ) -> Reservation {
        assert!(
            self.free_at[server] <= start,
            "server {server} of pool {} is busy until {} but reservation starts at {}",
            self.name,
            self.free_at[server],
            start
        );
        let end = start + duration;
        self.free_at[server] = end;
        self.busy_time += duration;
        Reservation { server, start, end }
    }

    /// Total busy time accumulated over all servers (for utilisation stats).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Utilisation of the pool over the horizon `[0, until)` in `[0, 1]`.
    pub fn utilisation(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        let capacity = until.as_secs_f64() * self.len() as f64;
        (self.busy_time.as_secs_f64() / capacity).min(1.0)
    }

    /// The instant at which every server has drained its queued work.
    pub fn all_free_at(&self) -> SimTime {
        self.free_at
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Resets all servers to free-at-zero, keeping the pool size.
    pub fn reset(&mut self) {
        for t in &mut self.free_at {
            *t = SimTime::ZERO;
        }
        self.busy_time = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_idle_server() {
        let mut pool = ServerPool::new("cpu", 2);
        let a = pool.acquire(SimTime::ZERO, SimDuration::from_millis(10));
        let b = pool.acquire(SimTime::ZERO, SimDuration::from_millis(4));
        assert_ne!(a.server, b.server);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        // Third job starts when the shorter job finishes.
        let c = pool.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(c.start, SimTime::from_millis(4));
        assert_eq!(c.server, b.server);
    }

    #[test]
    fn acquire_respects_request_time() {
        let mut pool = ServerPool::new("npu", 1);
        let r = pool.acquire(SimTime::from_millis(7), SimDuration::from_millis(1));
        assert_eq!(r.start, SimTime::from_millis(7));
    }

    #[test]
    fn utilisation_and_busy_time_accumulate() {
        let mut pool = ServerPool::new("io", 1);
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(pool.busy_time(), SimDuration::from_secs(2));
        assert!((pool.utilisation(SimTime::from_secs(4)) - 0.5).abs() < 1e-9);
        assert_eq!(pool.all_free_at(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic]
    fn overlapping_explicit_reservation_panics() {
        let mut pool = ServerPool::new("cpu", 1);
        pool.acquire_on(0, SimTime::ZERO, SimDuration::from_millis(5));
        pool.acquire_on(0, SimTime::from_millis(3), SimDuration::from_millis(5));
    }

    #[test]
    fn reset_clears_state() {
        let mut pool = ServerPool::new("cpu", 3);
        pool.acquire(SimTime::ZERO, SimDuration::from_secs(3));
        pool.reset();
        assert_eq!(pool.all_free_at(), SimTime::ZERO);
        assert_eq!(pool.busy_time(), SimDuration::ZERO);
        assert_eq!(pool.idle_count(SimTime::ZERO), 3);
    }

    #[test]
    fn ledger_tracks_peaks_and_busy_integral() {
        let mut ledger = CapacityLedger::new();
        let cpu = ledger.add_lane("cpu", 4);
        ledger.acquire(cpu, 3, SimTime::ZERO);
        ledger.release(cpu, 2, SimTime::from_secs(2));
        ledger.release(cpu, 1, SimTime::from_secs(3));
        let usage = &ledger.usage(SimTime::from_secs(4))[0];
        assert_eq!(usage.peak_in_use, 3);
        assert_eq!(usage.in_use, 0);
        // 3 units × 2 s + 1 unit × 1 s = 7 unit-seconds.
        assert_eq!(usage.busy_unit_time, SimDuration::from_secs(7));
        assert!((usage.utilisation(SimTime::from_secs(4)) - 7.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_journal_records_reservation_changes() {
        let mut ledger = CapacityLedger::new();
        let cpu = ledger.add_lane("cpu", 4);
        ledger.acquire(cpu, 3, SimTime::ZERO);
        assert!(
            ledger.journal().is_empty(),
            "journal is off by default and records nothing"
        );
        ledger.enable_journal();
        ledger.release(cpu, 2, SimTime::from_secs(1));
        ledger.acquire(cpu, 1, SimTime::from_secs(2));
        assert_eq!(
            ledger.journal(),
            &[
                LaneEvent {
                    lane: cpu,
                    at: SimTime::from_secs(1),
                    in_use: 1
                },
                LaneEvent {
                    lane: cpu,
                    at: SimTime::from_secs(2),
                    in_use: 2
                },
            ]
        );
        assert_eq!(ledger.lane_name(cpu), "cpu");
        assert_eq!(ledger.lane_capacity(cpu), 4);
        assert_eq!(ledger.lane_count(), 1);
    }

    #[test]
    #[should_panic]
    fn ledger_panics_on_over_subscription() {
        let mut ledger = CapacityLedger::new();
        let npu = ledger.add_lane("npu", 1);
        ledger.acquire(npu, 1, SimTime::ZERO);
        ledger.acquire(npu, 1, SimTime::from_millis(1));
    }

    #[test]
    fn ledger_handover_at_one_instant_is_legal() {
        let mut ledger = CapacityLedger::new();
        let flash = ledger.add_lane("flash", 1);
        ledger.acquire(flash, 1, SimTime::ZERO);
        let t = SimTime::from_millis(5);
        ledger.release(flash, 1, t);
        ledger.acquire(flash, 1, t);
        assert_eq!(ledger.available(flash), 0);
        assert_eq!(ledger.usage(t)[0].peak_in_use, 1);
    }
}

/// Identifier of one lane inside a [`CapacityLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId(usize);

impl LaneId {
    /// The lane's position in the ledger's [`CapacityLedger::usage`] output.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A snapshot of one lane's accounting, as reported back to callers.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneUsage {
    /// Lane name (e.g. `"npu"`, `"flash"`, `"cpu"`).
    pub name: String,
    /// Total units the lane offers.
    pub capacity: u64,
    /// Units in use at the time of the snapshot.
    pub in_use: u64,
    /// The largest number of units ever simultaneously in use.
    pub peak_in_use: u64,
    /// Unit-time integral of usage (`in_use × dt` summed over the run); with
    /// capacity 1 this is plain busy time.
    pub busy_unit_time: SimDuration,
}

impl LaneUsage {
    /// Mean utilisation over `[0, horizon)`.
    ///
    /// Returns the *raw* ratio: a value above 1.0 means the busy integral
    /// exceeds `horizon × capacity` — either the caller passed a horizon
    /// that predates booked activity, or the dispatcher over-booked the
    /// lane.  Earlier revisions clamped to 1.0, which hid exactly that
    /// class of bug; now it is debug-asserted instead.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO || self.capacity == 0 {
            return 0.0;
        }
        let denom = horizon.as_secs_f64() * self.capacity as f64;
        let ratio = self.busy_unit_time.as_secs_f64() / denom;
        debug_assert!(
            ratio <= 1.0 + 1e-9,
            "lane {} utilisation {ratio} exceeds 1.0 over horizon {horizon}: \
             busy integral {:?} does not fit {} unit(s) — over-booking or a \
             stale horizon",
            self.name,
            self.busy_unit_time,
            self.capacity
        );
        ratio
    }
}

#[derive(Debug, Clone)]
struct Lane {
    name: String,
    capacity: u64,
    in_use: u64,
    peak_in_use: u64,
    busy_nanos_x_units: u128,
    last_change: SimTime,
}

/// One reservation change in a [`CapacityLedger`]'s journal: after the
/// acquire/release at `at`, `lane` had `in_use` units booked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneEvent {
    /// The lane that changed.
    pub lane: LaneId,
    /// When it changed.
    pub at: SimTime,
    /// Units in use immediately after the change.
    pub in_use: u64,
}

/// Instantaneous capacity accounting over a set of named lanes.
///
/// Time must advance monotonically across calls (the discrete-event engine
/// guarantees this); within one instant, release before acquire so handover
/// at an event boundary does not trip the capacity check.
#[derive(Debug, Clone, Default)]
pub struct CapacityLedger {
    lanes: Vec<Lane>,
    /// Reservation journal (`None` = off): every acquire/release appends a
    /// [`LaneEvent`], from which the telemetry layer derives per-lane
    /// occupancy spans.  Off by default — the journal observes, it never
    /// feeds back into the capacity checks.
    journal: Option<Vec<LaneEvent>>,
}

impl CapacityLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CapacityLedger::default()
    }

    /// Registers a lane with `capacity` units, all free.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn add_lane(&mut self, name: impl Into<String>, capacity: u64) -> LaneId {
        assert!(capacity > 0, "a lane needs at least one unit");
        self.lanes.push(Lane {
            name: name.into(),
            capacity,
            in_use: 0,
            peak_in_use: 0,
            busy_nanos_x_units: 0,
            last_change: SimTime::ZERO,
        });
        LaneId(self.lanes.len() - 1)
    }

    fn advance(lane: &mut Lane, now: SimTime) {
        let dt = now.saturating_since(lane.last_change).as_nanos() as u128;
        lane.busy_nanos_x_units += dt * lane.in_use as u128;
        lane.last_change = now;
    }

    /// Units currently free on `lane`.
    pub fn available(&self, lane: LaneId) -> u64 {
        let l = &self.lanes[lane.0];
        l.capacity - l.in_use
    }

    /// Units currently in use on `lane`.
    pub fn in_use(&self, lane: LaneId) -> u64 {
        self.lanes[lane.0].in_use
    }

    /// Takes `units` on `lane` starting at instant `now`.
    ///
    /// # Panics
    /// Panics if the lane would exceed its capacity — the caller is expected
    /// to check [`CapacityLedger::available`] first; exceeding capacity means
    /// the dispatcher double-booked hardware.
    pub fn acquire(&mut self, lane: LaneId, units: u64, now: SimTime) {
        let l = &mut self.lanes[lane.0];
        Self::advance(l, now);
        assert!(
            l.in_use + units <= l.capacity,
            "lane {} over-subscribed at {now}: {} + {units} > capacity {}",
            l.name,
            l.in_use,
            l.capacity
        );
        l.in_use += units;
        l.peak_in_use = l.peak_in_use.max(l.in_use);
        let in_use = l.in_use;
        self.note(lane, now, in_use);
    }

    /// Returns `units` on `lane` at instant `now`.
    ///
    /// # Panics
    /// Panics if more units are released than are in use.
    pub fn release(&mut self, lane: LaneId, units: u64, now: SimTime) {
        let l = &mut self.lanes[lane.0];
        Self::advance(l, now);
        assert!(
            units <= l.in_use,
            "lane {} released {units} units but only {} in use",
            l.name,
            l.in_use
        );
        l.in_use -= units;
        let in_use = l.in_use;
        self.note(lane, now, in_use);
    }

    fn note(&mut self, lane: LaneId, at: SimTime, in_use: u64) {
        if let Some(journal) = &mut self.journal {
            journal.push(LaneEvent { lane, at, in_use });
        }
    }

    /// Turns on the reservation journal (idempotent; existing entries are
    /// kept).  Purely observational — capacity checks and busy integrals
    /// are identical with the journal on or off.
    pub fn enable_journal(&mut self) {
        self.journal.get_or_insert_with(Vec::new);
    }

    /// The recorded reservation changes (empty while the journal is off).
    pub fn journal(&self) -> &[LaneEvent] {
        self.journal.as_deref().unwrap_or(&[])
    }

    /// The name a lane was registered under.
    pub fn lane_name(&self, lane: LaneId) -> &str {
        &self.lanes[lane.0].name
    }

    /// The capacity a lane was registered with.
    pub fn lane_capacity(&self, lane: LaneId) -> u64 {
        self.lanes[lane.0].capacity
    }

    /// Number of registered lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Snapshots every lane's accounting as of instant `now`.
    pub fn usage(&self, now: SimTime) -> Vec<LaneUsage> {
        self.lanes
            .iter()
            .map(|l| {
                let dt = now.saturating_since(l.last_change).as_nanos() as u128;
                let busy = l.busy_nanos_x_units + dt * l.in_use as u128;
                LaneUsage {
                    name: l.name.clone(),
                    capacity: l.capacity,
                    in_use: l.in_use,
                    peak_in_use: l.peak_in_use,
                    busy_unit_time: SimDuration::from_nanos(
                        u64::try_from(busy).unwrap_or(u64::MAX),
                    ),
                }
            })
            .collect()
    }
}
