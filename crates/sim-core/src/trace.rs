//! Execution traces.
//!
//! Every simulated activity (a restoration operator, an NPU job, a CMA
//! migration burst, a world switch) can record a [`Span`] into a [`Trace`].
//! The figure-regeneration harness uses traces to produce the per-step
//! breakdowns of Figure 1 and the critical-path analysis of Figure 12, and
//! the tests use them to assert ordering properties (e.g. "no computation
//! operator starts before its parameters finished decrypting").

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::telemetry::Interner;
use crate::time::{SimDuration, SimTime};

/// Category of a traced activity, mirroring the operator classes in §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Contiguous secure-memory allocation (CMA migration) on a CPU core.
    Allocation,
    /// Flash read of encrypted parameters on the I/O engine.
    Loading,
    /// AES-CTR decryption of parameters on a CPU core.
    Decryption,
    /// LLM computation operator on a CPU core.
    CpuCompute,
    /// LLM computation operator on the NPU.
    NpuCompute,
    /// NPU world switch (TZPC/TZASC/GIC configuration, smc).
    WorldSwitch,
    /// Framework initialisation, tokenizer, metadata parsing, checkpoint restore.
    FrameworkInit,
    /// Anything else (book-keeping, idle, REE application activity).
    Other,
}

impl SpanKind {
    /// Short label used in textual figure output.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Allocation => "alloc",
            SpanKind::Loading => "load",
            SpanKind::Decryption => "decrypt",
            SpanKind::CpuCompute => "cpu",
            SpanKind::NpuCompute => "npu",
            SpanKind::WorldSwitch => "switch",
            SpanKind::FrameworkInit => "init",
            SpanKind::Other => "other",
        }
    }
}

/// One traced interval of activity on a named resource.
///
/// Name and resource are interned [`Arc<str>`]s shared through the owning
/// [`Trace`]'s [`Interner`] (the same scheme `sim_core::telemetry` uses):
/// recording a span with a previously seen label costs two refcount bumps,
/// not two `String` allocations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Span {
    /// Human-readable name, e.g. `"decrypt layer 12 ffn_down"`.
    pub name: Arc<str>,
    /// Activity category.
    pub kind: SpanKind,
    /// Resource the activity ran on, e.g. `"cpu3"`, `"npu"`, `"io"`.
    pub resource: Arc<str>,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl Span {
    /// Length of the span.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Whether this span overlaps `[start, end)` of another span.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// An append-only collection of spans for one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
    /// Shared label table: span names and resources are interned here.
    labels: Interner,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records a span.  Repeated names and resources share one interned
    /// allocation instead of being re-allocated per span.
    pub fn record(
        &mut self,
        name: impl AsRef<str>,
        kind: SpanKind,
        resource: impl AsRef<str>,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span must not end before it starts");
        let name = self.labels.share(name.as_ref());
        let resource = self.labels.share(resource.as_ref());
        self.spans.push(Span {
            name,
            kind,
            resource,
            start,
            end,
        });
    }

    /// All recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans of a given kind.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Total busy time of a given kind (sum of span durations).
    pub fn total_time(&self, kind: SpanKind) -> SimDuration {
        self.spans_of(kind).map(Span::duration).sum()
    }

    /// The instant the last span ends, or zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// The earliest start instant, or zero for an empty trace.
    pub fn start_time(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.start)
            .fold(SimTime::MAX, SimTime::min)
            .min(self.end_time())
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Merges another trace into this one.
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
    }

    /// Checks that no two spans on the same resource overlap.  Returns the
    /// first offending pair if there is one.  Resources that model pools
    /// (e.g. `"cpu0"` .. `"cpu3"`) must already be distinguished by name.
    pub fn find_resource_conflict(&self) -> Option<(&Span, &Span)> {
        let mut by_resource: std::collections::HashMap<&str, Vec<&Span>> =
            std::collections::HashMap::new();
        for s in &self.spans {
            by_resource.entry(&*s.resource).or_default().push(s);
        }
        for spans in by_resource.values_mut() {
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                if w[0].overlaps(w[1]) {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// A compact textual Gantt-style rendering, useful for debugging pipeline
    /// schedules from tests and examples.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut spans: Vec<&Span> = self.spans.iter().collect();
        // Sort by borrowed resource text — no per-comparison clone.
        spans.sort_by(|a, b| (&*a.resource, a.start).cmp(&(&*b.resource, b.start)));
        for s in spans {
            out.push_str(&format!(
                "{:<6} [{:>12.6}s - {:>12.6}s] {:<8} {}\n",
                s.resource,
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.kind.label(),
                s.name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn totals_and_end_time() {
        let mut trace = Trace::new();
        trace.record("a", SpanKind::Loading, "io", t(0), t(10));
        trace.record("b", SpanKind::Loading, "io", t(10), t(30));
        trace.record("c", SpanKind::CpuCompute, "cpu0", t(5), t(15));
        assert_eq!(
            trace.total_time(SpanKind::Loading),
            SimDuration::from_millis(30)
        );
        assert_eq!(trace.end_time(), t(30));
        assert_eq!(trace.start_time(), t(0));
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn conflict_detection_finds_overlap() {
        let mut trace = Trace::new();
        trace.record("a", SpanKind::CpuCompute, "cpu0", t(0), t(10));
        trace.record("b", SpanKind::CpuCompute, "cpu0", t(5), t(15));
        assert!(trace.find_resource_conflict().is_some());

        let mut ok = Trace::new();
        ok.record("a", SpanKind::CpuCompute, "cpu0", t(0), t(10));
        ok.record("b", SpanKind::CpuCompute, "cpu1", t(5), t(15));
        ok.record("c", SpanKind::CpuCompute, "cpu0", t(10), t(20));
        assert!(ok.find_resource_conflict().is_none());
    }

    #[test]
    fn merge_combines_spans() {
        let mut a = Trace::new();
        a.record("a", SpanKind::Other, "x", t(0), t(1));
        let mut b = Trace::new();
        b.record("b", SpanKind::Other, "y", t(1), t(2));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn render_text_is_sorted_by_resource_then_time() {
        let mut trace = Trace::new();
        trace.record("late", SpanKind::CpuCompute, "cpu0", t(10), t(20));
        trace.record("early", SpanKind::CpuCompute, "cpu0", t(0), t(5));
        let text = trace.render_text();
        let early_pos = text.find("early").unwrap();
        let late_pos = text.find("late").unwrap();
        assert!(early_pos < late_pos);
    }
}
