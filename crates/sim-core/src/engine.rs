//! A minimal discrete-event simulation engine.
//!
//! The engine drives simulations in which many independent actors interleave
//! on a shared virtual clock — for example the NPU time-sharing experiments
//! (§7.3) where an REE neural-network application and the LLM TA compete for
//! the NPU, or the CMA-interference experiments (§7.4) where Geekbench-like
//! tasks run while CMA migrates pages.
//!
//! Events are closures scheduled at a [`SimTime`]; firing an event may mutate
//! the shared state and schedule further events.  Ties are broken by the
//! insertion sequence number, which makes runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event handler: receives the shared simulation state and a scheduler
/// handle for enqueueing follow-up events.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut EventScheduler<S>)>;

struct QueuedEvent<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for QueuedEvent<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for QueuedEvent<S> {}
impl<S> PartialOrd for QueuedEvent<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for QueuedEvent<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle passed to event handlers for scheduling new events.
pub struct EventScheduler<S> {
    now: SimTime,
    pending: Vec<(SimTime, EventFn<S>)>,
}

impl<S> EventScheduler<S> {
    /// The current simulation time (the time of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to fire "now"; this mirrors
    /// hardware completion interrupts that have already happened by the time
    /// software observes them.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut S, &mut EventScheduler<S>) + 'static,
    ) {
        let at = at.max(self.now);
        self.pending.push((at, Box::new(event)));
    }

    /// Schedules `event` to fire after `delay` from the current time.
    pub fn schedule_after(
        &mut self,
        delay: crate::time::SimDuration,
        event: impl FnOnce(&mut S, &mut EventScheduler<S>) + 'static,
    ) {
        let at = self.now + delay;
        self.pending.push((at, Box::new(event)));
    }
}

/// The discrete-event engine: a priority queue of timed events over a shared
/// state `S`.
pub struct Engine<S> {
    state: S,
    queue: BinaryHeap<QueuedEvent<S>>,
    now: SimTime,
    seq: u64,
    fired: u64,
}

impl<S> Engine<S> {
    /// Creates an engine wrapping the initial simulation state.
    pub fn new(state: S) -> Self {
        Engine {
            state,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
        }
    }

    /// Current simulation time (time of the last fired event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Immutable access to the simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the simulation state (for setup between runs).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine and returns the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules an event at absolute time `at` from outside a handler.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut S, &mut EventScheduler<S>) + 'static,
    ) {
        let at = at.max(self.now);
        self.queue.push(QueuedEvent {
            at,
            seq: self.seq,
            run: Box::new(event),
        });
        self.seq += 1;
    }

    /// Runs events until the queue is empty or the clock would pass `horizon`.
    ///
    /// Returns the number of events fired by this call.  Events scheduled
    /// beyond the horizon remain queued so the simulation can be resumed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut fired = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.at > horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.at;
            let mut sched = EventScheduler {
                now: self.now,
                pending: Vec::new(),
            };
            (ev.run)(&mut self.state, &mut sched);
            for (at, run) in sched.pending {
                self.queue.push(QueuedEvent {
                    at,
                    seq: self.seq,
                    run,
                });
                self.seq += 1;
            }
            fired += 1;
            self.fired += 1;
        }
        if self.now > horizon {
            self.now = horizon;
        }
        fired
    }

    /// Runs the simulation to completion (empty event queue).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Whether any events remain queued.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Default)]
    struct Counter {
        log: Vec<(u64, u32)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new(Counter::default());
        engine.schedule_at(SimTime::from_millis(5), |s: &mut Counter, _| {
            s.log.push((5, 0))
        });
        engine.schedule_at(SimTime::from_millis(1), |s: &mut Counter, _| {
            s.log.push((1, 1))
        });
        engine.schedule_at(SimTime::from_millis(3), |s: &mut Counter, _| {
            s.log.push((3, 2))
        });
        engine.run_to_completion();
        let times: Vec<u64> = engine.state().log.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine = Engine::new(Counter::default());
        for i in 0..4u32 {
            engine.schedule_at(SimTime::from_millis(2), move |s: &mut Counter, _| {
                s.log.push((2, i))
            });
        }
        engine.run_to_completion();
        let order: Vec<u32> = engine.state().log.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut engine = Engine::new(Counter::default());
        engine.schedule_at(SimTime::ZERO, |s: &mut Counter, sched| {
            s.log.push((0, 0));
            sched.schedule_after(SimDuration::from_millis(10), |s: &mut Counter, sched| {
                s.log.push((10, 1));
                sched.schedule_after(SimDuration::from_millis(10), |s: &mut Counter, _| {
                    s.log.push((20, 2));
                });
            });
        });
        engine.run_to_completion();
        assert_eq!(engine.state().log.len(), 3);
        assert_eq!(engine.now(), SimTime::from_millis(20));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut engine = Engine::new(Counter::default());
        engine.schedule_at(SimTime::from_secs(1), |s: &mut Counter, _| {
            s.log.push((1, 0))
        });
        engine.schedule_at(SimTime::from_secs(10), |s: &mut Counter, _| {
            s.log.push((10, 1))
        });
        let fired = engine.run_until(SimTime::from_secs(5));
        assert_eq!(fired, 1);
        assert!(engine.has_pending());
        engine.run_to_completion();
        assert_eq!(engine.state().log.len(), 2);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut engine = Engine::new(Counter::default());
        engine.schedule_at(SimTime::from_secs(2), |s: &mut Counter, sched| {
            s.log.push((2, 0));
            // Schedule "in the past": must fire at the current time, not earlier.
            sched.schedule_at(SimTime::from_secs(1), |s: &mut Counter, sched| {
                s.log.push((sched.now().as_nanos() / 1_000_000_000, 1));
            });
        });
        engine.run_to_completion();
        assert_eq!(engine.state().log, vec![(2, 0), (2, 1)]);
    }
}
