//! Small statistics helpers used by the experiment harness.
//!
//! The paper reports geometric means of per-prompt overheads (§7.1.1),
//! percentage overheads/speed-ups between systems, and throughput averages.
//! These helpers centralise those computations so every figure harness and
//! test derives them the same way.

/// Arithmetic mean; returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean; returns `None` if the slice is empty or any value is
/// non-positive (a geometric mean is undefined there).
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Relative change of `new` versus `base` as a signed fraction:
/// `+0.25` means `new` is 25 % larger than `base`.
pub fn relative_change(base: f64, new: f64) -> f64 {
    assert!(base > 0.0, "relative change needs a positive baseline");
    (new - base) / base
}

/// Reduction of `new` versus `base` as a fraction of `base`:
/// `0.909` means `new` is 90.9 % smaller than `base`.
pub fn reduction(base: f64, new: f64) -> f64 {
    assert!(base > 0.0, "reduction needs a positive baseline");
    (base - new) / base
}

/// Speed-up of `new` over `base` (`base / new` for latencies).
pub fn speedup(base_latency: f64, new_latency: f64) -> f64 {
    assert!(new_latency > 0.0, "speedup needs a positive new latency");
    base_latency / new_latency
}

/// Linear interpolation percentile (p in `[0, 100]`); returns `None` for an
/// empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile input must not contain NaN")
    });
    Some(percentile_sorted(&sorted, p))
}

/// The interpolation rule shared by [`percentile`] and
/// [`PercentileSummary`]: percentile of an already-sorted, non-empty slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Sample standard deviation; returns `None` for fewer than two samples.
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// A percentile summary of a latency (or any) sample set, as the serving
/// layer reports it: p50/p95/p99 tail latencies plus mean and extremes.
///
/// All fields are in whatever unit the input samples were in.  Construction
/// sorts a copy of the input once and interpolates linearly (same rule as
/// [`percentile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl PercentileSummary {
    /// Summarises `values`; returns `None` for an empty slice or if any value
    /// is NaN.
    pub fn from_values(values: &[f64]) -> Option<PercentileSummary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Some(PercentileSummary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Running min/max/mean accumulator for streaming measurements.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
    }

    #[test]
    fn change_reduction_speedup() {
        assert!((relative_change(10.0, 12.5) - 0.25).abs() < 1e-12);
        assert!((reduction(10.0, 1.0) - 0.9).abs() < 1e-12);
        assert!((speedup(10.0, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert!((percentile(&v, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert!((stddev(&[3.0, 3.0, 3.0]).unwrap()).abs() < 1e-12);
        assert_eq!(stddev(&[1.0]), None);
    }

    #[test]
    fn percentile_summary_matches_percentile() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = PercentileSummary::from_values(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(Some(s.p50), percentile(&v, 50.0));
        assert_eq!(Some(s.p95), percentile(&v, 95.0));
        assert_eq!(Some(s.p99), percentile(&v, 99.0));
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(PercentileSummary::from_values(&[]), None);
        assert_eq!(PercentileSummary::from_values(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [3.0, 1.0, 2.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.mean().unwrap() - 2.0).abs() < 1e-12);
    }
}
