//! # sim-core
//!
//! Discrete-event simulation substrate for the TZ-LLM reproduction.
//!
//! The paper's prototype runs on a Rockchip RK3588 board; this reproduction
//! replaces the physical hardware with a calibrated, fully deterministic
//! simulation.  This crate provides the building blocks shared by every other
//! crate in the workspace:
//!
//! * [`time`] — virtual nanosecond clock ([`SimTime`], [`SimDuration`]).
//! * [`bandwidth`] — constant-throughput device helpers ([`Bandwidth`]).
//! * [`resource`] — server pools for CPU cores / NPU / I/O engine.
//! * [`engine`] — a generic discrete-event engine for concurrency experiments.
//! * [`trace`] — span recording for figure generation and ordering assertions.
//! * [`telemetry`] — zero-cost-when-off serving telemetry: interned labels,
//!   request/lane span tracks, a metrics registry, Perfetto trace export.
//! * [`metrics`] — windowed metrics: per-window counters/gauges and
//!   mergeable log-bucketed latency histograms (≤1% quantile error).
//! * [`stats`] — means, geometric means, percentiles, overhead computations.
//! * [`rng`] — deterministic random streams for workload generation.

pub mod bandwidth;
pub mod engine;
pub mod metrics;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use bandwidth::{Bandwidth, GIB, KIB, MIB};
pub use engine::{Engine, EventScheduler};
pub use metrics::{GaugeWindow, LogHistogram, WindowedMetrics};
pub use resource::{CapacityLedger, LaneEvent, LaneId, LaneUsage, Reservation, ServerPool};
pub use rng::{shard_seed, DetRng};
pub use stats::PercentileSummary;
pub use telemetry::{Interner, LabelId, Phase, Telemetry, TelemetrySpan, Track};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, SpanKind, Trace};
