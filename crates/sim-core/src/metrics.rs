//! Windowed metrics: fixed-width time windows over counters, gauges and
//! mergeable log-bucketed latency histograms.
//!
//! The telemetry module ([`crate::telemetry`]) records *traces*: every span,
//! every sample, unbounded.  That is the right tool for one run under a
//! microscope and the wrong tool for a fleet — shipping every per-request
//! latency sample across a 64-shard merge is exactly what the ROADMAP's
//! fleet scale-out forbids.  This module is the *metrics* dimension:
//!
//! * **Windows.** Virtual time is cut into fixed-width windows of
//!   [`WindowedMetrics::window`] nanoseconds; window `w` covers
//!   `[w·width, (w+1)·width)`.  Every series is a sparse map from window
//!   index to that window's aggregate, so a quiet fleet costs nothing and a
//!   spike can be localised to the windows it happened in.
//! * **Counters** are per-window deltas (`u64` additions).
//! * **Gauges** are per-window last/sum/count, held in *fixed-point
//!   micro-units* (`i64`/`i128`), so merging two series is pure integer
//!   arithmetic.
//! * **Latencies** go into [`LogHistogram`]: DDSketch-style log-bucketed
//!   histograms (α = 1%) with exact integer count and sum, whose quantile
//!   estimates carry a ≤ 1% relative-error guarantee versus the exact
//!   sample at the same rank.
//!
//! Every aggregate is integer state.  That is a deliberate invariant, not an
//! implementation detail: integer addition is associative and commutative,
//! so [`WindowedMetrics::merge_from`] is *exactly* associative and
//! permutation-invariant — the property the fleet merge's digest matrix
//! (same merged bytes for 1/2/8 worker threads) is built on.  An `f64` sum
//! anywhere in the state would break it: floating-point addition does not
//! reassociate.
//!
//! The canonical byte encoding ([`WindowedMetrics::canonical_bytes`]) gives
//! the fleet layer a stable serialisation to fold into its SHA-256 shard
//! digests.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// DDSketch relative-accuracy parameter: quantile estimates are within
/// `ALPHA` relative error of the exact sample at the same rank.
pub const ALPHA: f64 = 0.01;

/// Log-bucket base `γ = (1 + α) / (1 − α)`; bucket `i` covers
/// `(γ^(i−1), γ^i]` nanoseconds.
pub fn gamma() -> f64 {
    (1.0 + ALPHA) / (1.0 - ALPHA)
}

/// A mergeable log-bucketed latency histogram (DDSketch flavour).
///
/// Observations are `u64` nanoseconds.  State is integer-only: a zero
/// bucket, a sparse `bucket index → count` map, and exact `count`/`sum`
/// totals — so [`LogHistogram::merge_from`] is exactly associative and
/// permutation-invariant, and two histograms built from the same
/// observations in any order compare `Eq`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Count of zero-valued observations (log buckets start at 1 ns).
    zero: u64,
    /// Sparse log buckets: index `i` holds observations in `(γ^(i−1), γ^i]`.
    buckets: BTreeMap<i32, u64>,
    /// Exact observation count.
    count: u64,
    /// Exact sum of all observations, in nanoseconds.
    sum_ns: u128,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Bucket index for a positive value: `ceil(ln(v) / ln(γ))`.
    fn bucket_index(value_ns: u64) -> i32 {
        debug_assert!(value_ns > 0);
        let ratio = (value_ns as f64).ln() / gamma().ln();
        ratio.ceil() as i32
    }

    /// The estimate reported for every observation in bucket `i`: the
    /// bucket's geometric midpoint `2γ^i / (γ + 1)`, which bounds the
    /// relative error at ±α for the whole bucket range.
    fn bucket_estimate(index: i32) -> f64 {
        let g = gamma();
        2.0 * g.powi(index) / (g + 1.0)
    }

    /// Upper bound of bucket `i` in nanoseconds (`γ^i`).
    fn bucket_upper(index: i32) -> f64 {
        gamma().powi(index)
    }

    /// Records one observation of `value_ns` nanoseconds.
    pub fn observe_ns(&mut self, value_ns: u64) {
        self.count += 1;
        self.sum_ns += value_ns as u128;
        if value_ns == 0 {
            self.zero += 1;
        } else {
            *self
                .buckets
                .entry(Self::bucket_index(value_ns))
                .or_insert(0) += 1;
        }
    }

    /// Records one observation of a [`SimDuration`].
    pub fn observe(&mut self, value: SimDuration) {
        self.observe_ns(value.as_nanos());
    }

    /// Folds `other` into `self`.  Pure integer addition, so the merge is
    /// exactly associative and permutation-invariant.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Exact observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Exact mean in nanoseconds, or `None` if empty.
    pub fn mean_ns(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64)
        }
    }

    /// Quantile estimate in nanoseconds for `q ∈ [0, 1]`, or `None` if
    /// empty.  The estimate is within [`ALPHA`] relative error of the exact
    /// sample at rank `ceil(q · (count − 1))` of the sorted observations —
    /// the same rank rule the test oracle uses.
    pub fn quantile_ns(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).ceil() as u64;
        if rank < self.zero {
            return Some(0.0);
        }
        let mut cumulative = self.zero;
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            if cumulative > rank {
                return Some(Self::bucket_estimate(idx));
            }
        }
        // Unreachable when counts are consistent; fall back to the top
        // bucket's estimate.
        self.buckets
            .keys()
            .next_back()
            .map(|&idx| Self::bucket_estimate(idx))
    }

    /// [`LogHistogram::quantile_ns`] in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns / 1e6)
    }

    /// Approximate count of observations `≤ threshold_ns`: exact for the
    /// zero bucket, and bucket-granular (±α on the boundary bucket's
    /// membership) for the log buckets.  Deterministic, and mergeable in the
    /// sense that `count_le` of a merge equals the sum of `count_le`s.
    pub fn count_le_ns(&self, threshold_ns: u64) -> u64 {
        let mut good = self.zero;
        for (&idx, &n) in &self.buckets {
            if Self::bucket_estimate(idx) <= threshold_ns as f64 {
                good += n;
            } else {
                break;
            }
        }
        good
    }

    /// Cumulative bucket view for text exposition: `(upper_bound_ns,
    /// cumulative_count)` in ascending bound order, zero bucket included as
    /// bound `1.0`.  The final cumulative count equals [`Self::count`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cumulative = self.zero;
        if self.zero > 0 {
            out.push((1.0, cumulative));
        }
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            out.push((Self::bucket_upper(idx), cumulative));
        }
        out
    }

    /// Number of live (non-zero) log buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.zero.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum_ns.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u64).to_le_bytes());
        for (&idx, &n) in &self.buckets {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

/// One window of a gauge series.  Values are held in fixed-point
/// micro-units (`value × 10⁶`, rounded) so the state stays integer and the
/// merge stays exact; [`GaugeWindow::last`] / [`GaugeWindow::mean`] convert
/// back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaugeWindow {
    last_micros: i64,
    sum_micros: i128,
    count: u64,
}

impl GaugeWindow {
    /// Last value set in this window.  After a shard merge this is the
    /// *sum* of the shards' lasts — the fleet-wide level (e.g. total queue
    /// depth across shards).
    pub fn last(&self) -> f64 {
        self.last_micros as f64 / 1e6
    }

    /// Mean of the values set in this window (count-weighted after a
    /// merge).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / 1e6 / self.count as f64
        }
    }

    /// Number of sets in this window.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Series key: `(metric name, class label)` — e.g.
/// `("ttft_cold", "conversation")` or `("lane_busy_ns", "npu")`.
pub type SeriesKey = (&'static str, &'static str);

/// Windowed metrics registry: counters, gauges and latency histograms, each
/// keyed by `(name, class)` and bucketed into fixed-width time windows.
///
/// A disabled instance ([`WindowedMetrics::off`], also the `Default`) makes
/// every record call a single branch, so the serving layer can keep the
/// calls unconditionally inline — the observe-only reproduction proof in
/// `crates/bench/tests/serial_reproduction.rs` holds it to that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedMetrics {
    enabled: bool,
    window_ns: u64,
    counters: BTreeMap<SeriesKey, BTreeMap<u64, u64>>,
    gauges: BTreeMap<SeriesKey, BTreeMap<u64, GaugeWindow>>,
    histograms: BTreeMap<SeriesKey, BTreeMap<u64, LogHistogram>>,
}

impl Default for WindowedMetrics {
    fn default() -> Self {
        WindowedMetrics::off()
    }
}

impl WindowedMetrics {
    /// The window width the serving layer defaults to: 60 simulated
    /// seconds, the classic SLO-dashboard resolution.
    pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(60);

    /// An enabled registry with the given window width.
    pub fn new(window: SimDuration) -> Self {
        assert!(window.as_nanos() > 0, "window width must be positive");
        WindowedMetrics {
            enabled: true,
            window_ns: window.as_nanos(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// A disabled registry: every record call returns after one branch.
    pub fn off() -> Self {
        WindowedMetrics {
            enabled: false,
            window_ns: Self::DEFAULT_WINDOW.as_nanos(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_nanos(self.window_ns)
    }

    /// The window index containing `at`.
    pub fn window_index(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.window_ns
    }

    /// The start of window `index`.
    pub fn window_start(&self, index: u64) -> SimTime {
        SimTime::from_nanos(index * self.window_ns)
    }

    /// Adds `delta` to counter `(name, class)` in the window containing
    /// `at`.
    pub fn add(&mut self, name: &'static str, class: &'static str, at: SimTime, delta: u64) {
        if !self.enabled {
            return;
        }
        let w = self.window_index(at);
        *self
            .counters
            .entry((name, class))
            .or_default()
            .entry(w)
            .or_insert(0) += delta;
    }

    /// Sets gauge `(name, class)` to `value` in the window containing
    /// `at`.  The value is stored in fixed-point micro-units.
    pub fn gauge(&mut self, name: &'static str, class: &'static str, at: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_index(at);
        let micros = (value * 1e6).round() as i64;
        let entry = self
            .gauges
            .entry((name, class))
            .or_default()
            .entry(w)
            .or_default();
        entry.last_micros = micros;
        entry.sum_micros += micros as i128;
        entry.count += 1;
    }

    /// Records latency `value` into histogram `(name, class)` in the window
    /// containing `at`.
    pub fn observe(
        &mut self,
        name: &'static str,
        class: &'static str,
        at: SimTime,
        value: SimDuration,
    ) {
        if !self.enabled {
            return;
        }
        let w = self.window_index(at);
        self.histograms
            .entry((name, class))
            .or_default()
            .entry(w)
            .or_default()
            .observe(value);
    }

    /// Folds `other` into `self` window-by-window and bucket-by-bucket.
    ///
    /// All state is integer, so the merge is exactly associative and
    /// permutation-invariant; merging a disabled/empty registry is a no-op.
    /// Panics if both sides are enabled with different window widths —
    /// windows of different widths cannot be aligned.
    pub fn merge_from(&mut self, other: &WindowedMetrics) {
        if !other.enabled {
            return;
        }
        if !self.enabled {
            self.enabled = true;
            self.window_ns = other.window_ns;
        }
        assert_eq!(
            self.window_ns, other.window_ns,
            "windowed metrics with different window widths cannot merge"
        );
        for (key, windows) in &other.counters {
            let mine = self.counters.entry(*key).or_default();
            for (&w, &v) in windows {
                *mine.entry(w).or_insert(0) += v;
            }
        }
        for (key, windows) in &other.gauges {
            let mine = self.gauges.entry(*key).or_default();
            for (&w, g) in windows {
                let entry = mine.entry(w).or_default();
                entry.last_micros += g.last_micros;
                entry.sum_micros += g.sum_micros;
                entry.count += g.count;
            }
        }
        for (key, windows) in &other.histograms {
            let mine = self.histograms.entry(*key).or_default();
            for (&w, h) in windows {
                mine.entry(w).or_default().merge_from(h);
            }
        }
    }

    /// The counter series for `(name, class)`, if any value was recorded.
    pub fn counter_series(
        &self,
        name: &'static str,
        class: &'static str,
    ) -> Option<&BTreeMap<u64, u64>> {
        self.counters.get(&(name, class))
    }

    /// The gauge series for `(name, class)`.
    pub fn gauge_series(
        &self,
        name: &'static str,
        class: &'static str,
    ) -> Option<&BTreeMap<u64, GaugeWindow>> {
        self.gauges.get(&(name, class))
    }

    /// The histogram series for `(name, class)`.
    pub fn histogram_series(
        &self,
        name: &'static str,
        class: &'static str,
    ) -> Option<&BTreeMap<u64, LogHistogram>> {
        self.histograms.get(&(name, class))
    }

    /// All windows of histogram `(name, class)` merged into one histogram
    /// — the whole-run distribution.
    pub fn merged_histogram(
        &self,
        name: &'static str,
        class: &'static str,
    ) -> Option<LogHistogram> {
        let windows = self.histograms.get(&(name, class))?;
        let mut total = LogHistogram::new();
        for h in windows.values() {
            total.merge_from(h);
        }
        if total.count() == 0 {
            None
        } else {
            Some(total)
        }
    }

    /// Classes that recorded into histogram `name`, in sorted order.
    pub fn histogram_classes(&self, name: &'static str) -> Vec<&'static str> {
        self.histograms
            .keys()
            .filter(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Classes that recorded into counter `name`, in sorted order.
    pub fn counter_classes(&self, name: &'static str) -> Vec<&'static str> {
        self.counters
            .keys()
            .filter(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Classes that recorded into gauge `name`, in sorted order.
    pub fn gauge_classes(&self, name: &'static str) -> Vec<&'static str> {
        self.gauges
            .keys()
            .filter(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Distinct counter metric names, in sorted order.
    pub fn counter_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.counters.keys().map(|(n, _)| *n).collect();
        names.dedup();
        names
    }

    /// Distinct gauge metric names, in sorted order.
    pub fn gauge_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.gauges.keys().map(|(n, _)| *n).collect();
        names.dedup();
        names
    }

    /// Distinct histogram metric names, in sorted order.
    pub fn histogram_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.histograms.keys().map(|(n, _)| *n).collect();
        names.dedup();
        names
    }

    /// The `[min, max]` window index range spanned by any series, or
    /// `None` if nothing was recorded.
    pub fn window_range(&self) -> Option<(u64, u64)> {
        let mut range: Option<(u64, u64)> = None;
        let mut fold = |w: u64| {
            range = Some(match range {
                None => (w, w),
                Some((lo, hi)) => (lo.min(w), hi.max(w)),
            });
        };
        for windows in self.counters.values() {
            for &w in windows.keys() {
                fold(w);
            }
        }
        for windows in self.gauges.values() {
            for &w in windows.keys() {
                fold(w);
            }
        }
        for windows in self.histograms.values() {
            for &w in windows.keys() {
                fold(w);
            }
        }
        range
    }

    /// Total number of recorded series across all three kinds.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Canonical little-endian byte encoding of the full registry, stable
    /// across runs and platforms that agree on bucket indices: the fleet
    /// layer folds these bytes into its per-shard SHA-256 digests.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.enabled as u8);
        out.extend_from_slice(&self.window_ns.to_le_bytes());
        let encode_key = |out: &mut Vec<u8>, key: &SeriesKey| {
            out.extend_from_slice(&(key.0.len() as u64).to_le_bytes());
            out.extend_from_slice(key.0.as_bytes());
            out.extend_from_slice(&(key.1.len() as u64).to_le_bytes());
            out.extend_from_slice(key.1.as_bytes());
        };
        out.extend_from_slice(&(self.counters.len() as u64).to_le_bytes());
        for (key, windows) in &self.counters {
            encode_key(&mut out, key);
            out.extend_from_slice(&(windows.len() as u64).to_le_bytes());
            for (&w, &v) in windows {
                out.extend_from_slice(&w.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.gauges.len() as u64).to_le_bytes());
        for (key, windows) in &self.gauges {
            encode_key(&mut out, key);
            out.extend_from_slice(&(windows.len() as u64).to_le_bytes());
            for (&w, g) in windows {
                out.extend_from_slice(&w.to_le_bytes());
                out.extend_from_slice(&g.last_micros.to_le_bytes());
                out.extend_from_slice(&g.sum_micros.to_le_bytes());
                out.extend_from_slice(&g.count.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.histograms.len() as u64).to_le_bytes());
        for (key, windows) in &self.histograms {
            encode_key(&mut out, key);
            out.extend_from_slice(&(windows.len() as u64).to_le_bytes());
            for (&w, h) in windows {
                out.extend_from_slice(&w.to_le_bytes());
                h.encode_into(&mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    /// The rank rule the sketch's quantile guarantee is stated against.
    fn exact_rank_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
        sorted[rank]
    }

    #[test]
    fn every_quantile_is_within_one_percent_of_the_exact_rank_sample() {
        let mut rng = DetRng::new(0xD15C);
        let mut hist = LogHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        // Log-uniform over six decades: 1 µs .. 1000 s, the full TTFT range.
        for _ in 0..20_000 {
            let exp = rng.next_f64() * 6.0 + 3.0;
            let v = 10f64.powf(exp) as u64;
            hist.observe_ns(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_rank_quantile(&samples, q) as f64;
            let est = hist.quantile_ns(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= ALPHA + 1e-6,
                "q={q}: estimate {est} vs exact {exact} (rel {rel:.5})"
            );
        }
        assert_eq!(hist.count(), 20_000);
        assert_eq!(hist.sum_ns(), samples.iter().map(|&v| v as u128).sum());
    }

    #[test]
    fn zero_observations_live_in_the_zero_bucket() {
        let mut hist = LogHistogram::new();
        hist.observe_ns(0);
        hist.observe_ns(0);
        hist.observe_ns(1_000);
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.quantile_ns(0.0), Some(0.0));
        assert!(hist.quantile_ns(1.0).unwrap() > 0.0);
        assert_eq!(hist.count_le_ns(0), 2);
        assert_eq!(hist.count_le_ns(2_000), 3);
    }

    #[test]
    fn histogram_merge_is_associative_and_permutation_invariant() {
        let build = |seed: u64, n: usize| {
            let mut rng = DetRng::new(seed);
            let mut h = LogHistogram::new();
            for _ in 0..n {
                h.observe_ns(1 + (rng.next_u64() % 1_000_000_000));
            }
            h
        };
        let (a, b, c) = (build(1, 500), build(2, 300), build(3, 700));
        let merged = |parts: &[&LogHistogram]| {
            let mut acc = LogHistogram::new();
            for p in parts {
                acc.merge_from(p);
            }
            acc
        };
        let left = {
            let mut ab = a.clone();
            ab.merge_from(&b);
            ab.merge_from(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge_from(&c);
            let mut out = a.clone();
            out.merge_from(&bc);
            out
        };
        assert_eq!(left, right, "histogram merge must be associative");
        for perm in [
            [&a, &b, &c],
            [&a, &c, &b],
            [&b, &a, &c],
            [&b, &c, &a],
            [&c, &a, &b],
            [&c, &b, &a],
        ] {
            assert_eq!(merged(&perm), left, "merge must be permutation-invariant");
        }
        assert_eq!(left.count(), 1500);
    }

    #[test]
    fn windows_partition_time_and_counters_accumulate_deltas() {
        let mut m = WindowedMetrics::new(SimDuration::from_secs(60));
        let t = |s: u64| SimTime::from_nanos(s * 1_000_000_000);
        m.add("req", "chat", t(0), 1);
        m.add("req", "chat", t(59), 2);
        m.add("req", "chat", t(60), 5);
        m.add("req", "agent", t(61), 7);
        let chat = m.counter_series("req", "chat").unwrap();
        assert_eq!(chat.get(&0), Some(&3));
        assert_eq!(chat.get(&1), Some(&5));
        assert_eq!(m.counter_series("req", "agent").unwrap().get(&1), Some(&7));
        assert_eq!(m.counter_classes("req"), vec!["agent", "chat"]);
        assert_eq!(m.window_range(), Some((0, 1)));
        assert_eq!(m.window_start(1), t(60));
    }

    #[test]
    fn gauges_track_last_and_mean_per_window() {
        let mut m = WindowedMetrics::new(SimDuration::from_secs(10));
        let t = |s: u64| SimTime::from_nanos(s * 1_000_000_000);
        m.gauge("depth", "all", t(1), 2.0);
        m.gauge("depth", "all", t(2), 4.0);
        m.gauge("depth", "all", t(15), 1.5);
        let series = m.gauge_series("depth", "all").unwrap();
        let w0 = &series[&0];
        assert_eq!(w0.last(), 4.0);
        assert_eq!(w0.mean(), 3.0);
        assert_eq!(w0.count(), 2);
        assert_eq!(series[&1].last(), 1.5);
    }

    #[test]
    fn disabled_metrics_record_nothing_and_merge_as_identity() {
        let mut off = WindowedMetrics::off();
        assert!(!off.is_enabled());
        off.add("x", "y", SimTime::ZERO, 1);
        off.gauge("x", "y", SimTime::ZERO, 1.0);
        off.observe("x", "y", SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(off.series_count(), 0);
        assert_eq!(off.window_range(), None);

        let mut live = WindowedMetrics::new(SimDuration::from_secs(60));
        live.add("x", "y", SimTime::ZERO, 3);
        let before = live.clone();
        live.merge_from(&off);
        assert_eq!(live, before, "merging a disabled registry is a no-op");

        let mut adopted = WindowedMetrics::off();
        adopted.merge_from(&before);
        assert_eq!(adopted, before, "an off registry adopts the live one");
    }

    #[test]
    fn registry_merge_is_associative_and_permutation_invariant() {
        let build = |seed: u64| {
            let mut rng = DetRng::new(seed);
            let mut m = WindowedMetrics::new(SimDuration::from_secs(60));
            for _ in 0..200 {
                let at = SimTime::from_nanos(rng.next_u64() % 600_000_000_000);
                m.add("req", "chat", at, 1 + rng.next_u64() % 3);
                m.gauge("depth", "all", at, (rng.next_u64() % 10) as f64);
                m.observe(
                    "ttft",
                    "chat",
                    at,
                    SimDuration::from_nanos(1 + rng.next_u64() % 5_000_000_000),
                );
            }
            m
        };
        let (a, b, c) = (build(11), build(22), build(33));
        let fold = |parts: &[&WindowedMetrics]| {
            let mut acc = WindowedMetrics::off();
            for p in parts {
                acc.merge_from(p);
            }
            acc
        };
        let left = fold(&[&a, &b, &c]);
        let right = {
            let mut bc = b.clone();
            bc.merge_from(&c);
            let mut out = a.clone();
            out.merge_from(&bc);
            out
        };
        assert_eq!(left, right, "registry merge must be associative");
        assert_eq!(left.canonical_bytes(), right.canonical_bytes());
        for perm in [
            [&a, &b, &c],
            [&a, &c, &b],
            [&b, &a, &c],
            [&b, &c, &a],
            [&c, &a, &b],
            [&c, &b, &a],
        ] {
            assert_eq!(fold(&perm), left, "merge must be permutation-invariant");
        }
    }

    #[test]
    fn canonical_bytes_distinguish_different_registries() {
        let mut a = WindowedMetrics::new(SimDuration::from_secs(60));
        a.add("req", "chat", SimTime::ZERO, 1);
        let mut b = a.clone();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        b.add("req", "chat", SimTime::ZERO, 1);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn cumulative_buckets_cover_the_full_count_in_ascending_order() {
        let mut hist = LogHistogram::new();
        for v in [0u64, 50, 5_000, 5_000, 2_000_000] {
            hist.observe_ns(v);
        }
        let buckets = hist.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, hist.count());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds must ascend");
            assert!(pair[0].1 <= pair[1].1, "counts must be cumulative");
        }
    }
}
