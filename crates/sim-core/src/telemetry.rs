//! Zero-cost-when-off serving telemetry.
//!
//! The serving layer's step loop explains *where each request's latency
//! went* by recording phase spans into a [`Telemetry`] side buffer: one
//! track per request (its lifecycle tiles `[arrival, first_token]` exactly,
//! so the span sum reconciles with the recorded TTFT), plus one track per
//! device lane (step/chunk/draft spans, occupancy intervals derived from
//! the [`crate::resource::CapacityLedger`] journal).  A counter / gauge /
//! histogram registry rides along for scalar metrics, and
//! [`Telemetry::chrome_trace_json`] exports everything as Chrome
//! trace-event JSON that Perfetto loads directly.
//!
//! The hard invariant is that telemetry is *observe-only*: every recording
//! method appends to a side buffer and returns — it never draws randomness,
//! never schedules an event, and early-returns before even interning a
//! label when the subsystem is disabled, so a `Telemetry::off()` instance
//! costs one branch per call site and an enabled one changes no simulated
//! time or statistic (the serial-reproduction suite proves this bit for
//! bit against the committed baseline).
//!
//! Labels are interned [`Arc<str>`]s handed out by [`Interner`] — the same
//! sharing scheme [`crate::trace::Trace`] uses for its span names, so a
//! million spans over a handful of distinct labels cost a million
//! refcount bumps, not a million `String` allocations.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// Interned label identifier: an index into an [`Interner`]'s table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// The label's position in its interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner handing out shared [`Arc<str>`]s and dense
/// [`LabelId`]s.  Interning the same text twice returns the same id (and
/// the same allocation).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its dense id (allocating only on first
    /// sight of the text).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return LabelId(id);
        }
        let shared: Arc<str> = Arc::from(name);
        let id = self.names.len() as u32;
        self.ids.insert(Arc::clone(&shared), id);
        self.names.push(shared);
        LabelId(id)
    }

    /// The shared allocation behind `name`, interning it first if new —
    /// what [`crate::trace::Trace`] stores per span instead of an owned
    /// `String`.
    pub fn share(&mut self, name: &str) -> Arc<str> {
        let id = self.intern(name);
        Arc::clone(&self.names[id.index()])
    }

    /// Resolves an id back to its text.
    ///
    /// # Panics
    /// Panics if `id` came from a different interner.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Which timeline a span belongs to: one per request (lifecycle phases) or
/// one per device lane (steps, chunks, occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The request's own lifecycle timeline, keyed by request id.
    Request(u64),
    /// A device lane's timeline, keyed by the interned lane name.
    Lane(LabelId),
}

/// The serving-layer phase a span records.  The request-lifecycle phases
/// ([`Phase::counts_toward_ttft`]) tile `[arrival, first_token]` without
/// gaps or overlap, so their sum reconciles exactly with the recorded
/// end-to-end TTFT; lane-track phases annotate device activity and never
/// enter that sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Waiting in the admission queue (arrival → dispatch).
    Queued,
    /// Framework init / checkpoint restore at the head of the service.
    FrameworkInit,
    /// Secure working-memory (CMA) allocation.
    WorkingAlloc,
    /// Unsealing (MAC + decrypt + dequant) the session's sealed KV prefix.
    KvUnseal,
    /// The pipelined restoration window up to the exclusive NPU hold.
    RestorePipeline,
    /// Prefill: the NPU window, plus (under batching) the chunk-interleave
    /// wait until the first token lands.
    Prefill,
    /// Decoding (first token → completion); excluded from the TTFT sum.
    Decode,
    /// A background restore-ahead interval on the flash/decrypt lanes.
    RestoreAhead,
    /// One batched NPU step (lane track).
    BatchStep,
    /// One prefill chunk inside a batched step (lane track).
    PrefillChunk,
    /// The serial draft-proposal rounds at the head of a speculative step.
    SpecDraft,
    /// The target's verify sweep of a speculative step.
    SpecVerify,
    /// Sealing / spilling KV pages at request completion.
    Seal,
    /// A lane-occupancy interval derived from the capacity-ledger journal.
    Occupancy,
}

impl Phase {
    /// Short category label used in the trace-event export.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::FrameworkInit => "framework-init",
            Phase::WorkingAlloc => "working-alloc",
            Phase::KvUnseal => "kv-unseal",
            Phase::RestorePipeline => "restore-pipeline",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::RestoreAhead => "restore-ahead",
            Phase::BatchStep => "batch-step",
            Phase::PrefillChunk => "prefill-chunk",
            Phase::SpecDraft => "spec-draft",
            Phase::SpecVerify => "spec-verify",
            Phase::Seal => "seal",
            Phase::Occupancy => "occupancy",
        }
    }

    /// Whether the phase is part of the request-lifecycle tiling of
    /// `[arrival, first_token]` — the spans whose durations must sum to the
    /// request's end-to-end TTFT.
    pub fn counts_toward_ttft(self) -> bool {
        matches!(
            self,
            Phase::Queued
                | Phase::FrameworkInit
                | Phase::WorkingAlloc
                | Phase::KvUnseal
                | Phase::RestorePipeline
                | Phase::Prefill
        )
    }
}

/// One recorded interval on a track.
#[derive(Debug, Clone)]
pub struct TelemetrySpan {
    /// The timeline the span lives on.
    pub track: Track,
    /// Phase category.
    pub phase: Phase,
    /// Interned display label (resolve via [`Telemetry::resolve`]).
    pub label: LabelId,
    /// Start instant.
    pub start: SimTime,
    /// End instant (`>= start`).
    pub end: SimTime,
}

impl TelemetrySpan {
    /// Length of the span.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The telemetry subsystem: an append-only span store plus a counter /
/// gauge / histogram registry, all keyed by interned labels.  Disabled
/// instances ignore every recording call.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    enabled: bool,
    interner: Interner,
    spans: Vec<TelemetrySpan>,
    /// Human-readable track names for the exporter's thread metadata.
    track_names: BTreeMap<Track, LabelId>,
    counters: BTreeMap<LabelId, u64>,
    /// Time series of gauge samples, exported as Chrome counter events.
    gauges: BTreeMap<LabelId, Vec<(SimTime, f64)>>,
    /// Downsampling stride for gauge series: keep every `stride`-th sample
    /// (0 and 1 both mean "keep everything", the historical behavior).
    gauge_stride: usize,
    /// Per-series sample counters driving the stride (counts *offered*
    /// samples, kept or not, so the stride phase is stable per series).
    gauge_seen: BTreeMap<LabelId, u64>,
    histograms: BTreeMap<LabelId, Vec<f64>>,
}

impl Telemetry {
    /// Creates a telemetry instance; a disabled one ignores every
    /// recording call at the cost of one branch.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            enabled,
            ..Telemetry::default()
        }
    }

    /// A disabled instance.
    pub fn off() -> Self {
        Telemetry::new(false)
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Interns a label (usable even while disabled, e.g. to pre-register
    /// lane names).
    pub fn intern(&mut self, name: &str) -> LabelId {
        self.interner.intern(name)
    }

    /// Resolves an interned label back to its text.
    pub fn resolve(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    /// Names a track for the exporter (e.g. `"req 3 qwen2.5-3b (chat)"`).
    pub fn name_track(&mut self, track: Track, name: &str) {
        if !self.enabled {
            return;
        }
        let id = self.interner.intern(name);
        self.track_names.insert(track, id);
    }

    /// Records one span.
    pub fn span(&mut self, track: Track, phase: Phase, label: &str, start: SimTime, end: SimTime) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start, "telemetry span must not end before it starts");
        let label = self.interner.intern(label);
        self.spans.push(TelemetrySpan {
            track,
            phase,
            label,
            start,
            end,
        });
    }

    /// Adds `delta` to the named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let id = self.interner.intern(name);
        *self.counters.entry(id).or_insert(0) += delta;
    }

    /// Sets the gauge downsampling stride: every series keeps its 1st,
    /// `(stride+1)`-th, `(2·stride+1)`-th … offered sample and drops the
    /// rest.  The default stride of 1 keeps every sample — bit-for-bit the
    /// historical behavior — while a fleet-scale run can cap the per-step
    /// series growth that unbounded gauge `Vec`s otherwise suffer.
    pub fn set_gauge_stride(&mut self, stride: usize) {
        self.gauge_stride = stride.max(1);
    }

    /// The current gauge downsampling stride (1 = keep everything).
    pub fn gauge_stride(&self) -> usize {
        self.gauge_stride.max(1)
    }

    /// Appends a gauge sample (a step-wise time series; exported as a
    /// Chrome counter track), subject to the downsampling stride
    /// ([`Telemetry::set_gauge_stride`]).
    pub fn gauge(&mut self, name: &str, at: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        let id = self.interner.intern(name);
        let seen = self.gauge_seen.entry(id).or_insert(0);
        let keep = self.gauge_stride <= 1 || (*seen).is_multiple_of(self.gauge_stride as u64);
        *seen += 1;
        if keep {
            self.gauges.entry(id).or_default().push((at, value));
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let id = self.interner.intern(name);
        self.histograms.entry(id).or_default().push(value);
    }

    /// All recorded spans in insertion order.
    pub fn spans(&self) -> &[TelemetrySpan] {
        &self.spans
    }

    /// The lifecycle spans of one request's track.
    pub fn request_spans(&self, id: u64) -> impl Iterator<Item = &TelemetrySpan> {
        self.spans
            .iter()
            .filter(move |s| s.track == Track::Request(id))
    }

    /// Sum of the request's TTFT-tiling phase spans — must equal its
    /// recorded end-to-end TTFT (the reconciliation tests assert it).
    pub fn request_ttft_span_sum(&self, id: u64) -> SimDuration {
        self.request_spans(id)
            .filter(|s| s.phase.counts_toward_ttft())
            .map(TelemetrySpan::duration)
            .sum()
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.interner
            .ids
            .get(name)
            .and_then(|&id| self.counters.get(&LabelId(id)))
            .copied()
            .unwrap_or(0)
    }

    /// The named gauge's kept samples (empty if never touched).
    pub fn gauge_series(&self, name: &str) -> &[(SimTime, f64)] {
        self.interner
            .ids
            .get(name)
            .and_then(|&id| self.gauges.get(&LabelId(id)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The named histogram's observations (empty if never touched).
    pub fn histogram(&self, name: &str) -> &[f64] {
        self.interner
            .ids
            .get(name)
            .and_then(|&id| self.histograms.get(&LabelId(id)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// `(count, mean, max)` of the named histogram, or `None` if empty.
    pub fn histogram_stats(&self, name: &str) -> Option<(usize, f64, f64)> {
        let h = self.histogram(name);
        if h.is_empty() {
            return None;
        }
        let sum: f64 = h.iter().sum();
        let max = h.iter().cloned().fold(f64::MIN, f64::max);
        Some((h.len(), sum / h.len() as f64, max))
    }

    /// Exports the span store and gauge series as Chrome trace-event JSON
    /// (the `{"traceEvents": [...]}` object format), loadable in Perfetto
    /// or `chrome://tracing`.  Requests render as threads of process 0,
    /// lanes as threads of process 1, and gauges as counter tracks;
    /// timestamps are microseconds of simulated time.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let push = |out: &mut String, line: &str, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(line);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"requests\"}}",
            &mut first,
        );
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"lanes\"}}",
            &mut first,
        );
        for (&track, &name) in &self.track_names {
            let (pid, tid) = track_ids(track);
            let line = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(self.interner.resolve(name))
            );
            push(&mut out, &line, &mut first);
        }
        for s in &self.spans {
            let (pid, tid) = track_ids(s.track);
            let ts = s.start.as_nanos() as f64 / 1e3;
            let dur = s.duration().as_nanos() as f64 / 1e3;
            let line = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":{pid},\"tid\":{tid}}}",
                escape_json(self.interner.resolve(s.label)),
                s.phase.label()
            );
            push(&mut out, &line, &mut first);
        }
        for (&name, series) in &self.gauges {
            let esc = escape_json(self.interner.resolve(name));
            for &(at, value) in series {
                let ts = at.as_nanos() as f64 / 1e3;
                let line = format!(
                    "{{\"name\":\"{esc}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":0,\
                     \"args\":{{\"value\":{value}}}}}"
                );
                push(&mut out, &line, &mut first);
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Perfetto process/thread placement of a track: requests are threads of
/// process 0 (tid = request id + 1), lanes threads of process 1 (tid =
/// interned lane id + 1); tid 0 of each process carries its metadata.
fn track_ids(track: Track) -> (u64, u64) {
    match track {
        Track::Request(id) => (0, id + 1),
        Track::Lane(label) => (1, label.index() as u64 + 1),
    }
}

/// Escapes a label for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn interner_dedups_and_shares() {
        let mut i = Interner::new();
        let a = i.intern("flash");
        let b = i.intern("flash");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        let s1 = i.share("flash");
        let s2 = i.share("flash");
        assert!(Arc::ptr_eq(&s1, &s2), "same text shares one allocation");
        assert_eq!(i.resolve(a), "flash");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t9 = Telemetry::off();
        t9.span(Track::Request(0), Phase::Queued, "queued", t(0), t(5));
        t9.count("admitted", 1);
        t9.gauge("queue_depth", t(0), 3.0);
        t9.observe("step_ms", 1.5);
        t9.name_track(Track::Request(0), "req 0");
        assert!(t9.spans().is_empty());
        assert_eq!(t9.counter("admitted"), 0);
        assert!(t9.histogram("step_ms").is_empty());
    }

    #[test]
    fn ttft_span_sum_covers_only_lifecycle_phases() {
        let mut tel = Telemetry::new(true);
        tel.span(Track::Request(7), Phase::Queued, "queued", t(0), t(10));
        tel.span(Track::Request(7), Phase::Prefill, "prefill", t(10), t(30));
        tel.span(Track::Request(7), Phase::Decode, "decode", t(30), t(90));
        let lane = tel.intern("npu");
        tel.span(Track::Lane(lane), Phase::BatchStep, "step", t(10), t(30));
        assert_eq!(
            tel.request_ttft_span_sum(7),
            SimDuration::from_millis(30),
            "decode and lane spans stay out of the TTFT sum"
        );
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let mut tel = Telemetry::new(true);
        tel.count("seals", 2);
        tel.count("seals", 3);
        assert_eq!(tel.counter("seals"), 5);
        tel.observe("step_ms", 1.0);
        tel.observe("step_ms", 3.0);
        let (n, mean, max) = tel.histogram_stats("step_ms").unwrap();
        assert_eq!(n, 2);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((max - 3.0).abs() < 1e-12);
        tel.gauge("queue_depth", t(1), 4.0);
        assert_eq!(tel.counter("missing"), 0);
    }

    #[test]
    fn gauge_stride_downsamples_per_series() {
        let mut tel = Telemetry::new(true);
        assert_eq!(tel.gauge_stride(), 1, "default stride keeps everything");
        for i in 0..6 {
            tel.gauge("depth", t(i), i as f64);
        }
        assert_eq!(tel.gauge_series("depth").len(), 6);

        let mut strided = Telemetry::new(true);
        strided.set_gauge_stride(3);
        for i in 0..7 {
            strided.gauge("depth", t(i), i as f64);
            strided.gauge("occupancy", t(i), 2.0 * i as f64);
        }
        // Samples 0, 3 and 6 survive — the stride phase is per series.
        let kept: Vec<f64> = strided.gauge_series("depth").iter().map(|s| s.1).collect();
        assert_eq!(kept, vec![0.0, 3.0, 6.0]);
        assert_eq!(strided.gauge_series("occupancy").len(), 3);
    }

    #[test]
    fn chrome_export_is_wellformed_and_escaped() {
        let mut tel = Telemetry::new(true);
        tel.name_track(Track::Request(0), "req \"zero\"\n");
        tel.span(Track::Request(0), Phase::Queued, "queued", t(0), t(2));
        let lane = tel.intern("npu");
        tel.span(Track::Lane(lane), Phase::Occupancy, "npu=1", t(0), t(4));
        tel.gauge("npu in_use", t(0), 1.0);
        let json = tel.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":[") && json.trim_end().ends_with("]}"));
        assert!(json.contains("\\\"zero\\\"\\n"), "labels are escaped");
        assert!(json.contains("\"ph\":\"X\"") && json.contains("\"ph\":\"C\""));
        assert_eq!(
            json.matches("\"ph\":\"M\"").count(),
            3,
            "two process names plus one named track"
        );
        // Balanced braces/brackets outside string context — a cheap
        // structural check; CI additionally runs the export through a real
        // JSON parser.
        let depth_ok = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth_ok, 0);
    }
}
