//! Virtual time for the discrete-event simulation.
//!
//! All timing in the reproduction is expressed in simulated nanoseconds on a
//! monotonically increasing virtual clock.  [`SimTime`] is an instant on that
//! clock and [`SimDuration`] is a span between two instants.  Both are thin
//! wrappers around `u64` nanoseconds so they are `Copy`, totally ordered and
//! cheap to pass around the scheduler hot paths.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant on the simulated clock, measured in nanoseconds since the
/// beginning of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A length of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant, used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the simulation as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since the start of the simulation as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of the two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1_000.0)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked division into `parts` equal chunks (last chunk absorbs the
    /// remainder); used to split restoration operators into micro-operators
    /// for preemptive scheduling.
    pub fn split(self, parts: u64) -> Vec<SimDuration> {
        assert!(parts > 0, "cannot split a duration into zero parts");
        let base = self.0 / parts;
        let rem = self.0 % parts;
        (0..parts)
            .map(|i| SimDuration(if i == parts - 1 { base + rem } else { base }))
            .collect()
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_nanos(), 5_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - SimDuration::from_millis(10), SimTime::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn split_preserves_total() {
        let d = SimDuration::from_nanos(1_000_003);
        let parts = d.split(7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().copied().sum::<SimDuration>(), d);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn min_max_ordering() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::MAX > b);
    }
}
