//! Bandwidth / throughput helpers.
//!
//! Several devices in the reproduction are modelled as constant-throughput
//! engines calibrated from the paper's measurements: the NVMe flash performs
//! sequential reads at ~2 GB/s, single-threaded CMA page migration moves
//! ~1.9 GB/s, AES decryption of 8 GB of parameters takes ~0.9 s, and so on.
//! [`Bandwidth`] converts between byte counts and [`SimDuration`]s for such
//! engines.

use crate::time::SimDuration;

/// Bytes in one binary kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in one binary mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in one binary gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A constant data-movement or data-processing rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    /// Panics if the rate is not finite and strictly positive: a zero-rate
    /// device would make every transfer take infinitely long, which is always
    /// a configuration bug in this code base.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth { bytes_per_sec }
    }

    /// Creates a bandwidth from binary gigabytes (GiB) per second.
    pub fn from_gib_per_sec(gib_per_sec: f64) -> Self {
        Self::from_bytes_per_sec(gib_per_sec * GIB as f64)
    }

    /// Creates a bandwidth from binary megabytes (MiB) per second.
    pub fn from_mib_per_sec(mib_per_sec: f64) -> Self {
        Self::from_bytes_per_sec(mib_per_sec * MIB as f64)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// The rate in GiB per second.
    pub fn gib_per_sec(self) -> f64 {
        self.bytes_per_sec / GIB as f64
    }

    /// Time needed to move `bytes` at this rate.
    pub fn time_for_bytes(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Bytes moved in `duration` at this rate.
    pub fn bytes_in(self, duration: SimDuration) -> u64 {
        (self.bytes_per_sec * duration.as_secs_f64()).floor() as u64
    }

    /// Scales the rate by `factor` (e.g. multi-threaded CMA migration reaches
    /// 2x the single-thread throughput with 4 threads in the paper's testbed).
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes_per_sec * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_for_bytes_matches_rate() {
        let bw = Bandwidth::from_gib_per_sec(2.0);
        let t = bw.time_for_bytes(4 * GIB);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_inverts_time_for_bytes() {
        let bw = Bandwidth::from_mib_per_sec(512.0);
        let d = bw.time_for_bytes(100 * MIB);
        let b = bw.bytes_in(d);
        assert!((b as i64 - (100 * MIB) as i64).abs() < 16);
    }

    #[test]
    fn scaled_changes_rate() {
        let bw = Bandwidth::from_gib_per_sec(1.9);
        assert!((bw.scaled(2.0).gib_per_sec() - 3.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_is_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }
}
