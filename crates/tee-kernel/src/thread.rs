//! TA multi-threading with shadow threads.
//!
//! Traditional TEEs give each TA a single thread; LLM inference needs CPU
//! multi-threading.  TZ-LLM pairs every TA thread with a *shadow thread* in
//! the client application: when the REE scheduler runs a shadow thread, it
//! issues an `smc` that starts or resumes the paired TA thread (§3.2).  The
//! TA thread contexts and the synchronisation primitives live inside the TEE,
//! so a malicious REE scheduler can decide *when* threads run but cannot
//! violate the execution order those primitives enforce (§6, "CPU thread
//! scheduling").

use std::collections::BTreeMap;
use std::sync::Arc;

use sim_core::SimDuration;
use tz_hal::{Platform, SmcFunction, World};

use crate::ta::TaId;

/// Identifier of a TA thread (and of its paired shadow thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaThreadId(pub u32);

/// Identifier of a TEE-managed synchronisation primitive (mutex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeeMutexId(pub u32);

/// State of a TA thread as tracked by the TEE OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to run when its shadow thread is scheduled.
    Ready,
    /// Currently running in the secure world.
    Running,
    /// Blocked on a TEE-managed mutex.
    Blocked(TeeMutexId),
    /// Finished.
    Exited,
}

/// Outcome of the REE scheduler resuming a shadow thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// The TA thread ran (cost of the smc round trip is returned separately).
    Ran,
    /// The TA thread is blocked on a TEE-managed primitive; the TEE refuses
    /// to run it no matter what the REE scheduler wants.
    RefusedBlocked(TeeMutexId),
    /// The thread already exited.
    RefusedExited,
}

/// Errors from the thread manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadError {
    /// Unknown thread.
    NoSuchThread(TaThreadId),
    /// Unknown mutex.
    NoSuchMutex(TeeMutexId),
    /// Unlock attempted by a thread that does not hold the mutex.
    NotOwner {
        /// The mutex in question.
        mutex: TeeMutexId,
        /// The thread that attempted the unlock.
        thread: TaThreadId,
    },
}

impl std::fmt::Display for ThreadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadError::NoSuchThread(t) => write!(f, "no such TA thread {}", t.0),
            ThreadError::NoSuchMutex(m) => write!(f, "no such TEE mutex {}", m.0),
            ThreadError::NotOwner { mutex, thread } => {
                write!(f, "thread {} does not own mutex {}", thread.0, mutex.0)
            }
        }
    }
}

impl std::error::Error for ThreadError {}

#[derive(Debug)]
struct TaThread {
    #[allow(dead_code)]
    owner: TaId,
    state: ThreadState,
}

#[derive(Debug, Default)]
struct TeeMutex {
    holder: Option<TaThreadId>,
    waiters: Vec<TaThreadId>,
}

/// The TEE OS shadow-thread manager.
#[derive(Debug)]
pub struct ShadowThreadManager {
    platform: Arc<Platform>,
    threads: BTreeMap<TaThreadId, TaThread>,
    mutexes: BTreeMap<TeeMutexId, TeeMutex>,
    next_thread: u32,
    next_mutex: u32,
    resume_count: u64,
}

impl ShadowThreadManager {
    /// Creates a manager.
    pub fn new(platform: Arc<Platform>) -> Self {
        ShadowThreadManager {
            platform,
            threads: BTreeMap::new(),
            mutexes: BTreeMap::new(),
            next_thread: 0,
            next_mutex: 0,
            resume_count: 0,
        }
    }

    /// Creates a TA thread (and conceptually its paired CA shadow thread).
    pub fn create_thread(&mut self, owner: TaId) -> TaThreadId {
        let id = TaThreadId(self.next_thread);
        self.next_thread += 1;
        self.threads.insert(
            id,
            TaThread {
                owner,
                state: ThreadState::Ready,
            },
        );
        id
    }

    /// Creates a TEE-managed mutex.
    pub fn create_mutex(&mut self) -> TeeMutexId {
        let id = TeeMutexId(self.next_mutex);
        self.next_mutex += 1;
        self.mutexes.insert(id, TeeMutex::default());
        id
    }

    /// The current state of a thread.
    pub fn state(&self, thread: TaThreadId) -> Result<ThreadState, ThreadError> {
        self.threads
            .get(&thread)
            .map(|t| t.state)
            .ok_or(ThreadError::NoSuchThread(thread))
    }

    /// Number of successful resumes (each one is an smc round trip).
    pub fn resume_count(&self) -> u64 {
        self.resume_count
    }

    /// The REE scheduler runs the shadow thread of `thread`: the TEE decides
    /// whether the TA thread may actually run.
    pub fn resume(
        &mut self,
        thread: TaThreadId,
    ) -> Result<(ResumeOutcome, SimDuration), ThreadError> {
        let smc = self
            .platform
            .with_smc(|s| s.round_trip(World::NonSecure, SmcFunction::ShadowThread));
        let t = self
            .threads
            .get_mut(&thread)
            .ok_or(ThreadError::NoSuchThread(thread))?;
        let outcome = match t.state {
            ThreadState::Blocked(m) => ResumeOutcome::RefusedBlocked(m),
            ThreadState::Exited => ResumeOutcome::RefusedExited,
            ThreadState::Ready | ThreadState::Running => {
                t.state = ThreadState::Running;
                self.resume_count += 1;
                ResumeOutcome::Ran
            }
        };
        Ok((outcome, smc))
    }

    /// The running TA thread yields back to the REE (its shadow thread sleeps).
    pub fn park(&mut self, thread: TaThreadId) -> Result<(), ThreadError> {
        let t = self
            .threads
            .get_mut(&thread)
            .ok_or(ThreadError::NoSuchThread(thread))?;
        if t.state == ThreadState::Running {
            t.state = ThreadState::Ready;
        }
        Ok(())
    }

    /// The thread exits.
    pub fn exit(&mut self, thread: TaThreadId) -> Result<(), ThreadError> {
        let t = self
            .threads
            .get_mut(&thread)
            .ok_or(ThreadError::NoSuchThread(thread))?;
        t.state = ThreadState::Exited;
        Ok(())
    }

    /// `thread` attempts to take `mutex`.  If it is held, the thread blocks
    /// inside the TEE (the REE cannot force it to run past the lock).
    pub fn mutex_lock(
        &mut self,
        mutex: TeeMutexId,
        thread: TaThreadId,
    ) -> Result<bool, ThreadError> {
        if !self.threads.contains_key(&thread) {
            return Err(ThreadError::NoSuchThread(thread));
        }
        let m = self
            .mutexes
            .get_mut(&mutex)
            .ok_or(ThreadError::NoSuchMutex(mutex))?;
        match m.holder {
            None => {
                m.holder = Some(thread);
                Ok(true)
            }
            Some(holder) if holder == thread => Ok(true),
            Some(_) => {
                m.waiters.push(thread);
                self.threads.get_mut(&thread).expect("checked above").state =
                    ThreadState::Blocked(mutex);
                Ok(false)
            }
        }
    }

    /// `thread` releases `mutex`; the longest-waiting thread (if any) becomes
    /// the new holder and is made ready.
    pub fn mutex_unlock(
        &mut self,
        mutex: TeeMutexId,
        thread: TaThreadId,
    ) -> Result<(), ThreadError> {
        let m = self
            .mutexes
            .get_mut(&mutex)
            .ok_or(ThreadError::NoSuchMutex(mutex))?;
        if m.holder != Some(thread) {
            return Err(ThreadError::NotOwner { mutex, thread });
        }
        m.holder = None;
        if !m.waiters.is_empty() {
            let next = m.waiters.remove(0);
            m.holder = Some(next);
            if let Some(t) = self.threads.get_mut(&next) {
                t.state = ThreadState::Ready;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> (ShadowThreadManager, TaId) {
        let platform = Platform::rk3588();
        (ShadowThreadManager::new(platform), TaId(0))
    }

    #[test]
    fn resume_runs_ready_threads_and_charges_smc() {
        let (mut mgr, ta) = manager();
        let t = mgr.create_thread(ta);
        let (outcome, cost) = mgr.resume(t).unwrap();
        assert_eq!(outcome, ResumeOutcome::Ran);
        assert_eq!(cost, SimDuration::from_micros(24)); // 2 x 12 us smc
        assert_eq!(mgr.state(t).unwrap(), ThreadState::Running);
        assert_eq!(mgr.resume_count(), 1);
    }

    #[test]
    fn ree_cannot_run_a_thread_blocked_on_a_tee_mutex() {
        let (mut mgr, ta) = manager();
        let t1 = mgr.create_thread(ta);
        let t2 = mgr.create_thread(ta);
        let m = mgr.create_mutex();
        assert!(mgr.mutex_lock(m, t1).unwrap());
        assert!(!mgr.mutex_lock(m, t2).unwrap()); // t2 blocks
                                                  // A malicious REE scheduler tries to resume t2 anyway.
        let (outcome, _) = mgr.resume(t2).unwrap();
        assert_eq!(outcome, ResumeOutcome::RefusedBlocked(m));
        assert_eq!(mgr.state(t2).unwrap(), ThreadState::Blocked(m));
        // Once t1 unlocks, t2 becomes ready and can run.
        mgr.mutex_unlock(m, t1).unwrap();
        assert_eq!(mgr.state(t2).unwrap(), ThreadState::Ready);
        assert_eq!(mgr.resume(t2).unwrap().0, ResumeOutcome::Ran);
    }

    #[test]
    fn only_the_holder_can_unlock() {
        let (mut mgr, ta) = manager();
        let t1 = mgr.create_thread(ta);
        let t2 = mgr.create_thread(ta);
        let m = mgr.create_mutex();
        mgr.mutex_lock(m, t1).unwrap();
        assert_eq!(
            mgr.mutex_unlock(m, t2).unwrap_err(),
            ThreadError::NotOwner {
                mutex: m,
                thread: t2
            }
        );
    }

    #[test]
    fn exited_threads_never_run_again() {
        let (mut mgr, ta) = manager();
        let t = mgr.create_thread(ta);
        mgr.exit(t).unwrap();
        assert_eq!(mgr.resume(t).unwrap().0, ResumeOutcome::RefusedExited);
    }

    #[test]
    fn reentrant_lock_by_holder_is_allowed() {
        let (mut mgr, ta) = manager();
        let t = mgr.create_thread(ta);
        let m = mgr.create_mutex();
        assert!(mgr.mutex_lock(m, t).unwrap());
        assert!(mgr.mutex_lock(m, t).unwrap());
    }

    #[test]
    fn park_returns_thread_to_ready() {
        let (mut mgr, ta) = manager();
        let t = mgr.create_thread(ta);
        mgr.resume(t).unwrap();
        mgr.park(t).unwrap();
        assert_eq!(mgr.state(t).unwrap(), ThreadState::Ready);
    }

    #[test]
    fn unknown_ids_are_errors() {
        let (mut mgr, _ta) = manager();
        assert!(matches!(
            mgr.resume(TaThreadId(9)),
            Err(ThreadError::NoSuchThread(_))
        ));
        assert!(matches!(
            mgr.mutex_lock(TeeMutexId(9), TaThreadId(9)),
            Err(ThreadError::NoSuchThread(_))
        ));
        let t = mgr.create_thread(TaId(0));
        assert!(matches!(
            mgr.mutex_lock(TeeMutexId(9), t),
            Err(ThreadError::NoSuchMutex(_))
        ));
    }
}
