//! Trusted applications and address-space isolation.
//!
//! The TEE OS hosts multiple trusted applications (TAs).  TZ-LLM's security
//! argument (§6) relies on the TEE OS enforcing address-space isolation
//! between TAs: even a compromised LLM TA cannot read other TAs' memory, and
//! other (untrusted) TAs cannot read the LLM TA's parameters.  This module
//! models TAs and their address spaces at physical-range granularity.

use std::collections::BTreeMap;

use tz_hal::PhysRange;

/// Identifier of a trusted application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaId(pub u32);

/// Errors from TA management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaError {
    /// Unknown TA.
    NoSuchTa(TaId),
    /// A TA attempted to access memory outside its address space.
    IsolationViolation {
        /// The offending TA.
        ta: TaId,
        /// The range it tried to access.
        range: PhysRange,
    },
    /// Mapping would overlap another TA's mapping.
    AlreadyMapped {
        /// The TA that already owns the overlapping range.
        owner: TaId,
    },
}

impl std::fmt::Display for TaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaError::NoSuchTa(id) => write!(f, "no such TA {}", id.0),
            TaError::IsolationViolation { ta, range } => {
                write!(
                    f,
                    "TA {} attempted to access unmapped range {}",
                    ta.0, range
                )
            }
            TaError::AlreadyMapped { owner } => write!(f, "range already mapped by TA {}", owner.0),
        }
    }
}

impl std::error::Error for TaError {}

/// A trusted application's kernel-visible state.
#[derive(Debug, Clone)]
pub struct TrustedApp {
    /// The TA's identifier.
    pub id: TaId,
    /// Human-readable name.
    pub name: String,
    /// Whether this TA is the LLM TA (grants access to the model key service).
    pub is_llm_ta: bool,
    mappings: Vec<PhysRange>,
}

impl TrustedApp {
    /// Physical ranges currently mapped into the TA.
    pub fn mappings(&self) -> &[PhysRange] {
        &self.mappings
    }

    /// Whether `range` is entirely covered by the TA's mappings.
    ///
    /// Coverage may span multiple adjacent mappings, which happens naturally
    /// as secure memory is extended in increments.
    pub fn covers(&self, range: PhysRange) -> bool {
        if range.is_empty() {
            return true;
        }
        // Walk from range.start forward through mappings until covered.
        let mut cursor = range.start;
        let end = range.end();
        loop {
            let next = self
                .mappings
                .iter()
                .filter(|m| m.contains_addr(cursor))
                .map(|m| m.end())
                .max();
            match next {
                Some(covered_to) => {
                    if covered_to.as_u64() >= end.as_u64() {
                        return true;
                    }
                    if covered_to.as_u64() == cursor.as_u64() {
                        return false;
                    }
                    cursor = covered_to;
                }
                None => return false,
            }
        }
    }
}

/// The TEE OS's registry of trusted applications.
#[derive(Debug, Default)]
pub struct TaRegistry {
    tas: BTreeMap<TaId, TrustedApp>,
    next_id: u32,
}

impl TaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TaRegistry::default()
    }

    /// Registers a TA and returns its id.
    pub fn register(&mut self, name: impl Into<String>, is_llm_ta: bool) -> TaId {
        let id = TaId(self.next_id);
        self.next_id += 1;
        self.tas.insert(
            id,
            TrustedApp {
                id,
                name: name.into(),
                is_llm_ta,
                mappings: Vec::new(),
            },
        );
        id
    }

    /// Looks up a TA.
    pub fn get(&self, id: TaId) -> Result<&TrustedApp, TaError> {
        self.tas.get(&id).ok_or(TaError::NoSuchTa(id))
    }

    /// Maps `range` into `ta`'s address space.  Fails if any other TA already
    /// maps an overlapping range (TAs never share memory in this design).
    pub fn map(&mut self, ta: TaId, range: PhysRange) -> Result<(), TaError> {
        for other in self.tas.values() {
            if other.id != ta && other.mappings.iter().any(|m| m.overlaps(&range)) {
                return Err(TaError::AlreadyMapped { owner: other.id });
            }
        }
        let app = self.tas.get_mut(&ta).ok_or(TaError::NoSuchTa(ta))?;
        app.mappings.push(range);
        Ok(())
    }

    /// Unmaps `range` from `ta`.  Mappings that partially overlap are trimmed.
    pub fn unmap(&mut self, ta: TaId, range: PhysRange) -> Result<(), TaError> {
        let app = self.tas.get_mut(&ta).ok_or(TaError::NoSuchTa(ta))?;
        let mut new_mappings = Vec::new();
        for m in app.mappings.drain(..) {
            if !m.overlaps(&range) {
                new_mappings.push(m);
                continue;
            }
            // Keep the parts before and after the unmapped window.
            if m.start < range.start {
                new_mappings.push(PhysRange::from_bounds(m.start, range.start));
            }
            if range.end() < m.end() {
                new_mappings.push(PhysRange::from_bounds(range.end(), m.end()));
            }
        }
        app.mappings = new_mappings;
        Ok(())
    }

    /// Checks that `ta` may access `range`; models the TA-side page tables the
    /// TEE OS maintains.
    pub fn check_access(&self, ta: TaId, range: PhysRange) -> Result<(), TaError> {
        let app = self.get(ta)?;
        if app.covers(range) {
            Ok(())
        } else {
            Err(TaError::IsolationViolation { ta, range })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tz_hal::PhysAddr;

    fn range(start: u64, size: u64) -> PhysRange {
        PhysRange::new(PhysAddr::new(start), size)
    }

    #[test]
    fn tas_are_isolated_from_each_other() {
        let mut reg = TaRegistry::new();
        let llm = reg.register("llm-ta", true);
        let other = reg.register("keymaster", false);
        reg.map(llm, range(0x1000, 0x1000)).unwrap();
        assert!(reg.check_access(llm, range(0x1000, 0x800)).is_ok());
        assert!(matches!(
            reg.check_access(other, range(0x1000, 0x800)),
            Err(TaError::IsolationViolation { .. })
        ));
        // The other TA cannot map the same memory either.
        assert!(matches!(
            reg.map(other, range(0x1800, 0x1000)),
            Err(TaError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn coverage_spans_adjacent_mappings() {
        let mut reg = TaRegistry::new();
        let ta = reg.register("llm-ta", true);
        reg.map(ta, range(0x1000, 0x1000)).unwrap();
        reg.map(ta, range(0x2000, 0x1000)).unwrap();
        assert!(reg.check_access(ta, range(0x1800, 0x1000)).is_ok());
        assert!(reg.check_access(ta, range(0x2800, 0x1000)).is_err());
    }

    #[test]
    fn unmap_trims_partial_overlaps() {
        let mut reg = TaRegistry::new();
        let ta = reg.register("llm-ta", true);
        reg.map(ta, range(0x1000, 0x3000)).unwrap();
        reg.unmap(ta, range(0x2000, 0x1000)).unwrap();
        assert!(reg.check_access(ta, range(0x1000, 0x1000)).is_ok());
        assert!(reg.check_access(ta, range(0x3000, 0x1000)).is_ok());
        assert!(reg.check_access(ta, range(0x2000, 0x1000)).is_err());
    }

    #[test]
    fn unknown_ta_is_an_error() {
        let reg = TaRegistry::new();
        assert!(matches!(reg.get(TaId(9)), Err(TaError::NoSuchTa(_))));
    }

    #[test]
    fn empty_range_is_always_accessible() {
        let mut reg = TaRegistry::new();
        let ta = reg.register("llm-ta", true);
        assert!(reg.check_access(ta, PhysRange::EMPTY).is_ok());
    }
}
